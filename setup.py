"""Setup shim enabling legacy editable installs in offline environments
(where the `wheel` package needed by PEP 660 editable builds is absent)."""

from setuptools import setup

setup()
