"""Input-to-exit mapping policies.

A controller receives the per-exit logits of one sample *sequentially* (as
the network would produce them) and decides where to stop.  Batch interfaces
operate on stacked logits ``(E, n, classes)`` and return, per sample, the
0-based index of the taken exit — ``E`` meaning "ran to the final
classifier".
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import entropy_np, softmax_np
from repro.utils.validation import check_probability


class ExitController:
    """Base class: maps stacked exit logits to exit decisions."""

    def decide(self, exit_logits: np.ndarray, labels: np.ndarray | None = None) -> np.ndarray:
        """Return the taken-exit index per sample (E = no early exit).

        ``exit_logits`` has shape (E, n, classes).
        """
        raise NotImplementedError


class OracleController(ExitController):
    """Ideal mapping: stop at the first exit whose argmax is correct.

    Requires labels; this is the design-time policy of paper §IV-C, useful
    as the upper reference in deployment studies.
    """

    def decide(self, exit_logits: np.ndarray, labels: np.ndarray | None = None) -> np.ndarray:
        if labels is None:
            raise ValueError("OracleController requires ground-truth labels")
        num_exits, n, _ = exit_logits.shape
        decisions = np.full(n, num_exits, dtype=np.int64)
        for i in range(num_exits - 1, -1, -1):
            correct = exit_logits[i].argmax(axis=-1) == labels
            decisions[correct] = i
        return decisions


class EntropyThresholdController(ExitController):
    """Exit when normalised predictive entropy drops below a threshold.

    ``thresholds`` may be a scalar (shared) or one value per exit.
    """

    def __init__(self, thresholds: float | np.ndarray, num_exits: int):
        thresholds = np.broadcast_to(np.asarray(thresholds, dtype=float), (num_exits,)).copy()
        for t in thresholds:
            check_probability("entropy threshold", float(t))
        self.thresholds = thresholds
        self.num_exits = num_exits

    def decide(self, exit_logits: np.ndarray, labels: np.ndarray | None = None) -> np.ndarray:
        num_exits, n, _ = exit_logits.shape
        if num_exits != self.num_exits:
            raise ValueError(f"controller configured for {self.num_exits} exits, got {num_exits}")
        decisions = np.full(n, num_exits, dtype=np.int64)
        undecided = np.ones(n, dtype=bool)
        for i in range(num_exits):
            ent = entropy_np(exit_logits[i], axis=-1)
            takes = undecided & (ent <= self.thresholds[i])
            decisions[takes] = i
            undecided &= ~takes
        return decisions


class ConfidenceThresholdController(ExitController):
    """Exit when max-softmax confidence exceeds a threshold."""

    def __init__(self, thresholds: float | np.ndarray, num_exits: int):
        thresholds = np.broadcast_to(np.asarray(thresholds, dtype=float), (num_exits,)).copy()
        for t in thresholds:
            check_probability("confidence threshold", float(t))
        self.thresholds = thresholds
        self.num_exits = num_exits

    def decide(self, exit_logits: np.ndarray, labels: np.ndarray | None = None) -> np.ndarray:
        num_exits, n, _ = exit_logits.shape
        if num_exits != self.num_exits:
            raise ValueError(f"controller configured for {self.num_exits} exits, got {num_exits}")
        decisions = np.full(n, num_exits, dtype=np.int64)
        undecided = np.ones(n, dtype=bool)
        for i in range(num_exits):
            conf = softmax_np(exit_logits[i], axis=-1).max(axis=-1)
            takes = undecided & (conf >= self.thresholds[i])
            decisions[takes] = i
            undecided &= ~takes
        return decisions


class BudgetedController(ExitController):
    """Entropy controller calibrated to a per-sample energy budget.

    Given a validation stream and the per-path energy costs, bisection over
    the target exit rate finds the loosest thresholds whose expected energy
    meets the budget — the accuracy-maximising policy within it (looser
    thresholds only trade accuracy for energy).
    """

    def __init__(self, thresholds: np.ndarray, num_exits: int, expected_energy_j: float):
        self._inner = EntropyThresholdController(thresholds, num_exits)
        self.thresholds = self._inner.thresholds
        self.num_exits = num_exits
        self.expected_energy_j = expected_energy_j

    def decide(self, exit_logits: np.ndarray, labels: np.ndarray | None = None) -> np.ndarray:
        return self._inner.decide(exit_logits, labels)

    @classmethod
    def calibrate(
        cls,
        exit_logits: np.ndarray,
        path_energies_j: np.ndarray,
        budget_j: float,
        iterations: int = 12,
    ) -> "BudgetedController":
        """Fit thresholds on a validation stream for an energy budget.

        Parameters
        ----------
        exit_logits:
            Validation logits, shape (E, n, classes).
        path_energies_j:
            Energy of leaving at each exit (and, last entry, of running the
            full network) — shape (E + 1,).
        budget_j:
            Mean per-sample energy target; must be reachable (at least the
            always-exit-first energy).
        """
        num_exits = exit_logits.shape[0]
        path_energies_j = np.asarray(path_energies_j, dtype=float)
        if len(path_energies_j) != num_exits + 1:
            raise ValueError(
                f"need {num_exits + 1} path energies, got {len(path_energies_j)}"
            )
        if budget_j < path_energies_j[0]:
            raise ValueError(
                f"budget {budget_j} below the cheapest policy "
                f"({path_energies_j[0]}: always take the first exit)"
            )

        def expected_energy(rate: float) -> tuple[float, np.ndarray]:
            thresholds = tune_thresholds(exit_logits, rate, kind="entropy")
            decisions = EntropyThresholdController(thresholds, num_exits).decide(exit_logits)
            return float(path_energies_j[decisions].mean()), thresholds

        lo, hi = 0.0, 1.0  # exit rate: 0 -> never exit (max energy)
        best = expected_energy(1.0)
        if best[0] > budget_j:
            return cls(best[1], num_exits, best[0])  # budget unreachable: cheapest
        for _ in range(iterations):
            mid = (lo + hi) / 2
            energy, thresholds = expected_energy(mid)
            if energy <= budget_j:
                best = (energy, thresholds)
                hi = mid  # try exiting less aggressively
            else:
                lo = mid
        return cls(best[1], num_exits, best[0])


def tune_thresholds(
    exit_logits: np.ndarray,
    target_exit_rate: float,
    kind: str = "entropy",
) -> np.ndarray:
    """Per-exit thresholds hitting a target *per-exit* take rate on a
    validation stream.

    For each exit, the threshold is set at the quantile of its decision
    statistic such that ``target_exit_rate`` of the samples reaching that
    exit would stop there.
    """
    check_probability("target_exit_rate", target_exit_rate)
    num_exits = exit_logits.shape[0]
    thresholds = np.zeros(num_exits)
    n = exit_logits.shape[1]
    remaining = np.ones(n, dtype=bool)
    for i in range(num_exits):
        if kind == "entropy":
            stat = entropy_np(exit_logits[i], axis=-1)
            pool = stat[remaining] if remaining.any() else stat
            thresholds[i] = float(np.quantile(pool, target_exit_rate))
            takes = remaining & (stat <= thresholds[i])
        elif kind == "confidence":
            stat = softmax_np(exit_logits[i], axis=-1).max(axis=-1)
            pool = stat[remaining] if remaining.any() else stat
            thresholds[i] = float(np.quantile(pool, 1.0 - target_exit_rate))
            takes = remaining & (stat >= thresholds[i])
        else:
            raise ValueError(f"unknown threshold kind {kind!r}")
        remaining &= ~takes
    return np.clip(thresholds, 0.0, 1.0)
