"""Per-exit DVFS planning (the Predictive-Exit-style extension).

HADAS searches a single operating point per DyNN; related work (EdgeBERT
[13], Predictive Exit [14]) scales frequency per exit decision.  This module
plans such a per-exit table on top of a searched design: for every exit path
it sweeps the platform grid for the energy-optimal setting subject to a
latency budget, producing the table a :class:`~repro.runtime.governor.
DvfsGovernor` consumes.  ``examples/dvfs_sweep.py`` and the ablation bench
quantify the additional savings over the single-setting design.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.dynamic import DynamicEvaluator
from repro.exits.placement import ExitPlacement
from repro.hardware.dvfs import DvfsSetting, DvfsSpace


@dataclass(frozen=True)
class PerExitPlan:
    """Planned per-exit operating points and their expected savings."""

    placement: ExitPlacement
    settings: dict[int, DvfsSetting]  # exit index -> setting (index E = full)
    single_setting_energy_j: float
    per_exit_energy_j: float

    @property
    def extra_gain(self) -> float:
        """Energy saved by per-exit scaling over the best single setting."""
        if self.single_setting_energy_j <= 0:
            return 0.0
        return 1.0 - self.per_exit_energy_j / self.single_setting_energy_j


def plan_per_exit_dvfs(
    evaluator: DynamicEvaluator,
    placement: ExitPlacement,
    dvfs_space: DvfsSpace,
    latency_slack: float = 1.5,
) -> PerExitPlan:
    """Choose an energy-optimal setting per exit path.

    Parameters
    ----------
    evaluator:
        The backbone's dynamic evaluator (supplies per-path energy reports).
    placement:
        The exit configuration being deployed.
    latency_slack:
        Per-path latency bound as a multiple of the path's latency at
        maximum clocks; prevents the planner trading unbounded latency for
        energy.

    Notes
    -----
    The expected energies are usage-weighted with the same ideal-mapping
    fractions the design-time objective uses, so ``extra_gain`` is directly
    comparable with the searched single-setting result.
    """
    if latency_slack < 1.0:
        raise ValueError(f"latency_slack must be >= 1, got {latency_slack}")
    positions = placement.positions
    default = dvfs_space.default_setting()
    usage = evaluator.oracle.evaluate_placement(placement).usage
    candidates = dvfs_space.all_settings()

    def path_report(index: int, setting: DvfsSetting):
        if index < len(positions):
            return evaluator._exit_path_report(positions, index, setting)
        return evaluator._full_path_report(positions, setting)

    settings: dict[int, DvfsSetting] = {}
    per_exit_energy = np.zeros(len(positions) + 1)
    for index in range(len(positions) + 1):
        bound = path_report(index, default).latency_s * latency_slack
        best_setting, best_energy = default, path_report(index, default).energy_j
        for setting in candidates:
            report = path_report(index, setting)
            if report.latency_s <= bound and report.energy_j < best_energy:
                best_setting, best_energy = setting, report.energy_j
        settings[index] = best_setting
        per_exit_energy[index] = best_energy

    # Best single setting under the same slack rule, for a fair comparison.
    def expected_energy(setting: DvfsSetting) -> float:
        return float(
            sum(usage[i] * path_report(i, setting).energy_j for i in range(len(usage)))
        )

    full_bound = path_report(len(positions), default).latency_s * latency_slack
    feasible = [s for s in candidates if path_report(len(positions), s).latency_s <= full_bound]
    single_best = min(feasible or [default], key=expected_energy)

    return PerExitPlan(
        placement=placement,
        settings=settings,
        single_setting_energy_j=expected_energy(single_best),
        per_exit_energy_j=float(usage @ per_exit_energy),
    )
