"""Per-exit DVFS planning (the Predictive-Exit-style extension).

HADAS searches a single operating point per DyNN; related work (EdgeBERT
[13], Predictive Exit [14]) scales frequency per exit decision.  This module
plans such a per-exit table on top of a searched design: for every exit path
it sweeps the platform grid for the energy-optimal setting subject to a
latency budget, producing the table a :class:`~repro.runtime.governor.
DvfsGovernor` consumes.  ``examples/dvfs_sweep.py`` and the ablation bench
quantify the additional savings over the single-setting design.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.dynamic import DynamicEvaluator
from repro.exits.placement import ExitPlacement
from repro.hardware.dvfs import DvfsSetting, DvfsSpace


@dataclass(frozen=True)
class PerExitPlan:
    """Planned per-exit operating points and their expected savings."""

    placement: ExitPlacement
    settings: dict[int, DvfsSetting]  # exit index -> setting (index E = full)
    single_setting_energy_j: float
    per_exit_energy_j: float

    @property
    def extra_gain(self) -> float:
        """Energy saved by per-exit scaling over the best single setting."""
        if self.single_setting_energy_j <= 0:
            return 0.0
        return 1.0 - self.per_exit_energy_j / self.single_setting_energy_j


def plan_per_exit_dvfs(
    evaluator: DynamicEvaluator,
    placement: ExitPlacement,
    dvfs_space: DvfsSpace,
    latency_slack: float = 1.5,
) -> PerExitPlan:
    """Choose an energy-optimal setting per exit path.

    Parameters
    ----------
    evaluator:
        The backbone's dynamic evaluator (supplies per-path energy reports).
    placement:
        The exit configuration being deployed.
    latency_slack:
        Per-path latency bound as a multiple of the path's latency at
        maximum clocks; prevents the planner trading unbounded latency for
        energy.

    Notes
    -----
    The expected energies are usage-weighted with the same ideal-mapping
    fractions the design-time objective uses, so ``extra_gain`` is directly
    comparable with the searched single-setting result.

    Costs come from :meth:`DynamicEvaluator.path_costs` — the cost-table
    bank when the evaluator runs on tables (one O(exits) gather per setting
    instead of an O(layers × exits) walk per (path, setting) pair), the
    reference loop otherwise; plans are identical either way.
    """
    if latency_slack < 1.0:
        raise ValueError(f"latency_slack must be >= 1, got {latency_slack}")
    positions = placement.positions
    default = dvfs_space.default_setting()
    usage = evaluator.oracle.evaluate_placement(placement).usage
    candidates = dvfs_space.all_settings()

    def all_path_costs(setting: DvfsSetting) -> tuple[np.ndarray, np.ndarray]:
        """(energy, latency) arrays over every path (exits then full)."""
        exit_energy, exit_latency, full_energy, full_latency = evaluator.path_costs(
            positions, setting
        )
        return (
            np.append(exit_energy, full_energy),
            np.append(exit_latency, full_latency),
        )

    default_energy, default_latency = all_path_costs(default)
    candidate_costs = [(setting, *all_path_costs(setting)) for setting in candidates]

    settings: dict[int, DvfsSetting] = {}
    per_exit_energy = np.zeros(len(positions) + 1)
    for index in range(len(positions) + 1):
        bound = default_latency[index] * latency_slack
        best_setting, best_energy = default, default_energy[index]
        for setting, energies, latencies in candidate_costs:
            if latencies[index] <= bound and energies[index] < best_energy:
                best_setting, best_energy = setting, energies[index]
        settings[index] = best_setting
        per_exit_energy[index] = best_energy

    # Best single setting under the same slack rule, for a fair comparison.
    def expected_energy(energies: np.ndarray) -> float:
        return float(
            sum(usage[i] * energies[i] for i in range(len(usage)))
        )

    full_bound = default_latency[len(positions)] * latency_slack
    feasible = [
        (setting, energies)
        for setting, energies, latencies in candidate_costs
        if latencies[len(positions)] <= full_bound
    ]
    single_best = min(
        feasible or [(default, default_energy)],
        key=lambda item: expected_energy(item[1]),
    )

    return PerExitPlan(
        placement=placement,
        settings=settings,
        single_setting_energy_j=expected_energy(single_best[1]),
        per_exit_energy_j=float(usage @ per_exit_energy),
    )
