"""DVFS governors: apply operating points at deployment.

The searched design carries one (core, EMC) setting; related work (EdgeBERT
[13], Predictive Exit [14]) additionally scales frequency *after* the exit
decision is known.  :class:`DvfsGovernor` supports both: a single static
setting, or a per-exit table that emulates post-exit scaling with a
switching-overhead charge per transition.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.dvfs import DvfsSetting
from repro.utils.validation import check_nonneg


class DvfsGovernor:
    """Resolves the DVFS setting used for a sample given its taken exit.

    Parameters
    ----------
    default:
        The setting used when no per-exit override exists.
    per_exit:
        Optional mapping exit-index -> setting (index E = full network).
    switch_cost_j:
        Energy charged whenever consecutive samples run at different
        settings (frequency-transition overhead).
    """

    def __init__(
        self,
        default: DvfsSetting,
        per_exit: dict[int, DvfsSetting] | None = None,
        switch_cost_j: float = 0.0,
    ):
        check_nonneg("switch_cost_j", switch_cost_j)
        self.default = default
        self.per_exit = dict(per_exit or {})
        self.switch_cost_j = switch_cost_j

    def setting_for(self, exit_index: int) -> DvfsSetting:
        """Setting applied to a sample that leaves at ``exit_index``."""
        return self.per_exit.get(int(exit_index), self.default)

    def switching_energy(self, decisions: np.ndarray) -> float:
        """Total transition energy across a decision sequence."""
        if self.switch_cost_j == 0.0 or len(decisions) < 2:
            return 0.0
        settings = [self.setting_for(d) for d in decisions]
        transitions = sum(
            1 for prev, cur in zip(settings[:-1], settings[1:]) if prev != cur
        )
        return transitions * self.switch_cost_j
