"""Deployment simulation: controller + governor + hardware over a stream.

Replays per-sample exit decisions against the per-exit execution costs to
report what a deployed DyNN would actually deliver — the bridge between the
design-time ideal-mapping objective and a realistic entropy-thresholded
deployment (quantified in ``examples/edge_deployment.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.dynamic import DynamicEvaluator
from repro.exits.placement import ExitPlacement
from repro.runtime.controller import ExitController
from repro.runtime.governor import DvfsGovernor


@dataclass(frozen=True)
class RuntimeReport:
    """Aggregate deployment statistics over a sample stream."""

    accuracy: float
    mean_energy_j: float
    mean_latency_s: float
    exit_usage: np.ndarray  # fraction per exit, last = full network
    switching_energy_j: float

    @property
    def early_exit_fraction(self) -> float:
        return float(self.exit_usage[:-1].sum())


class StreamSimulator:
    """Simulates deployment of one (b, x, f) design on a logits stream."""

    def __init__(
        self,
        evaluator: DynamicEvaluator,
        placement: ExitPlacement,
        governor: DvfsGovernor,
    ):
        self.evaluator = evaluator
        self.placement = placement
        self.governor = governor
        positions = placement.positions
        self._path_reports: dict[tuple[int, float, float], tuple[float, float]] = {}
        self._positions = positions

    def _path_cost(self, exit_index: int) -> tuple[float, float]:
        """(energy, latency) of leaving at ``exit_index`` under its setting."""
        setting = self.governor.setting_for(exit_index)
        key = (exit_index, setting.core_ghz, setting.emc_ghz)
        if key not in self._path_reports:
            if exit_index < len(self._positions):
                report = self.evaluator._exit_path_report(
                    self._positions, exit_index, setting
                )
            else:
                report = self.evaluator._full_path_report(self._positions, setting)
            self._path_reports[key] = (report.energy_j, report.latency_s)
        return self._path_reports[key]

    def simulate(
        self,
        exit_logits: np.ndarray,
        final_logits: np.ndarray,
        labels: np.ndarray,
        controller: ExitController,
    ) -> RuntimeReport:
        """Run the controller over the stream and aggregate outcomes.

        ``exit_logits`` has shape (E, n, classes) ordered by position;
        ``final_logits`` is (n, classes).
        """
        num_exits, n, _ = exit_logits.shape
        if num_exits != self.placement.num_exits:
            raise ValueError(
                f"stream has {num_exits} exits, placement expects {self.placement.num_exits}"
            )
        decisions = controller.decide(exit_logits, labels)

        predictions = np.empty(n, dtype=np.int64)
        energy = np.empty(n)
        latency = np.empty(n)
        usage = np.zeros(num_exits + 1)
        for i in range(num_exits):
            mask = decisions == i
            usage[i] = mask.mean()
            if mask.any():
                predictions[mask] = exit_logits[i, mask].argmax(axis=-1)
                e, lat = self._path_cost(i)
                energy[mask] = e
                latency[mask] = lat
        mask = decisions == num_exits
        usage[-1] = mask.mean()
        if mask.any():
            predictions[mask] = final_logits[mask].argmax(axis=-1)
            e, lat = self._path_cost(num_exits)
            energy[mask] = e
            latency[mask] = lat

        switching = self.governor.switching_energy(decisions)
        return RuntimeReport(
            accuracy=float((predictions == labels).mean()),
            mean_energy_j=float(energy.mean() + switching / n),
            mean_latency_s=float(latency.mean()),
            exit_usage=usage,
            switching_energy_j=switching,
        )
