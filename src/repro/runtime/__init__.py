"""Runtime controllers and deployment simulation (paper §IV-C).

HADAS optimises designs under *ideal* input-to-exit mapping; at deployment a
runtime controller implements the actual mapping policy.  Models from HADAS
are "compatible with any class of runtime controllers existing in the
literature" — this package provides the standard ones:

* :class:`~repro.runtime.controller.OracleController` — the ideal mapping
  (needs labels; design-time reference);
* :class:`~repro.runtime.controller.EntropyThresholdController` — exit when
  predictive entropy falls below a per-exit threshold (BranchyNet-style);
* :class:`~repro.runtime.controller.ConfidenceThresholdController` — exit on
  max-softmax confidence;
* :func:`~repro.runtime.controller.tune_thresholds` — calibrate thresholds
  on a validation stream for a target early-exit rate;
* :class:`~repro.runtime.governor.DvfsGovernor` — applies the searched DVFS
  setting (optionally per-exit scaling, as in Predictive Exit [14]);
* :class:`~repro.runtime.simulator.StreamSimulator` — replays a sample
  stream through controller + hardware model and reports accuracy / energy /
  latency / exit usage.
"""

from repro.runtime.controller import (
    BudgetedController,
    ConfidenceThresholdController,
    EntropyThresholdController,
    ExitController,
    OracleController,
    tune_thresholds,
)
from repro.runtime.governor import DvfsGovernor
from repro.runtime.planner import PerExitPlan, plan_per_exit_dvfs
from repro.runtime.simulator import RuntimeReport, StreamSimulator

__all__ = [
    "ExitController",
    "OracleController",
    "EntropyThresholdController",
    "ConfidenceThresholdController",
    "BudgetedController",
    "tune_thresholds",
    "DvfsGovernor",
    "plan_per_exit_dvfs",
    "PerExitPlan",
    "StreamSimulator",
    "RuntimeReport",
]
