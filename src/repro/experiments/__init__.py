"""Experiment drivers reproducing every table and figure of the paper.

Each module owns one artifact and exposes ``run(profile) -> result`` plus a
``render(result) -> str`` that prints the paper-style rows/series next to
the paper's published numbers (recorded in EXPERIMENTS.md):

======================  =====================================================
module                  paper artifact
======================  =====================================================
``fig1``                Fig. 1 — motivational accuracy/energy bars
``table1``              Table I — related-work feature matrix
``table2``              Table II — joint search-space definition/cardinality
``fig5``                Fig. 5 — OOE static Paretos + IOE dynamic Paretos
``fig6``                Fig. 6 — hypervolume + ratio-of-dominance bars
``fig7``                Fig. 7 — dissimilarity-regulariser ablation
``table3``              Table III — DyNN comparison on the TX2 Pascal GPU
======================  =====================================================

``config.Profile`` selects the search budget: ``fast`` for tests/benches,
``paper`` for budgets close to the published 450/3500 iterations.
"""

from repro.experiments.config import Profile
from repro.experiments.runner import (
    PlatformExperiment,
    run_platform_experiment,
    run_platform_experiments,
)

__all__ = [
    "Profile",
    "PlatformExperiment",
    "run_platform_experiment",
    "run_platform_experiments",
]
