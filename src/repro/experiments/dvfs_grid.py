"""Exhaustive core × EMC DVFS grids as first-class cached artifacts.

HADAS's inner search samples the (X, F) space; deployment questions
("what is the true energy-optimal operating point for *this* DyNN?",
"how flat is the energy landscape around the searched setting?") want the
*whole* grid.  With the population kernel one grid column — every placement
at one setting — is a single stacked gather, so an exhaustive sweep costs
O(settings) kernel calls instead of O(settings × placements) Python
evaluations.

Two computation paths, bit-identical by construction:

* :func:`compute_grid` — inline, one
  :meth:`~repro.eval.dynamic.DynamicEvaluator.evaluate_population` call per
  setting.
* :func:`sharded_grid` — lowers the sweep to ``population-eval`` task specs
  (one per (placement-chunk, setting)) and runs them on an
  :class:`~repro.engine.service.EvaluationService`; with a cache attached,
  every (chunk, setting) cell persists under its spec fingerprint, making
  repeat sweeps pure cache reads.

Both fill the same (P, C, E) arrays: placement × core-index × emc-index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.dynamic import DynamicEvaluator
from repro.exits.placement import ExitPlacement
from repro.hardware.dvfs import DvfsSetting, DvfsSpace


@dataclass(frozen=True)
class DvfsGridArtifact:
    """One exhaustive sweep: every placement at every grid setting.

    Arrays are shaped ``(P, C, E)`` — placement index × core-frequency
    index × EMC-frequency index, matching ``core_ghz``/``emc_ghz`` order.
    """

    platform: str
    backbone_key: str
    placements: tuple[tuple[int, ...], ...]
    core_ghz: tuple[float, ...]
    emc_ghz: tuple[float, ...]
    dynamic_energy_j: np.ndarray
    dynamic_latency_s: np.ndarray
    d_score: np.ndarray

    @property
    def num_settings(self) -> int:
        return len(self.core_ghz) * len(self.emc_ghz)

    def min_energy_j(self, placement_index: int = 0) -> float:
        """Lowest dynamic energy over the grid for one placement.

        Exact minimum of the same float set an explicit candidate loop
        would compare, hence order-independent and bit-identical to it.
        """
        return float(self.dynamic_energy_j[placement_index].min())

    def best_energy_setting(self, placement_index: int = 0) -> DvfsSetting:
        """The setting achieving :meth:`min_energy_j` (first in grid order)."""
        grid = self.dynamic_energy_j[placement_index]
        ci, ei = np.unravel_index(int(np.argmin(grid)), grid.shape)
        return DvfsSetting(self.core_ghz[int(ci)], self.emc_ghz[int(ei)])

    def to_jsonable(self) -> dict:
        """Slim JSON form (for report files; arrays become nested lists)."""
        return {
            "platform": self.platform,
            "backbone_key": self.backbone_key,
            "placements": [list(p) for p in self.placements],
            "core_ghz": list(self.core_ghz),
            "emc_ghz": list(self.emc_ghz),
            "dynamic_energy_j": self.dynamic_energy_j.tolist(),
            "dynamic_latency_s": self.dynamic_latency_s.tolist(),
            "d_score": self.d_score.tolist(),
        }


def _empty_arrays(shape: tuple[int, int, int]):
    return (np.zeros(shape), np.zeros(shape), np.zeros(shape))


def compute_grid(
    evaluator: DynamicEvaluator,
    dvfs_space: DvfsSpace,
    placements: list[ExitPlacement],
) -> DvfsGridArtifact:
    """Inline exhaustive sweep: one stacked kernel call per grid setting."""
    shape = (len(placements), len(dvfs_space.core_freqs), len(dvfs_space.emc_freqs))
    energy, latency, score = _empty_arrays(shape)
    for ci in range(len(dvfs_space.core_freqs)):
        for ei in range(len(dvfs_space.emc_freqs)):
            evaluations = evaluator.evaluate_population(
                placements, dvfs_space.decode(ci, ei)
            )
            for pi, evaluation in enumerate(evaluations):
                energy[pi, ci, ei] = evaluation.dynamic_energy_j
                latency[pi, ci, ei] = evaluation.dynamic_latency_s
                score[pi, ci, ei] = evaluation.d_score
    return DvfsGridArtifact(
        platform=dvfs_space.platform.key,
        backbone_key=evaluator.config.key,
        placements=tuple(p.positions for p in placements),
        core_ghz=tuple(dvfs_space.core_freqs),
        emc_ghz=tuple(dvfs_space.emc_freqs),
        dynamic_energy_j=energy,
        dynamic_latency_s=latency,
        d_score=score,
    )


def grid_specs(
    platform: str,
    backbone,
    placements: list[ExitPlacement],
    dvfs_space: DvfsSpace,
    *,
    num_classes: int = 100,
    seed: int = 0,
    gamma: float = 1.0,
    oracle_samples: int = 2048,
    literal_ratios: bool = False,
    capability_model=None,
    cache_dir: str | None = None,
    chunk_size: int = 256,
) -> list:
    """One ``population-eval`` spec per (placement-chunk, grid setting).

    Settings iterate in grid order (core-major, matching
    :meth:`DvfsSpace.all_settings`); chunks preserve placement order, so
    :func:`assemble_grid` can rebuild the (P, C, E) arrays positionally.
    """
    from repro.engine.tasks import task_spec

    chunks = [
        [list(p.positions) for p in placements[start : start + chunk_size]]
        for start in range(0, len(placements), chunk_size)
    ]
    return [
        task_spec(
            "population-eval",
            platform=platform,
            num_classes=num_classes,
            seed=seed,
            backbone=backbone,
            placements=chunk,
            core_ghz=core,
            emc_ghz=emc,
            gamma=gamma,
            oracle_samples=oracle_samples,
            literal_ratios=literal_ratios,
            capability_model=capability_model,
            cache_dir=cache_dir,
        )
        for core in dvfs_space.core_freqs
        for emc in dvfs_space.emc_freqs
        for chunk in chunks
    ]


def assemble_grid(
    platform: str,
    backbone_key: str,
    placements: list[ExitPlacement],
    dvfs_space: DvfsSpace,
    results: list,
    chunk_size: int = 256,
) -> DvfsGridArtifact:
    """Rebuild the (P, C, E) artifact from :func:`grid_specs` results.

    ``results`` must be in the spec order :func:`grid_specs` produced.
    """
    shape = (len(placements), len(dvfs_space.core_freqs), len(dvfs_space.emc_freqs))
    energy, latency, score = _empty_arrays(shape)
    num_chunks = max(1, -(-len(placements) // chunk_size))
    cursor = 0
    for ci in range(len(dvfs_space.core_freqs)):
        for ei in range(len(dvfs_space.emc_freqs)):
            offset = 0
            for _ in range(num_chunks):
                for row in results[cursor]:
                    energy[offset, ci, ei] = row["dynamic_energy_j"]
                    latency[offset, ci, ei] = row["dynamic_latency_s"]
                    score[offset, ci, ei] = row["d_score"]
                    offset += 1
                cursor += 1
            if offset != len(placements):
                raise ValueError(
                    f"grid cell ({ci}, {ei}) assembled {offset} rows, "
                    f"expected {len(placements)}"
                )
    return DvfsGridArtifact(
        platform=platform,
        backbone_key=backbone_key,
        placements=tuple(p.positions for p in placements),
        core_ghz=tuple(dvfs_space.core_freqs),
        emc_ghz=tuple(dvfs_space.emc_freqs),
        dynamic_energy_j=energy,
        dynamic_latency_s=latency,
        d_score=score,
    )


def sharded_grid(
    platform: str,
    backbone,
    placements: list[ExitPlacement],
    *,
    workers: int = 1,
    executor: str = "auto",
    cache_dir: str | None = None,
    service=None,
    **spec_kwargs,
) -> DvfsGridArtifact:
    """Exhaustive sweep via ``population-eval`` specs on a service.

    Each (chunk, setting) cell caches under its spec fingerprint when a
    ``cache_dir`` is given, so regenerating a grid is a batch of cache
    reads.  Pass an open ``service`` to reuse one pool across platforms.
    Bit-identical to :func:`compute_grid` on the same inputs — the worker
    context derives the identical oracle/evaluator stack from the spec.
    """
    from repro.engine.cache import ResultCache
    from repro.engine.service import EvaluationService
    from repro.engine.tasks import spec_task
    from repro.hardware.platform import get_platform

    dvfs_space = DvfsSpace(get_platform(platform))
    chunk_size = spec_kwargs.pop("chunk_size", 256)
    specs = grid_specs(
        platform,
        backbone,
        placements,
        dvfs_space,
        cache_dir=cache_dir,
        chunk_size=chunk_size,
        **spec_kwargs,
    )
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    tasks = [spec_task(spec, cache=cache) for spec in specs]
    if service is not None:
        results = service.evaluate_batch(tasks)
    else:
        with EvaluationService(
            executor=executor, workers=workers, cache=cache
        ) as opened:
            results = opened.evaluate_batch(tasks)
    return assemble_grid(
        platform, backbone.key, placements, dvfs_space, results, chunk_size=chunk_size
    )
