"""Fig. 1: motivational comparison of a0, a6 and a HADAS model (TX2 GPU).

Three optimisation stages are applied to each model:

* **Static** — the backbone alone at default clocks;
* **Dyn** — early-exiting integrated (ideal mapping, default clocks);
* **Dyn w/ HW** — early-exiting plus the searched DVFS setting.

The paper's annotations: after Static, a0 is ~22 % more energy-efficient
than HADAS's (larger) model; after Dyn they tie; after Dyn w/ HW the HADAS
model is ~19 % more efficient than a0 — while matching a6's accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import table3 as table3_mod
from repro.experiments.config import Profile
from repro.utils.ascii_plot import bars
from repro.utils.tables import format_table


@dataclass(frozen=True)
class Fig1Stage:
    """One model's metrics across the three stages."""

    name: str
    static_acc: float
    dyn_acc: float
    static_energy_mj: float
    dyn_energy_mj: float
    dyn_hw_energy_mj: float


@dataclass
class Fig1Result:
    """Per-model stage metrics plus the derived annotations."""

    stages: list[Fig1Stage]

    def model(self, name: str) -> Fig1Stage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(name)

    def static_efficiency_vs_a0(self) -> float:
        """a0's energy advantage over HADAS at the Static stage (paper ~22%)."""
        hadas = self.model("HADAS")
        a0 = self.model("a0")
        return 1.0 - a0.static_energy_mj / hadas.static_energy_mj

    def dyn_hw_gain_vs_a0(self) -> float:
        """HADAS's energy advantage over a0 after Dyn w/ HW (paper ~19%)."""
        hadas = self.model("HADAS")
        a0 = self.model("a0")
        return 1.0 - hadas.dyn_hw_energy_mj / a0.dyn_hw_energy_mj

    def dyn_hw_gain_vs_a6(self) -> float:
        """HADAS's energy advantage over a6 after Dyn w/ HW (paper ~57%)."""
        hadas = self.model("HADAS")
        a6 = self.model("a6")
        return 1.0 - hadas.dyn_hw_energy_mj / a6.dyn_hw_energy_mj


def run(profile: Profile | None = None, platform: str = "tx2-gpu") -> Fig1Result:
    """Regenerate the motivational example from the Table III computation."""
    table3 = table3_mod.run(profile, platform)
    rows = {
        "a0": table3.row("AttentiveNAS-a0"),
        "a6": table3.row("AttentiveNAS-a6"),
        "HADAS": table3.row("HADAS-b1"),
    }
    stages = [
        Fig1Stage(
            name=name,
            static_acc=row.baseline_acc,
            dyn_acc=row.eex_acc,
            static_energy_mj=row.baseline_energy_mj,
            dyn_energy_mj=row.eex_energy_mj,
            dyn_hw_energy_mj=row.eex_dvfs_energy_mj,
        )
        for name, row in rows.items()
    ]
    return Fig1Result(stages=stages)


def render(result: Fig1Result) -> str:
    """Accuracy table + energy bars, with the paper's annotations."""
    acc_table = format_table(
        ["Model", "Static Acc(%)", "Dyn Acc(%)"],
        [[s.name, s.static_acc, s.dyn_acc] for s in result.stages],
        title="Fig. 1 (left): accuracy by optimisation stage",
    )
    energy_values = {}
    for stage in result.stages:
        energy_values[f"{stage.name} Static"] = stage.static_energy_mj
        energy_values[f"{stage.name} Dyn"] = stage.dyn_energy_mj
        energy_values[f"{stage.name} Dyn w/HW"] = stage.dyn_hw_energy_mj
    energy_plot = bars(
        energy_values, title="Fig. 1 (right): energy by optimisation stage", unit="mJ"
    )
    annotations = (
        f"a0 vs HADAS at Static: a0 {result.static_efficiency_vs_a0() * 100:+.0f}% "
        "more efficient (paper: ~22%)\n"
        f"HADAS vs a0 at Dyn w/HW: {result.dyn_hw_gain_vs_a0() * 100:+.0f}% (paper: ~19%)\n"
        f"HADAS vs a6 at Dyn w/HW: {result.dyn_hw_gain_vs_a6() * 100:+.0f}% (paper: ~57%)"
    )
    return "\n\n".join([acc_table, energy_plot, annotations])
