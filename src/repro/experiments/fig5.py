"""Fig. 5: OOE static Paretos (top) and IOE dynamic Paretos (bottom).

Top row — static (accuracy, energy) of every backbone the OOE explored,
against the a0..a6 baselines, one panel per platform.  Paper anchors on the
AGX Volta GPU: a backbone dominates a6 with ~33 % less energy at the same
accuracy, and another dominates a1 with +2.34 % accuracy at the same energy.

Bottom row — dynamic (energy gain, mean N_i) of the (b, x, f) combinations
explored by the IOE, HADAS vs the optimized baselines, with the ratio of
dominance annotated (paper: 51.9 / 37.5 / 82.4 / 62.1 % across the four
platforms, mean 58.4 %).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.config import Profile
from repro.experiments.runner import PlatformExperiment, run_platform_experiments
from repro.hardware.platform import PAPER_PLATFORM_ORDER
from repro.metrics.pareto import non_dominated_mask, pareto_front
from repro.utils.ascii_plot import scatter

#: Paper's bottom-row RoD annotations, in platform order.
PAPER_ROD = {"agx-gpu": 0.519, "carmel-cpu": 0.375, "tx2-gpu": 0.824, "denver-cpu": 0.621}


@dataclass
class Fig5Panel:
    """One platform's panel pair."""

    platform: str
    experiment: PlatformExperiment

    # ------------------------------------------------------------ top panel
    def static_series(self) -> dict[str, np.ndarray]:
        """Explored backbones, their Pareto front, and the baselines."""
        explored = self.experiment.hadas.outer.static_points()
        front = explored[non_dominated_mask(_acc_energy_to_max(explored))]
        baselines = np.asarray(
            [
                (ev.accuracy, ev.energy_j)
                for ev in self.experiment.baseline_static.values()
            ]
        )
        return {"explored": explored, "front": front, "baselines": baselines}

    def baseline_domination(self) -> dict[str, dict[str, float]]:
        """Per-baseline: best energy reduction at >= accuracy, best accuracy
        gain at <= energy, over HADAS's explored backbones."""
        explored = self.experiment.hadas.outer.static_points()
        report = {}
        for name, ev in self.experiment.baseline_static.items():
            at_least_as_accurate = explored[explored[:, 0] >= ev.accuracy]
            energy_reduction = (
                1.0 - at_least_as_accurate[:, 1].min() / ev.energy_j
                if len(at_least_as_accurate)
                else float("-inf")
            )
            no_more_energy = explored[explored[:, 1] <= ev.energy_j]
            accuracy_gain = (
                no_more_energy[:, 0].max() - ev.accuracy
                if len(no_more_energy)
                else float("-inf")
            )
            report[name] = {
                "energy_reduction": energy_reduction,
                "accuracy_gain": accuracy_gain,
            }
        return report

    # --------------------------------------------------------- bottom panel
    def dynamic_series(self) -> dict[str, np.ndarray]:
        ours = self.experiment.hadas_dynamic_points()
        theirs = self.experiment.baseline_dynamic_points(pareto_only=False)
        return {
            "Hadas": ours,
            "Optimized baselines": pareto_front(theirs),
            "baseline explored": theirs,
        }

    def rod(self) -> float:
        """RoD of HADAS over the optimized baselines on this platform."""
        return self.experiment.dominance().rod_a_over_b


@dataclass
class Fig5Result:
    """All four platform panels."""

    panels: dict[str, Fig5Panel]

    def mean_rod(self) -> float:
        """Across-platform mean RoD (paper: 58.4 %)."""
        return float(np.mean([panel.rod() for panel in self.panels.values()]))


def _acc_energy_to_max(points: np.ndarray) -> np.ndarray:
    """(acc, energy) -> maximisation convention (acc, -energy)."""
    flipped = points.copy()
    flipped[:, 1] = -flipped[:, 1]
    return flipped


def run(
    profile: Profile | None = None,
    platforms: tuple[str, ...] = PAPER_PLATFORM_ORDER,
) -> Fig5Result:
    """Regenerate both rows of Fig. 5.

    All platforms are submitted as one sharded batch: a multi-worker
    profile runs them concurrently (one process shard each) with results
    bit-identical to the serial loop.
    """
    experiments = run_platform_experiments(platforms, profile)
    panels = {
        platform: Fig5Panel(platform, experiments[platform]) for platform in platforms
    }
    return Fig5Result(panels=panels)


def render(result: Fig5Result) -> str:
    """ASCII panels with the paper's RoD values alongside."""
    blocks = []
    for platform, panel in result.panels.items():
        static = panel.static_series()
        top = scatter(
            {
                "explored": [tuple(p) for p in static["explored"]],
                "baselines": [tuple(p) for p in static["baselines"]],
                "front": [tuple(p) for p in static["front"]],
            },
            title=f"Fig.5 top - {platform}: static accuracy vs energy",
            xlabel="accuracy %",
            ylabel="energy J",
            width=60,
            height=12,
        )
        dynamic = panel.dynamic_series()
        bottom = scatter(
            {
                "baseline explored": [tuple(p) for p in dynamic["baseline explored"]],
                "Optimized baselines": [tuple(p) for p in dynamic["Optimized baselines"]],
                "Hadas": [tuple(p) for p in dynamic["Hadas"]],
            },
            title=f"Fig.5 bottom - {platform}: energy gain vs mean N_i",
            xlabel="energy gain",
            ylabel="mean N_i",
            width=60,
            height=12,
        )
        rod = panel.rod()
        paper_rod = PAPER_ROD.get(platform)
        note = f"RoD(HADAS over baselines) = {rod * 100:.1f}%"
        if paper_rod is not None:
            note += f" (paper: {paper_rod * 100:.1f}%)"
        blocks.extend([top, bottom, note])
    blocks.append(
        f"mean RoD across platforms = {result.mean_rod() * 100:.1f}% (paper: 58.4%)"
    )
    return "\n\n".join(blocks)
