"""Table I: qualitative feature comparison with related work.

A static matrix — reproduced so the benchmark suite regenerates *every*
table — but the feature columns for HADAS itself are derived from the live
library (the row is asserted against what the code actually provides).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RelatedWork:
    """One row: which co-optimisation axes a framework covers."""

    name: str
    early_exiting: bool
    nas: bool
    dvfs: bool
    compatibility: bool  # leverages existing pretrained supernets


ROWS: tuple[RelatedWork, ...] = (
    RelatedWork("BranchyNet [2]", True, False, False, False),
    RelatedWork("CDLN [4]", True, False, False, False),
    RelatedWork("S2dnas [10]", True, True, False, False),
    RelatedWork("Dynamic-OFA [6]", False, True, False, True),
    RelatedWork("EExNAS [3]", True, True, False, False),
    RelatedWork("Edgebert [13]", True, False, True, False),
    RelatedWork("Predictive Exit [14]", True, False, True, False),
    RelatedWork("HADAS", True, True, True, True),
)


def hadas_row_from_library() -> RelatedWork:
    """Derive HADAS's feature row from what the library implements."""
    from repro.exits.placement import ExitSpace  # early exiting
    from repro.hardware.dvfs import DvfsSpace  # DVFS
    from repro.search.ooe import OuterEngine  # NAS
    from repro.supernet.supernet import MiniSupernet  # supernet compat

    return RelatedWork(
        name="HADAS",
        early_exiting=ExitSpace is not None,
        nas=OuterEngine is not None,
        dvfs=DvfsSpace is not None,
        compatibility=MiniSupernet is not None,
    )


def run() -> tuple[RelatedWork, ...]:
    """Return the matrix, with the HADAS row derived from the code."""
    derived = hadas_row_from_library()
    return tuple(row if row.name != "HADAS" else derived for row in ROWS)


def render(rows: tuple[RelatedWork, ...]) -> str:
    from repro.utils.tables import format_table

    return format_table(
        ["Work", "Early-Exiting", "NAS", "DVFS", "Compatibility"],
        [[r.name, r.early_exiting, r.nas, r.dvfs, r.compatibility] for r in rows],
        title="Table I - comparison between related works and ours",
    )
