"""Fig. 7: ablation of the dissimilarity regulariser dissim^gamma (eq. 6).

The paper runs the IOE twice on one fixed backbone — with and without the
dissimilarity term — over two ranges of gamma, and reports that including it
improves RoD by ~15 % (low gamma) and ~41 % (high gamma), with the extreme
Pareto models ~43 % more accurate and ~52 % more energy-efficient.

We reproduce exactly that protocol: gamma = 0 (off) against a low and a high
gamma setting on the same backbone and budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accuracy.exit_model import ExitCapabilityModel
from repro.arch.config import BackboneConfig
from repro.baselines.attentivenas import attentivenas_model
from repro.eval.static import StaticEvaluator
from repro.experiments.config import Profile
from repro.hardware.platform import get_platform
from repro.accuracy.surrogate import AccuracySurrogate
from repro.metrics.dominance_ratio import dominance_report
from repro.search.ioe import InnerEngine, InnerResult
from repro.search.nsga2 import Nsga2Config
from repro.utils.tables import format_table

#: Published improvements for the two gamma ranges.
PAPER = {"low": {"rod_improvement": 0.15}, "high": {"rod_improvement": 0.41}}


@dataclass
class Fig7Arm:
    """One IOE run at a fixed gamma."""

    gamma: float
    result: InnerResult

    def points(self) -> np.ndarray:
        """(energy gain, dynamic accuracy) — dissimilar exits overlap less,
        so their union (EEx) accuracy is where the regulariser pays off."""
        return self.result.points_2d(accuracy="dynamic")


@dataclass
class Fig7Result:
    """Without-dissim arm vs the two with-dissim arms."""

    backbone_key: str
    without: Fig7Arm
    with_low: Fig7Arm
    with_high: Fig7Arm

    def rod_improvement(self, arm: Fig7Arm) -> float:
        """RoD advantage of the with-dissim arm over the without arm."""
        report = dominance_report(arm.points(), self.without.points())
        return report.rod_a_over_b - report.rod_b_over_a

    def extreme_gains(self, arm: Fig7Arm) -> tuple[float, float]:
        """Relative (mean-N_i, energy-gain) improvement of the Pareto
        extremes over the without-dissim extremes."""
        ours, theirs = arm.points(), self.without.points()
        acc_gain = ours[:, 1].max() / max(theirs[:, 1].max(), 1e-9) - 1.0
        energy_gain = ours[:, 0].max() / max(theirs[:, 0].max(), 1e-9) - 1.0
        return acc_gain, energy_gain


def run(
    profile: Profile | None = None,
    platform: str = "tx2-gpu",
    backbone: BackboneConfig | None = None,
    gamma_low: float = 0.8,
    gamma_high: float = 2.5,
) -> Fig7Result:
    """Run the three-arm ablation on one backbone."""
    profile = profile or Profile.fast()
    backbone = backbone or attentivenas_model("a3")
    plat = get_platform(platform)
    surrogate = AccuracySurrogate(seed=profile.seed)
    static_eval = StaticEvaluator(plat, surrogate, seed=profile.seed)
    acc_fraction = surrogate.accuracy_fraction(backbone)
    # The ablation needs enough selection pressure for gamma to reshape the
    # search; give it at least ~10 generations even on the fast profile
    # (evaluations are cached per placement, so this stays cheap).
    nsga = Nsga2Config(
        population=max(profile.inner_population, 20),
        generations=max(profile.inner_generations, 10),
    )

    def arm(gamma: float) -> Fig7Arm:
        engine = InnerEngine(
            config=backbone,
            static_evaluator=static_eval,
            backbone_accuracy_fraction=acc_fraction,
            nsga=nsga,
            gamma=gamma,
            capability_model=ExitCapabilityModel(),
            oracle_samples=profile.oracle_samples,
            seed=profile.seed,
        )
        return Fig7Arm(gamma=gamma, result=engine.run())

    return Fig7Result(
        backbone_key=backbone.key,
        without=arm(0.0),
        with_low=arm(gamma_low),
        with_high=arm(gamma_high),
    )


def render(result: Fig7Result) -> str:
    rows = []
    for label, arm in (("low", result.with_low), ("high", result.with_high)):
        acc_gain, energy_gain = result.extreme_gains(arm)
        rows.append(
            [
                f"gamma={arm.gamma:g} ({label})",
                result.rod_improvement(arm) * 100,
                PAPER[label]["rod_improvement"] * 100,
                acc_gain * 100,
                energy_gain * 100,
            ]
        )
    return format_table(
        [
            "arm", "RoD improvement %", "paper RoD %",
            "extreme mean-N_i gain %", "extreme energy-gain %",
        ],
        rows,
        title=f"Fig. 7 - dissimilarity ablation on {result.backbone_key}",
    )
