"""Fig. 6: hypervolume and ratio-of-dominance comparison.

Paper values across (AGX GPU, Carmel CPU, TX2 GPU, Denver CPU): HADAS's
hypervolume coverage exceeds the optimized baselines' by 15 / 23 / 16 / 11 %
and its RoD advantage by 73 / 50 / 95 / 44 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import Profile
from repro.experiments.runner import run_platform_experiments
from repro.hardware.platform import PAPER_PLATFORM_ORDER
from repro.utils.ascii_plot import bars
from repro.utils.tables import format_table

#: Published relative improvements, in platform order.
PAPER_HV_GAIN = {"agx-gpu": 0.15, "carmel-cpu": 0.23, "tx2-gpu": 0.16, "denver-cpu": 0.11}
PAPER_ROD_GAIN = {"agx-gpu": 0.73, "carmel-cpu": 0.50, "tx2-gpu": 0.95, "denver-cpu": 0.44}


@dataclass(frozen=True)
class Fig6Row:
    """One platform's metric pair."""

    platform: str
    hv_hadas: float
    hv_baseline: float
    rod_hadas: float
    rod_baseline: float

    @property
    def hv_gain(self) -> float:
        """Relative hypervolume advantage of HADAS."""
        if self.hv_baseline == 0:
            return float("inf")
        return self.hv_hadas / self.hv_baseline - 1.0

    @property
    def rod_advantage(self) -> float:
        """Absolute RoD advantage (ours-over-theirs minus theirs-over-ours)."""
        return self.rod_hadas - self.rod_baseline


@dataclass
class Fig6Result:
    rows: list[Fig6Row]

    def row(self, platform: str) -> Fig6Row:
        for r in self.rows:
            if r.platform == platform:
                return r
        raise KeyError(platform)


def run(
    profile: Profile | None = None,
    platforms: tuple[str, ...] = PAPER_PLATFORM_ORDER,
) -> Fig6Result:
    """Compute HV and RoD per platform from the shared experiments.

    Platforms are submitted as one sharded batch (usually already memoised
    by a preceding :func:`repro.experiments.fig5.run` at the same profile).
    """
    experiments = run_platform_experiments(platforms, profile)
    rows = []
    for platform in platforms:
        experiment = experiments[platform]
        hv_ours, hv_theirs = experiment.hypervolumes()
        dom = experiment.dominance()
        rows.append(
            Fig6Row(
                platform=platform,
                hv_hadas=hv_ours,
                hv_baseline=hv_theirs,
                rod_hadas=dom.rod_a_over_b,
                rod_baseline=dom.rod_b_over_a,
            )
        )
    return Fig6Result(rows=rows)


def render(result: Fig6Result) -> str:
    headers = [
        "Platform", "HV HADAS", "HV baseline", "HV gain %", "paper HV gain %",
        "RoD HADAS %", "RoD baseline %", "paper RoD gain %",
    ]
    body = []
    for row in result.rows:
        body.append(
            [
                row.platform,
                row.hv_hadas,
                row.hv_baseline,
                row.hv_gain * 100,
                PAPER_HV_GAIN.get(row.platform, float("nan")) * 100,
                row.rod_hadas * 100,
                row.rod_baseline * 100,
                PAPER_ROD_GAIN.get(row.platform, float("nan")) * 100,
            ]
        )
    table = format_table(headers, body, title="Fig. 6 - search efficacy: HV and RoD")
    hv_bars = bars(
        {f"{r.platform} HADAS": r.hv_hadas for r in result.rows}
        | {f"{r.platform} base": r.hv_baseline for r in result.rows},
        title="hypervolume",
    )
    return table + "\n\n" + hv_bars
