"""Experiment budget profiles."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.search.hadas import HadasConfig


@dataclass(frozen=True)
class Profile:
    """Search budget profile for experiment drivers.

    ``fast`` runs every artifact in seconds (tests, CI, benches); ``paper``
    approaches the published 450-iteration OOE / 3500-iteration IOE budget.
    """

    name: str
    outer_population: int
    outer_generations: int
    inner_population: int
    inner_generations: int
    ioe_candidates: int
    oracle_samples: int
    seed: int = 7
    # Evaluation-engine knobs; orthogonal to the search budget (results are
    # bit-identical for any worker count, so they are not part of identity).
    workers: int = 1
    executor: str = "auto"
    cache_dir: str | None = None

    @staticmethod
    def fast(seed: int = 7, **engine) -> "Profile":
        return Profile(
            name="fast",
            outer_population=12,
            outer_generations=4,
            inner_population=14,
            inner_generations=5,
            ioe_candidates=3,
            oracle_samples=1024,
            seed=seed,
            **engine,
        )

    @staticmethod
    def paper(seed: int = 7, **engine) -> "Profile":
        return Profile(
            name="paper",
            outer_population=30,
            outer_generations=15,
            inner_population=50,
            inner_generations=70,
            ioe_candidates=5,
            oracle_samples=4096,
            seed=seed,
            **engine,
        )

    def with_engine(
        self,
        workers: int | None = None,
        executor: str | None = None,
        cache_dir: str | None = None,
    ) -> "Profile":
        """Copy of this profile with evaluation-engine knobs overridden."""
        updates: dict = {}
        if workers is not None:
            updates["workers"] = workers
        if executor is not None:
            updates["executor"] = executor
        if cache_dir is not None:
            updates["cache_dir"] = cache_dir
        return replace(self, **updates) if updates else self

    def hadas_config(self, platform: str, gamma: float = 1.0) -> HadasConfig:
        """Materialise a :class:`HadasConfig` for a platform."""
        return HadasConfig(
            platform=platform,
            seed=self.seed,
            gamma=gamma,
            outer_population=self.outer_population,
            outer_generations=self.outer_generations,
            inner_population=self.inner_population,
            inner_generations=self.inner_generations,
            ioe_candidates=self.ioe_candidates,
            oracle_samples=self.oracle_samples,
            workers=self.workers,
            executor=self.executor,
            cache_dir=self.cache_dir,
        )
