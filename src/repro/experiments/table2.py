"""Table II: the joint search spaces and their cardinalities.

All numbers are *derived from the live space objects*, not hard-coded:
backbone decision variables and their value sets, the exit-space bounds for
a reference backbone, and the DVFS grids of the four platforms.  The paper
quotes "more than 2.94e11" backbones; our Table-II-faithful space encodes
~4.4e11 (the bench asserts the bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.space import BackboneSpace
from repro.baselines.attentivenas import attentivenas_model
from repro.engine.cache import ResultCache
from repro.engine.service import EvaluationService
from repro.engine.tasks import spec_task, task_spec
from repro.exits.placement import MIN_EXIT_POSITION, ExitSpace
from repro.hardware.platform import PAPER_PLATFORM_ORDER, get_platform
from repro.utils.tables import format_table

#: The paper's lower bound on the backbone-space size.
PAPER_BACKBONE_CARDINALITY = 2.94e11


@dataclass
class Table2Result:
    """Derived search-space rows (plus optional exhaustive-grid artifacts)."""

    backbone_rows: list[list] = field(default_factory=list)
    exit_rows: list[list] = field(default_factory=list)
    dvfs_rows: list[list] = field(default_factory=list)
    backbone_cardinality: int = 0
    #: Per-platform exhaustive core × EMC sweep summaries (``dvfs_grid=True``).
    grid_rows: list[list] = field(default_factory=list)
    #: The underlying artifacts, keyed by platform (``dvfs_grid=True``).
    grids: dict = field(default_factory=dict)


def platform_dvfs_rows(platform_key: str) -> list[list]:
    """One platform's Table II DVFS rows (the ``table2-dvfs`` task body)."""
    platform = get_platform(platform_key)
    core = platform.core_freqs_ghz
    emc = platform.emc_freqs_ghz
    unit = "GPU" if platform.kind == "gpu" else "CPU"
    return [
        [
            f"{unit} frequency ({platform.name})",
            f"[{core[0]:.1f}GHz, {core[-1]:.1f}GHz]",
            len(core),
        ],
        [
            f"EMC frequency ({platform.name})",
            f"[{emc[0]:.1f}GHz, {emc[-1]:.1f}GHz]",
            len(emc),
        ],
    ]


def reference_placement(total_layers: int) -> "ExitPlacement":
    """Canonical probe placement: four exits at layer-range quartiles.

    Deterministic and backbone-conditioned — the DyNN every platform's
    exhaustive grid evaluates, so grid summaries are comparable across
    platforms.
    """
    from repro.exits.placement import ExitPlacement

    lo, hi = MIN_EXIT_POSITION, total_layers - 1
    positions = sorted({lo + round(q * (hi - lo) / 4) for q in range(1, 4)} | {lo})
    return ExitPlacement(total_layers, tuple(positions))


def run(
    space: BackboneSpace | None = None,
    workers: int = 1,
    executor: str = "auto",
    cache_dir: str | None = None,
    dvfs_grid: bool = False,
    grid_oracle_samples: int = 2048,
) -> Table2Result:
    """Derive every Table II row from the space definitions.

    The per-platform DVFS rows are derived as one codec-backed batch; with
    ``workers > 1`` they shard across the service like every other
    multi-platform sweep (identical rows either way).  ``cache_dir``
    persists each platform's rows under its spec fingerprint (the
    ``table2-dvfs`` kind has no richer domain key), so repeat derivations —
    including full-DVFS-grid sweeps — are cache reads.

    ``dvfs_grid=True`` additionally sweeps every platform's *entire*
    core × EMC grid for the canonical reference DyNN (a6 +
    :func:`reference_placement`) as ``population-eval`` specs — one stacked
    kernel call per setting — and records per-platform summaries in
    ``grid_rows`` plus the full :class:`~repro.experiments.dvfs_grid.
    DvfsGridArtifact` objects in ``grids``.
    """
    space = space or BackboneSpace()
    result = Table2Result(backbone_cardinality=space.cardinality())

    widths = space.distinct_widths()
    depths = space.depth_values()
    kernels = sorted({k for s in space.stages for k in s.kernels})
    expands = sorted({e for s in space.stages for e in s.expands})
    result.backbone_rows = [
        ["Number of blocks (nblock)", str(len(space.stages)), 1],
        ["Input resolution (res)", str(set(space.resolutions)), len(space.resolutions)],
        ["Block depth (l)", str(set(depths)), len(depths)],
        ["Block width (w)", f"[{min(widths)}, {max(widths)}]", len(widths)],
        ["Block kernel size (k)", str(set(kernels)), len(kernels)],
        ["Block expand ratio (er)", str(set(expands)), len(expands)],
    ]

    # Exit space conditioned on a reference backbone (a6: deepest baseline).
    reference = attentivenas_model("a6")
    exit_space = ExitSpace(reference.total_mbconv_layers)
    total = reference.total_mbconv_layers
    result.exit_rows = [
        [
            "Number of exits (nX)",
            f"[1, {exit_space.max_exits}]",
            exit_space.max_exits,
        ],
        [
            "Exit positions (posX)",
            f"[{MIN_EXIT_POSITION}, {total})",
            exit_space.cardinality(),
        ],
    ]

    cache = ResultCache(cache_dir) if cache_dir is not None else None
    with EvaluationService(executor=executor, workers=workers, cache=cache) as service:
        per_platform = service.evaluate_batch(
            [
                spec_task(task_spec("table2-dvfs", platform=key), cache=cache)
                for key in PAPER_PLATFORM_ORDER
            ]
        )
        for rows in per_platform:
            result.dvfs_rows.extend(rows)
        if dvfs_grid:
            from repro.experiments.dvfs_grid import sharded_grid

            backbone = reference
            placement = reference_placement(backbone.total_mbconv_layers)
            for key in PAPER_PLATFORM_ORDER:
                grid = sharded_grid(
                    key,
                    backbone,
                    [placement],
                    cache_dir=cache_dir,
                    service=service,
                    oracle_samples=grid_oracle_samples,
                )
                result.grids[key] = grid
                best = grid.best_energy_setting()
                default_mj = grid.dynamic_energy_j[0, -1, -1] * 1e3
                result.grid_rows.append(
                    [
                        get_platform(key).name,
                        grid.num_settings,
                        f"{grid.min_energy_j() * 1e3:.2f}",
                        f"{default_mj:.2f}",
                        str(best),
                    ]
                )
    return result


def render(result: Table2Result) -> str:
    headers = ["Decision variables", "Values", "Cardinality"]
    blocks = [
        format_table(headers, result.backbone_rows,
                     title="Table II - Backbone Search Space (B)"),
        format_table(headers, result.exit_rows,
                     title="Exits Search Space (X), conditioned on a6"),
        format_table(headers, result.dvfs_rows, title="DVFS Search Space (F)"),
    ]
    if result.grid_rows:
        blocks.append(
            format_table(
                ["Platform", "|grid|", "min Ergy(mJ)", "default Ergy(mJ)", "best setting"],
                result.grid_rows,
                title="Exhaustive DVFS grids (reference DyNN on a6)",
            )
        )
    blocks += [
        (
            f"backbone cardinality = {result.backbone_cardinality:.3e} "
            f"(paper: > {PAPER_BACKBONE_CARDINALITY:.2e})"
        ),
    ]
    return "\n\n".join(blocks)
