"""Table III: DyNN comparison on the TX2 Pascal GPU.

Paper rows (CIFAR-100):

=================  =========  =======  ============  ========  ============
model              base acc   EEx acc  base Ergy mJ  EEx Ergy  EEx+DVFS Ergy
=================  =========  =======  ============  ========  ============
AttentiveNAS a0    86.33      89.95    173.78        119.83    116.14
AttentiveNAS a6    88.23      93.02    335.48        256.80    218.34
HADAS b1           87.34      93.16    212.44        119.84    93.78
HADAS b2           88.06      91.83    341.30        187.92    126.06
HADAS b3           86.54      88.31    205.48        130.20    86.84
HADAS b4           88.40      89.24    358.01        232.77    201.01
=================  =========  =======  ============  ========  ============

Headline: b1 is 57 % / 19 % more energy-efficient (EEx+DVFS) than a6 / a0
while matching a6's accuracy.  We regenerate the same six rows: the two
baselines with their optimized-baseline exits, and HADAS's four best
distinct-backbone DyNNs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.config import BackboneConfig
from repro.exits.placement import ExitPlacement
from repro.experiments.config import Profile
from repro.experiments.runner import PlatformExperiment, run_platform_experiment
from repro.hardware.dvfs import DvfsSetting
from repro.utils.tables import format_table

#: Published values for side-by-side rendering.
PAPER_ROWS = {
    "AttentiveNAS-a0": (86.33, 89.95, 173.78, 119.83, 116.14),
    "AttentiveNAS-a6": (88.23, 93.02, 335.48, 256.80, 218.34),
    "HADAS-b1": (87.34, 93.16, 212.44, 119.84, 93.78),
    "HADAS-b2": (88.06, 91.83, 341.30, 187.92, 126.06),
    "HADAS-b3": (86.54, 88.31, 205.48, 130.20, 86.84),
    "HADAS-b4": (88.40, 89.24, 358.01, 232.77, 201.01),
}


@dataclass(frozen=True)
class DynnRow:
    """One comparison row (accuracy in %, energy in mJ)."""

    name: str
    baseline_acc: float
    eex_acc: float
    baseline_energy_mj: float
    eex_energy_mj: float
    eex_dvfs_energy_mj: float

    @property
    def dvfs_extra_gain(self) -> float:
        """Energy gain from DVFS on top of early exiting."""
        return 1.0 - self.eex_dvfs_energy_mj / self.eex_energy_mj


@dataclass
class Table3Result:
    """All regenerated rows plus the experiment handle.

    ``grids`` holds each model's exhaustive core × EMC sweep (the artifact
    the EEx+DVFS column is read from), keyed by row name.
    """

    rows: list[DynnRow]
    experiment: PlatformExperiment
    grids: dict = field(default_factory=dict)

    def row(self, name: str) -> DynnRow:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)

    def headline_gains(self) -> tuple[float, float]:
        """(vs a6, vs a0) EEx+DVFS energy gains of the best HADAS model."""
        b1 = self.row("HADAS-b1")
        a6 = self.row("AttentiveNAS-a6")
        a0 = self.row("AttentiveNAS-a0")
        return (
            1.0 - b1.eex_dvfs_energy_mj / a6.eex_dvfs_energy_mj,
            1.0 - b1.eex_dvfs_energy_mj / a0.eex_dvfs_energy_mj,
        )


def _model_row(
    experiment: PlatformExperiment,
    name: str,
    config: BackboneConfig,
    placement: ExitPlacement,
    searched_setting: DvfsSetting,
) -> tuple[DynnRow, "DvfsGridArtifact"]:
    """Evaluate one (backbone, exits) pair at the three paper stages.

    The EEx+DVFS column re-optimises the operating point for the chosen
    placement over the *exhaustive* core × EMC grid, computed as a
    first-class :class:`~repro.experiments.dvfs_grid.DvfsGridArtifact`
    (one stacked population-kernel call per setting).  The searched and
    default settings are still compared explicitly — a deployment never
    keeps a setting worse than default — but both lie on the grid, so the
    minimum is bit-identical to the old per-candidate loop.
    """
    from repro.experiments.dvfs_grid import compute_grid

    search = experiment.search
    static = search.static_evaluator.evaluate(config)
    evaluator = search.make_inner_engine(config).evaluator
    default = search.static_evaluator.default_setting
    eex = evaluator.evaluate(placement, default)
    grid = compute_grid(
        evaluator, search.static_evaluator.dvfs_space, [placement]
    )
    eex_dvfs_energy = min(
        evaluator.evaluate(placement, searched_setting).dynamic_energy_j,
        eex.dynamic_energy_j,
        grid.min_energy_j(),
    )
    row = DynnRow(
        name=name,
        baseline_acc=static.accuracy,
        eex_acc=eex.dynamic_accuracy * 100.0,
        baseline_energy_mj=static.energy_j * 1e3,
        eex_energy_mj=eex.dynamic_energy_j * 1e3,
        eex_dvfs_energy_mj=eex_dvfs_energy * 1e3,
    )
    return row, grid


def run(profile: Profile | None = None, platform: str = "tx2-gpu") -> Table3Result:
    """Regenerate Table III."""
    experiment = run_platform_experiment(platform, profile)
    rows: list[DynnRow] = []
    grids: dict = {}

    from repro.baselines.attentivenas import attentivenas_model

    for name in ("a0", "a6"):
        inner = experiment.baseline_inner[name]
        best = _utopia_pick(
            [member.payload["evaluation"] for member in inner.pareto]
        )
        row, grid = _model_row(
            experiment,
            f"AttentiveNAS-{name}",
            attentivenas_model(name),
            best.placement,
            best.setting,
        )
        rows.append(row)
        grids[row.name] = grid

    # HADAS b1: the paper's showcase — accuracy on par with the most
    # accurate baseline (a6) at the lowest dynamic energy.  b2..b4: the
    # utopia-ranked alternatives on other backbones.
    a6_row = rows[1]
    members = experiment.hadas.dynn_pareto()
    eligible = [
        m
        for m in members
        if m.payload["evaluation"].dynamic_accuracy * 100.0 >= a6_row.eex_acc
    ]
    pool = eligible or members
    b1 = min(pool, key=lambda m: m.payload["evaluation"].dynamic_energy_j)
    picked = [b1]
    seen = {b1.payload["config"].key}
    for member in experiment.hadas.top_models(8):
        key = member.payload["config"].key
        if key in seen:
            continue
        seen.add(key)
        picked.append(member)
        if len(picked) == 4:
            break
    for rank, member in enumerate(picked, start=1):
        evaluation = member.payload["evaluation"]
        row, grid = _model_row(
            experiment,
            f"HADAS-b{rank}",
            member.payload["config"],
            evaluation.placement,
            evaluation.setting,
        )
        rows.append(row)
        grids[row.name] = grid
    return Table3Result(rows=rows, experiment=experiment, grids=grids)


def _utopia_pick(evaluations):
    """Evaluation closest to the utopia point of (dyn acc, abs dyn energy)."""
    import numpy as np

    accs = np.asarray([e.dynamic_accuracy for e in evaluations])
    energies = np.asarray([e.dynamic_energy_j for e in evaluations])
    acc_span = max(accs.max() - accs.min(), 1e-9)
    erg_span = max(energies.max() - energies.min(), 1e-9)
    distance = ((accs.max() - accs) / acc_span) ** 2 + (
        (energies - energies.min()) / erg_span
    ) ** 2
    return evaluations[int(np.argmin(distance))]


def render(result: Table3Result) -> str:
    """Paper-style table with published values alongside."""
    headers = [
        "Model", "Base Acc(%)", "EEx Acc(%)", "Base Ergy(mJ)",
        "EEx Ergy(mJ)", "EExDVFS Ergy(mJ)", "paper EExDVFS",
    ]
    body = []
    for row in result.rows:
        paper = PAPER_ROWS.get(row.name)
        body.append(
            [
                row.name,
                row.baseline_acc,
                row.eex_acc,
                row.baseline_energy_mj,
                row.eex_energy_mj,
                row.eex_dvfs_energy_mj,
                paper[4] if paper else "-",
            ]
        )
    table = format_table(headers, body, title="Table III - DyNNs comparison (TX2 Pascal GPU)")
    try:
        gain_a6, gain_a0 = result.headline_gains()
        table += (
            f"\nHeadline: best HADAS model is {gain_a6 * 100:.0f}% / {gain_a0 * 100:.0f}% "
            "more energy-efficient than a6 / a0 (paper: 57% / 19%)"
        )
    except KeyError:
        pass
    return table
