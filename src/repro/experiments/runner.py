"""Shared experiment machinery: one full platform run, memoised and sharded.

Several artifacts (Figs. 1, 5, 6, Table III) consume the same underlying
computation — a HADAS search on a platform plus the optimized baselines with
a matched IOE budget.  :func:`run_platform_experiment` performs it once and
memoises per (platform, profile, seed, gamma); :func:`run_platform_experiments`
submits *all* requested platforms as one codec-backed batch through a shared
:class:`~repro.engine.service.EvaluationService`, so a multi-worker profile
runs the paper's four-platform sweep concurrently (one process shard per
platform) instead of serially.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.baselines.attentivenas import ATTENTIVENAS_MODELS, attentivenas_models
from repro.engine.cache import ResultCache
from repro.engine.service import EvaluationService
from repro.engine.tasks import spec_task, task_spec
from repro.eval.static import StaticEvaluation
from repro.experiments.config import Profile
from repro.metrics.dominance_ratio import DominanceReport, dominance_report
from repro.metrics.hypervolume import hypervolume
from repro.metrics.pareto import pareto_front
from repro.search.hadas import HadasResult, HadasSearch
from repro.search.ioe import InnerResult


@dataclass
class PlatformExperiment:
    """One platform's full co-optimisation study."""

    platform: str
    profile: Profile
    hadas: HadasResult
    baseline_static: dict[str, StaticEvaluation]
    baseline_inner: dict[str, InnerResult] = field(default_factory=dict)
    search: HadasSearch | None = field(default=None, repr=False)

    # ------------------------------------------------------------ fig5 data
    def hadas_dynamic_points(self, pareto_only: bool = True) -> np.ndarray:
        """(energy gain, mean N_i) of HADAS's pooled IOE fronts."""
        points = self.hadas.outer.dynamic_points(source="inner")
        return pareto_front(points) if pareto_only and len(points) else points

    def baseline_dynamic_points(self, pareto_only: bool = True) -> np.ndarray:
        """(energy gain, mean N_i) of the optimized baselines."""
        chunks = [
            inner.points_2d(explored=False if pareto_only else True)
            for inner in self.baseline_inner.values()
        ]
        points = np.concatenate([c for c in chunks if len(c)], axis=0)
        return pareto_front(points) if pareto_only else points

    # --------------------------------------------------------------- fig6
    def dominance(self) -> DominanceReport:
        """RoD of HADAS's dynamic front vs the optimized baselines'."""
        return dominance_report(
            self.hadas_dynamic_points(), self.baseline_dynamic_points()
        )

    def hypervolumes(self) -> tuple[float, float]:
        """(HADAS, baselines) hypervolume over (energy gain, mean N_i).

        Both sets are normalised into the unit box spanned by their joint
        bounds (reference at the origin), so a single outlier cannot distort
        the comparison and volumes are comparable across platforms.
        """
        ours = self.hadas_dynamic_points()
        theirs = self.baseline_dynamic_points()
        both = np.concatenate([ours, theirs], axis=0)
        lo = both.min(axis=0)
        span = np.maximum(both.max(axis=0) - lo, 1e-9)
        reference = np.zeros(2) - 1e-9
        return (
            hypervolume((ours - lo) / span, reference),
            hypervolume((theirs - lo) / span, reference),
        )


_MEMO: dict[tuple, PlatformExperiment] = {}


def _memo_key(platform: str, profile: Profile, gamma: float, baselines: tuple) -> tuple:
    # Engine knobs (workers/executor/cache_dir) never change results, so
    # they are not part of the memo identity.
    return (platform, profile.name, profile.seed, gamma, tuple(baselines))


def compute_platform_experiment(
    platform: str,
    profile: Profile,
    gamma: float = 1.0,
    baselines: tuple[str, ...] = ATTENTIVENAS_MODELS,
) -> PlatformExperiment:
    """One platform's full study, uncached: the ``platform-experiment`` task.

    Pure function of ``(platform, profile, gamma, baselines)`` — the body
    both the memoising wrapper and the process shards execute.  Baseline IOE
    runs are independent of each other: one batch through the search's
    service runs them concurrently (and cached) like any other.
    """
    search = HadasSearch(profile.hadas_config(platform, gamma=gamma))
    try:
        hadas = search.run()

        models = {name: attentivenas_models()[name] for name in baselines}
        baseline_static = {
            name: search.static_evaluator.evaluate(config)
            for name, config in models.items()
        }
        baseline_inner = dict(
            zip(
                models.keys(),
                search.service.evaluate_batch(
                    [search.inner_task(config) for config in models.values()]
                ),
            )
        )
    except BaseException:
        # Error/interrupt path: cancel queued work so no pool workers leak.
        search.close(cancel=True)
        raise
    # Release executor pools now that all batches ran; the service lazily
    # re-creates them if the memoised search is ever driven again.
    search.close()
    return PlatformExperiment(
        platform=platform,
        profile=profile,
        hadas=hadas,
        baseline_static=baseline_static,
        baseline_inner=baseline_inner,
        search=search,
    )


def run_platform_experiment(
    platform: str,
    profile: Profile | None = None,
    gamma: float = 1.0,
    baselines: tuple[str, ...] = ATTENTIVENAS_MODELS,
    workers: int | None = None,
    cache_dir: str | None = None,
) -> PlatformExperiment:
    """Run (or fetch memoised) HADAS + optimized baselines on a platform.

    ``workers``/``cache_dir`` override the profile's evaluation-engine knobs
    (parallel inner runs / persistent result cache); neither changes any
    result, so they are not part of the memo identity.  Baseline inner runs
    route through :meth:`HadasSearch.inner_task`, sharing the persistent
    cache with the search itself.
    """
    profile = (profile or Profile.fast()).with_engine(
        workers=workers, cache_dir=cache_dir
    )
    key = _memo_key(platform, profile, gamma, baselines)
    if key in _MEMO:
        return _MEMO[key]
    experiment = compute_platform_experiment(platform, profile, gamma, baselines)
    _MEMO[key] = experiment
    return experiment


def run_platform_experiments(
    platforms,
    profile: Profile | None = None,
    gamma: float = 1.0,
    baselines: tuple[str, ...] = ATTENTIVENAS_MODELS,
    workers: int | None = None,
    executor: str | None = None,
    cache_dir: str | None = None,
) -> dict[str, PlatformExperiment]:
    """Run a multi-platform sweep as one sharded batch (fig5/fig6/table3).

    Memoised platforms are returned immediately; the misses are submitted
    together as ``platform-experiment`` task specs through a single
    context-managed :class:`EvaluationService`, so a multi-worker profile
    overlaps whole platforms (the ``auto`` executor runs codec-backed
    batches on its process pool).  Each shard forces its in-worker engine
    to ``serial`` — pools are never nested — while sharing ``cache_dir``,
    so shards warm each other's platform-independent entries (oracle
    columns).  Results are bit-identical to the serial loop; the service is
    torn down on every exit path, including ``KeyboardInterrupt``.
    """
    profile = (profile or Profile.fast()).with_engine(
        workers=workers, executor=executor, cache_dir=cache_dir
    )
    ordered = list(dict.fromkeys(platforms))
    missing = [
        platform
        for platform in ordered
        if _memo_key(platform, profile, gamma, baselines) not in _MEMO
    ]
    if len(missing) > 1 and profile.workers > 1:
        # One process shard per platform: the shard profile keeps the search
        # budget and the shared persistent cache but runs serially inside
        # its worker.  With a cache_dir, each shard's whole result is also
        # persisted under its spec fingerprint (``platform-experiment`` has
        # no richer domain key), so a repeated sweep skips entire shards.
        shard_profile = replace(profile, workers=1, executor="serial")
        cache = ResultCache(profile.cache_dir) if profile.cache_dir else None
        with EvaluationService(
            executor=profile.executor, workers=profile.workers, cache=cache
        ) as service:
            results = service.evaluate_batch(
                [
                    spec_task(
                        task_spec(
                            "platform-experiment",
                            platform=platform,
                            profile=shard_profile,
                            gamma=gamma,
                            baselines=tuple(baselines),
                        ),
                        cache=cache,
                    )
                    for platform in missing
                ]
            )
        for platform, experiment in zip(missing, results):
            _MEMO[_memo_key(platform, profile, gamma, baselines)] = experiment
    else:
        for platform in missing:
            run_platform_experiment(platform, profile, gamma, baselines)
    return {
        platform: _MEMO[_memo_key(platform, profile, gamma, baselines)]
        for platform in ordered
    }


def clear_memo() -> None:
    """Drop memoised platform runs (tests use this for isolation)."""
    _MEMO.clear()
