"""Shared experiment machinery: one full platform run, memoised.

Several artifacts (Figs. 1, 5, 6, Table III) consume the same underlying
computation — a HADAS search on a platform plus the optimized baselines with
a matched IOE budget.  :func:`run_platform_experiment` performs it once and
memoises per (platform, profile, seed, gamma).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.attentivenas import ATTENTIVENAS_MODELS, attentivenas_models
from repro.engine.service import EvalTask
from repro.eval.static import StaticEvaluation
from repro.experiments.config import Profile
from repro.metrics.dominance_ratio import DominanceReport, dominance_report
from repro.metrics.hypervolume import hypervolume
from repro.metrics.pareto import pareto_front
from repro.search.hadas import HadasResult, HadasSearch
from repro.search.ioe import InnerResult


@dataclass
class PlatformExperiment:
    """One platform's full co-optimisation study."""

    platform: str
    profile: Profile
    hadas: HadasResult
    baseline_static: dict[str, StaticEvaluation]
    baseline_inner: dict[str, InnerResult] = field(default_factory=dict)
    search: HadasSearch | None = field(default=None, repr=False)

    # ------------------------------------------------------------ fig5 data
    def hadas_dynamic_points(self, pareto_only: bool = True) -> np.ndarray:
        """(energy gain, mean N_i) of HADAS's pooled IOE fronts."""
        points = self.hadas.outer.dynamic_points(source="inner")
        return pareto_front(points) if pareto_only and len(points) else points

    def baseline_dynamic_points(self, pareto_only: bool = True) -> np.ndarray:
        """(energy gain, mean N_i) of the optimized baselines."""
        chunks = [
            inner.points_2d(explored=False if pareto_only else True)
            for inner in self.baseline_inner.values()
        ]
        points = np.concatenate([c for c in chunks if len(c)], axis=0)
        return pareto_front(points) if pareto_only else points

    # --------------------------------------------------------------- fig6
    def dominance(self) -> DominanceReport:
        """RoD of HADAS's dynamic front vs the optimized baselines'."""
        return dominance_report(
            self.hadas_dynamic_points(), self.baseline_dynamic_points()
        )

    def hypervolumes(self) -> tuple[float, float]:
        """(HADAS, baselines) hypervolume over (energy gain, mean N_i).

        Both sets are normalised into the unit box spanned by their joint
        bounds (reference at the origin), so a single outlier cannot distort
        the comparison and volumes are comparable across platforms.
        """
        ours = self.hadas_dynamic_points()
        theirs = self.baseline_dynamic_points()
        both = np.concatenate([ours, theirs], axis=0)
        lo = both.min(axis=0)
        span = np.maximum(both.max(axis=0) - lo, 1e-9)
        reference = np.zeros(2) - 1e-9
        return (
            hypervolume((ours - lo) / span, reference),
            hypervolume((theirs - lo) / span, reference),
        )


_MEMO: dict[tuple, PlatformExperiment] = {}


def run_platform_experiment(
    platform: str,
    profile: Profile | None = None,
    gamma: float = 1.0,
    baselines: tuple[str, ...] = ATTENTIVENAS_MODELS,
    workers: int | None = None,
    cache_dir: str | None = None,
) -> PlatformExperiment:
    """Run (or fetch memoised) HADAS + optimized baselines on a platform.

    ``workers``/``cache_dir`` override the profile's evaluation-engine knobs
    (parallel inner runs / persistent result cache); neither changes any
    result, so they are not part of the memo identity.  Baseline inner runs
    route through :meth:`HadasSearch.run_inner`, sharing the persistent
    cache with the search itself.
    """
    profile = (profile or Profile.fast()).with_engine(
        workers=workers, cache_dir=cache_dir
    )
    key = (platform, profile.name, profile.seed, gamma, baselines)
    if key in _MEMO:
        return _MEMO[key]

    search = HadasSearch(profile.hadas_config(platform, gamma=gamma))
    hadas = search.run()

    models = {name: attentivenas_models()[name] for name in baselines}
    baseline_static = {
        name: search.static_evaluator.evaluate(config) for name, config in models.items()
    }
    # Baseline IOE runs are independent of each other: one batch through the
    # search's service runs them concurrently (and cached) like any other.
    baseline_inner = dict(
        zip(
            models.keys(),
            search.service.evaluate_batch(
                [EvalTask(search.run_inner, (config,)) for config in models.values()]
            ),
        )
    )
    # Release executor pools now that all batches ran; the service lazily
    # re-creates them if the memoised search is ever driven again.
    search.close()
    experiment = PlatformExperiment(
        platform=platform,
        profile=profile,
        hadas=hadas,
        baseline_static=baseline_static,
        baseline_inner=baseline_inner,
        search=search,
    )
    _MEMO[key] = experiment
    return experiment


def clear_memo() -> None:
    """Drop memoised platform runs (tests use this for isolation)."""
    _MEMO.clear()
