"""The EvaluationService: batched, cached, order-preserving evaluation.

The search stack hands the service *batches* of tasks (a whole NSGA-II
population, a generation's worth of inner-engine runs) instead of evaluating
point-by-point.  The service resolves each task against the persistent
:class:`~repro.engine.cache.ResultCache` (when the task carries a key),
de-duplicates identical keys within the batch, runs the remaining misses on
the configured executor and returns results in submission order.

Tasks must be pure: same ``(fn, args)`` ⇒ same result.  Every evaluator in
this repo derives its noise streams from content-keyed ``child_rng`` seeds,
so this holds by construction and parallel schedules cannot change results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.engine.cache import CacheKey, ResultCache
from repro.engine.executors import make_executor

_MISS = object()


@dataclass(frozen=True)
class EvalTask:
    """One unit of evaluation work.

    Attributes
    ----------
    fn, args:
        The pure callable and its positional arguments.
    key:
        Optional content address; when set (and the service has a cache) the
        result is looked up before executing and persisted after.
    cls:
        Optional dataclass type for rebuilding JSON-stored cache entries.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    key: CacheKey | None = None
    cls: type | None = None


@dataclass
class ServiceStats:
    """What the service did on behalf of the search."""

    batches: int = 0
    tasks: int = 0
    executed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0


class EvaluationService:
    """Runs evaluation batches on a pluggable executor with shared caching.

    Parameters
    ----------
    executor:
        ``"serial"``, ``"thread"``, ``"process"`` or ``"auto"`` (serial for
        one worker, threads otherwise).
    workers:
        Degree of parallelism for pool executors.
    cache:
        Optional persistent :class:`ResultCache` consulted for keyed tasks.
    """

    def __init__(
        self,
        executor: str = "serial",
        workers: int = 1,
        cache: ResultCache | None = None,
    ):
        self.cache = cache
        self.executor = make_executor(executor, workers)
        self.stats = ServiceStats()

    # ------------------------------------------------------------- lifecycle
    def __enter__(self) -> "EvaluationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Error-path teardown cancels queued work so an interrupted sweep
        # (KeyboardInterrupt mid-batch) does not block on — or leak — workers.
        self.close(cancel=exc_type is not None)

    def close(self, cancel: bool = False) -> None:
        """Tear down executor pools (idempotent); ``cancel`` drops queued work."""
        self.executor.close(cancel=cancel)

    @property
    def workers(self) -> int:
        return self.executor.workers

    @property
    def prefers_specs(self) -> bool:
        """True when submitters should lower tasks to codec specs.

        Spec payloads only pay off where tasks cross a process boundary:
        the process executor always, and the multi-worker ``auto`` executor
        (which routes codec-backed batches to its process pool).  Serial and
        thread executors share the submitter's memory, where closures over
        live evaluators are both cheaper and warmer (shared in-memory
        caches), so spec lowering is skipped.
        """
        kind = self.executor.kind
        return kind == "process" or (kind == "auto" and self.workers > 1)

    # ------------------------------------------------------------ evaluation
    def evaluate(self, task: EvalTask) -> Any:
        """Evaluate a single task (batch of one)."""
        return self.evaluate_batch([task])[0]

    def evaluate_batch(self, tasks: Sequence[EvalTask]) -> list[Any]:
        """Evaluate ``tasks``, returning results in submission order.

        Keyed tasks are resolved against the cache first; within the batch,
        tasks sharing a key are computed once.  Cache misses run on the
        executor in submission order, so results are independent of worker
        count and scheduling.
        """
        self.stats.batches += 1
        self.stats.tasks += len(tasks)
        results: list[Any] = [_MISS] * len(tasks)

        pending: list[int] = []  # indices that must actually execute
        owner_of_digest: dict[str, int] = {}  # first pending index per key
        duplicates: list[tuple[int, int]] = []  # (index, owner index)
        for index, task in enumerate(tasks):
            if task.key is not None:
                if task.key.digest in owner_of_digest:
                    duplicates.append((index, owner_of_digest[task.key.digest]))
                    self.stats.deduplicated += 1
                    continue
                if self.cache is not None:
                    cached = self.cache.get(task.key, cls=task.cls, default=_MISS)
                    if cached is not _MISS:
                        results[index] = cached
                        self.stats.cache_hits += 1
                        continue
                owner_of_digest[task.key.digest] = index
            pending.append(index)

        if pending:
            outputs = self.executor.run(
                [(tasks[i].fn, tasks[i].args) for i in pending]
            )
            self.stats.executed += len(pending)
            for index, output in zip(pending, outputs):
                results[index] = output
                task = tasks[index]
                if task.key is not None and self.cache is not None:
                    self.cache.put(task.key, output)
        for index, owner in duplicates:
            results[index] = results[owner]
        return results

    def map(self, fn: Callable[..., Any], args_list: Sequence[tuple]) -> list[Any]:
        """Convenience: evaluate ``fn`` over many argument tuples, unkeyed."""
        return self.evaluate_batch([EvalTask(fn, args) for args in args_list])
