"""The EvaluationService: batched, cached, order-preserving evaluation.

The search stack hands the service *batches* of tasks (a whole NSGA-II
population, a generation's worth of inner-engine runs) instead of evaluating
point-by-point.  The service resolves each task against the persistent
:class:`~repro.engine.cache.ResultCache` (when the task carries a key),
de-duplicates identical keys within the batch, runs the remaining misses on
the configured executor and returns results in submission order.

Tasks must be pure: same ``(fn, args)`` ⇒ same result.  Every evaluator in
this repo derives its noise streams from content-keyed ``child_rng`` seeds,
so this holds by construction and parallel schedules cannot change results.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Callable, Sequence

from repro.engine.cache import CacheKey, ResultCache
from repro.engine.executors import make_executor
from repro.obs import trace
from repro.obs.collect import TracedCall, absorb

_MISS = object()


@dataclass(frozen=True)
class EvalTask:
    """One unit of evaluation work.

    Attributes
    ----------
    fn, args:
        The pure callable and its positional arguments.
    key:
        Optional content address; when set (and the service has a cache) the
        result is looked up before executing and persisted after.
    cls:
        Optional dataclass type for rebuilding JSON-stored cache entries.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    key: CacheKey | None = None
    cls: type | None = None


@dataclass
class ServiceStats:
    """What the service did on behalf of the search.

    ``executed`` counts tasks handed to the executor (the historical field);
    the submitted/completed/failed/cancelled quartet gives the full task
    ledger: ``submitted == completed + failed + cancelled`` once a batch
    settles.  Failures are counted per-batch — executors raise on the first
    failing task, so the whole dispatched batch is charged to ``failed`` (or
    ``cancelled`` for interrupt/exit teardowns) and the error propagates.
    """

    batches: int = 0
    tasks: int = 0
    executed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0

    def as_dict(self) -> dict[str, int]:
        return asdict(self)


class EvaluationService:
    """Runs evaluation batches on a pluggable executor with shared caching.

    Parameters
    ----------
    executor:
        ``"serial"``, ``"thread"``, ``"process"`` or ``"auto"`` (serial for
        one worker, threads otherwise).
    workers:
        Degree of parallelism for pool executors.
    cache:
        Optional persistent :class:`ResultCache` consulted for keyed tasks.
    """

    def __init__(
        self,
        executor: str = "serial",
        workers: int = 1,
        cache: ResultCache | None = None,
    ):
        self.cache = cache
        self.executor = make_executor(executor, workers)
        self.stats = ServiceStats()

    # ------------------------------------------------------------- lifecycle
    def __enter__(self) -> "EvaluationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Error-path teardown cancels queued work so an interrupted sweep
        # (KeyboardInterrupt mid-batch) does not block on — or leak — workers.
        self.close(cancel=exc_type is not None)

    def close(self, cancel: bool = False) -> None:
        """Tear down executor pools (idempotent); ``cancel`` drops queued work.

        Also flushes the cache's session-stats sidecar so ``repro cache
        stats`` reports this run's hit/miss traffic (including merged
        worker-process deltas).
        """
        self.executor.close(cancel=cancel)
        if self.cache is not None:
            try:
                self.cache.flush_session_stats()
            except OSError:
                pass  # stats persistence must never mask the real teardown path

    @property
    def workers(self) -> int:
        return self.executor.workers

    @property
    def prefers_specs(self) -> bool:
        """True when submitters should lower tasks to codec specs.

        Spec payloads only pay off where tasks cross a process boundary:
        the process executor always, and the multi-worker ``auto`` executor
        (which routes codec-backed batches to its process pool).  Serial and
        thread executors share the submitter's memory, where closures over
        live evaluators are both cheaper and warmer (shared in-memory
        caches), so spec lowering is skipped.
        """
        kind = self.executor.kind
        return kind == "process" or (kind == "auto" and self.workers > 1)

    # ------------------------------------------------------------ evaluation
    def evaluate(self, task: EvalTask) -> Any:
        """Evaluate a single task (batch of one)."""
        return self.evaluate_batch([task])[0]

    def evaluate_batch(self, tasks: Sequence[EvalTask]) -> list[Any]:
        """Evaluate ``tasks``, returning results in submission order.

        Keyed tasks are resolved against the cache first; within the batch,
        tasks sharing a key are computed once.  Cache misses run on the
        executor in submission order, so results are independent of worker
        count and scheduling.
        """
        self.stats.batches += 1
        self.stats.tasks += len(tasks)
        results: list[Any] = [_MISS] * len(tasks)

        pending: list[int] = []  # indices that must actually execute
        owner_of_digest: dict[str, int] = {}  # first pending index per key
        duplicates: list[tuple[int, int]] = []  # (index, owner index)
        for index, task in enumerate(tasks):
            if task.key is not None:
                if task.key.digest in owner_of_digest:
                    duplicates.append((index, owner_of_digest[task.key.digest]))
                    self.stats.deduplicated += 1
                    continue
                if self.cache is not None:
                    cached = self.cache.get(task.key, cls=task.cls, default=_MISS)
                    if cached is not _MISS:
                        results[index] = cached
                        self.stats.cache_hits += 1
                        continue
                owner_of_digest[task.key.digest] = index
            pending.append(index)

        if pending:
            outputs = self._execute([(tasks[i].fn, tasks[i].args) for i in pending])
            self.stats.executed += len(pending)
            for index, output in zip(pending, outputs):
                results[index] = output
                task = tasks[index]
                if task.key is not None and self.cache is not None:
                    self.cache.put(task.key, output)
        for index, owner in duplicates:
            results[index] = results[owner]
        return results

    def _execute(self, calls: list[tuple[Callable[..., Any], tuple]]) -> list[Any]:
        """Dispatch cache misses to the executor, collecting observability.

        Pooled calls are wrapped in :class:`~repro.obs.collect.TracedCall`
        when tracing is on (to capture worker-side spans/counters and
        queue-wait) or when the executor may cross a process boundary while
        a cache is attached (to ship worker cache-stat deltas home).  The
        wrapper preserves ``is_task_codec``, so ``auto`` routing and results
        are unchanged — envelopes are unwrapped before anything downstream
        (cache puts, callers) sees them.
        """
        recording = trace.active() is not None
        kind = self.executor.kind
        wrap = kind != "serial" and (
            recording or (self.cache is not None and kind in ("process", "auto"))
        )
        if wrap:
            calls = [(TracedCall(fn, recording), args) for fn, args in calls]
        self.stats.submitted += len(calls)
        trace.count("engine.tasks_submitted", len(calls))
        trace.observe("engine.batch_pending", len(calls))
        try:
            with trace.span("engine.execute", pending=len(calls), executor=kind):
                outputs = self.executor.run(calls)
        except BaseException as error:
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                self.stats.cancelled += len(calls)
                trace.count("engine.tasks_cancelled", len(calls))
            else:
                self.stats.failed += len(calls)
                trace.count("engine.tasks_failed", len(calls))
            raise
        self.stats.completed += len(calls)
        trace.count("engine.tasks_completed", len(calls))
        if wrap:
            outputs = [absorb(output, self.cache) for output in outputs]
        return outputs

    def map(self, fn: Callable[..., Any], args_list: Sequence[tuple]) -> list[Any]:
        """Convenience: evaluate ``fn`` over many argument tuples, unkeyed."""
        return self.evaluate_batch([EvalTask(fn, args) for args in args_list])
