"""Slim, declarative task specs: the process-pool-friendly task codec.

The first-generation process executor shipped *closures* to workers —
``EvalTask(search.run_inner, (config,))`` pickles the bound method and with
it the entire evaluator graph (space, surrogate, static evaluator, service,
caches) per task.  That made ``executor="process"`` pay pickling costs
proportional to the object graph instead of the work, and excluded any task
whose graph held unpicklable state.

A :class:`TaskSpec` replaces the closure with *data*: a small frozen
dataclass naming a registered task ``kind`` plus the minimal parameters the
evaluation depends on (backbone, platform key, seed, gamma, budget — the
same fields the persistent cache addresses by).  Workers reconstruct the
evaluator stack from the spec via a registry of pure ``build → evaluate``
functions, memoising the heavy context objects per
``(platform, num_classes, seed, cache_dir)`` with :func:`functools.lru_cache`
so a worker pays the build once per context, not per task.

Determinism contract: a registered task function must be a *pure* function
of its spec — ``run_spec(spec)`` in a worker process is bit-identical to
running it inline, because every evaluator in this repo derives its noise
streams from content-keyed ``child_rng`` seeds.  The round-trip is asserted
in ``tests/test_tasks.py``.

Registered kinds (all builders import their domains lazily, so this module
stays import-light and cycle-free):

======================  =====================================================
kind                    evaluates
======================  =====================================================
``static-backbone``     S(b) of one genome — OOE/NSGA-II population members
``inner-run``           one backbone's full IOE (oracle + (X, F) NSGA-II)
``platform-experiment`` one platform's HADAS + baselines study (fig5/fig6)
``serving-cell``        one serving-grid cell (pattern × scenario × policy)
``fleet-cell``          one fleet-grid cell (fleet × pattern × router)
``table2-dvfs``         one platform's Table II DVFS-space rows
``population-eval``     one (population-chunk, DVFS setting) stacked batch of
                        dynamic evaluations (slim per-placement rows)
======================  =====================================================
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable

#: Bump when spec semantics change (what a kind's params mean); folded into
#: every spec fingerprint, so content addresses derived from specs roll over.
TASK_CODEC_VERSION = "1"

_REGISTRY: dict[str, Callable[..., Any]] = {}


@dataclass(frozen=True)
class TaskSpec:
    """One declarative unit of evaluation work.

    ``params`` holds only small picklable values — plain builtins and slim
    frozen dataclasses (a :class:`~repro.arch.config.BackboneConfig`, a
    :class:`~repro.serving.harness.ServingSpec`) — never live evaluators,
    services or pools.  Specs are safe to ship across process boundaries and
    cheap to hash for content addressing.
    """

    kind: str
    params: dict[str, Any] = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Stable content digest of this spec (kind + codec version + params).

        Usable as a cache-key field when a task has no richer domain key;
        two structurally equal specs always share a fingerprint.
        """
        from repro.utils.serialization import canonical_json

        payload = canonical_json(
            {"__codec__": TASK_CODEC_VERSION, "kind": self.kind, "params": self.params}
        )
        return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


def register_task(kind: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a pure ``fn(**params)`` as the evaluator of ``kind`` tasks.

    Registration is module-level (it must happen at import so freshly
    spawned workers resolve kinds by importing this module alone); built-in
    kinds live in this file, tests may add their own throwaway kinds.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        if kind in _REGISTRY:
            raise ValueError(f"task kind {kind!r} is already registered")
        _REGISTRY[kind] = fn
        return fn

    return decorate


def task_kinds() -> tuple[str, ...]:
    """The registered kinds (built-ins plus any test registrations)."""
    return tuple(sorted(_REGISTRY))


def task_spec(kind: str, **params: Any) -> TaskSpec:
    """Build a spec, validating the kind against the registry."""
    if kind not in _REGISTRY:
        raise KeyError(f"unknown task kind {kind!r}; registered: {task_kinds()}")
    return TaskSpec(kind=kind, params=params)


def run_spec(spec: TaskSpec) -> Any:
    """Evaluate one spec — the single entry point workers execute.

    Executors recognise this function (``run_spec.is_task_codec``) to detect
    codec-backed batches; the ``auto`` executor routes such batches to the
    process pool because their payloads are slim by construction.
    """
    fn = _REGISTRY.get(spec.kind)
    if fn is None:
        raise KeyError(f"unknown task kind {spec.kind!r}; registered: {task_kinds()}")
    return fn(**spec.params)


run_spec.is_task_codec = True  # executor-side batch detection, import-free


def spec_task(spec: TaskSpec, key=None, cls: type | None = None, cache=None):
    """Lower a spec to an :class:`~repro.engine.service.EvalTask`.

    ``key`` is the caller's richer domain cache address when one exists
    (e.g. the inner-run key).  For task kinds without one, passing a
    ``cache`` makes the spec's content :meth:`~TaskSpec.fingerprint` the
    automatic address (namespace ``spec``): two structurally equal specs
    always share a single cache entry, so whole-spec results (platform
    experiments, table2 rows) persist and de-duplicate with zero per-kind
    key plumbing.  An explicit ``key`` always wins over the fingerprint.
    """
    from repro.engine.service import EvalTask

    if key is None and cache is not None:
        key = cache.key("spec", kind=spec.kind, fingerprint=spec.fingerprint())
    return EvalTask(fn=run_spec, args=(spec,), key=key, cls=cls)


# --------------------------------------------------------------------------
# Worker-side evaluator contexts.  Heavy, reusable, deterministic per key —
# built once per process (lru_cache) and shared by every task of that
# context.  ``cache_dir`` attaches the persistent ResultCache so worker
# processes read and extend the same on-disk store as the parent (writes are
# atomic and idempotent, so concurrent workers are safe).
# --------------------------------------------------------------------------


@lru_cache(maxsize=16)
def _static_context(platform: str, num_classes: int, seed: int, cache_dir: str | None):
    from repro.accuracy.surrogate import AccuracySurrogate
    from repro.arch.space import BackboneSpace
    from repro.engine.cache import ResultCache
    from repro.eval.static import StaticEvaluator
    from repro.hardware.platform import get_platform

    space = BackboneSpace(num_classes=num_classes)
    surrogate = AccuracySurrogate(space, seed=seed)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    evaluator = StaticEvaluator(
        get_platform(platform), surrogate, seed=seed, cache=cache
    )
    return space, surrogate, evaluator, cache


# ----------------------------------------------------------- built-in kinds
@register_task("static-backbone")
def _static_backbone(
    *, platform: str, num_classes: int, seed: int, genome, cache_dir: str | None = None
):
    """S(b) of one genome — mirrors ``_BackboneProblem.evaluate`` exactly."""
    import numpy as np

    space, _, evaluator, _ = _static_context(platform, num_classes, seed, cache_dir)
    config = space.decode(np.asarray(genome, dtype=np.int64))
    static = evaluator.evaluate(config)
    return np.asarray(static.objectives()), {"config": config, "static": static}


@register_task("inner-run")
def _inner_run(
    *,
    platform: str,
    num_classes: int,
    seed: int,
    backbone,
    gamma: float,
    population: int,
    generations: int,
    oracle_samples: int,
    literal_ratios: bool,
    capability_model,
    cache_dir: str | None = None,
):
    """One backbone's IOE — mirrors ``HadasSearch.make_inner_engine().run()``."""
    from repro.search.ioe import InnerEngine
    from repro.search.nsga2 import Nsga2Config

    _, surrogate, evaluator, cache = _static_context(
        platform, num_classes, seed, cache_dir
    )
    return InnerEngine(
        config=backbone,
        static_evaluator=evaluator,
        backbone_accuracy_fraction=surrogate.accuracy_fraction(backbone),
        nsga=Nsga2Config(population=population, generations=generations),
        gamma=gamma,
        literal_ratios=literal_ratios,
        capability_model=capability_model,
        oracle_samples=oracle_samples,
        seed=seed,
        cache=cache,
    ).run()


@register_task("platform-experiment")
def _platform_experiment(*, platform: str, profile, gamma: float, baselines):
    """One platform's full study — the fig5/fig6/table3 shard unit.

    ``profile`` arrives with its engine knobs already forced to in-worker
    values (serial executor, shared ``cache_dir``) by the sharding runner, so
    worker processes never nest pools.
    """
    from repro.experiments.runner import compute_platform_experiment

    return compute_platform_experiment(platform, profile, gamma, tuple(baselines))


@register_task("serving-cell")
def _serving_cell(*, spec):
    from repro.serving.harness import run_serving_cell

    return run_serving_cell(spec)


@register_task("fleet-cell")
def _fleet_cell(*, spec):
    # ``spec.engine`` / ``spec.steal`` ride the FleetSpec into the cache key
    # (FLEET_CELL_VERSION separates the dispatch-core generations), so both
    # engines and steal variants cache as distinct cells.
    from repro.serving.fleet import run_fleet_cell

    return run_fleet_cell(spec)


@register_task("table2-dvfs")
def _table2_dvfs(*, platform: str):
    from repro.experiments.table2 import platform_dvfs_rows

    return platform_dvfs_rows(platform)


@lru_cache(maxsize=8)
def _dynamic_context(
    platform: str,
    num_classes: int,
    seed: int,
    backbone,
    gamma: float,
    oracle_samples: int,
    literal_ratios: bool,
    capability_model,
    cache_dir: str | None,
):
    """One backbone's :class:`DynamicEvaluator` — the ``population-eval``
    worker context.  Memoised like :func:`_static_context` (the backbone and
    capability model are frozen dataclasses, hence hashable): an exhaustive
    grid sweep ships one spec per (chunk, setting), and a worker builds the
    oracle/evaluator stack once for the whole sweep."""
    from repro.search.ioe import InnerEngine

    _, surrogate, evaluator, cache = _static_context(
        platform, num_classes, seed, cache_dir
    )
    return InnerEngine(
        config=backbone,
        static_evaluator=evaluator,
        backbone_accuracy_fraction=surrogate.accuracy_fraction(backbone),
        gamma=gamma,
        literal_ratios=literal_ratios,
        capability_model=capability_model,
        oracle_samples=oracle_samples,
        seed=seed,
        cache=cache,
    ).evaluator


@register_task("population-eval")
def _population_eval(
    *,
    platform: str,
    num_classes: int,
    seed: int,
    backbone,
    placements,
    core_ghz: float,
    emc_ghz: float,
    gamma: float = 1.0,
    oracle_samples: int = 2048,
    literal_ratios: bool = False,
    capability_model=None,
    cache_dir: str | None = None,
):
    """One (population-chunk, setting) batch through the fused kernel.

    ``placements`` is a sequence of exit-position tuples; the result is one
    slim JSON-able row per placement, in input order — what the exhaustive
    DVFS-grid artifacts assemble.  The call lowers to
    ``DynamicEvaluator.evaluate_population`` — one fused accuracy+cost
    kernel pass (batched oracle statistics plus the stacked cost gather) —
    with the same seeds, so sharded sweeps are bit-identical to inline ones.
    """
    from repro.exits.placement import ExitPlacement
    from repro.hardware.dvfs import DvfsSetting

    evaluator = _dynamic_context(
        platform,
        num_classes,
        seed,
        backbone,
        gamma,
        oracle_samples,
        literal_ratios,
        capability_model,
        cache_dir,
    )
    decoded = [
        ExitPlacement(backbone.total_mbconv_layers, tuple(int(p) for p in positions))
        for positions in placements
    ]
    setting = DvfsSetting(core_ghz=float(core_ghz), emc_ghz=float(emc_ghz))
    return [
        {
            "positions": [int(p) for p in evaluation.placement.positions],
            "dynamic_energy_j": float(evaluation.dynamic_energy_j),
            "dynamic_latency_s": float(evaluation.dynamic_latency_s),
            "energy_gain": float(evaluation.energy_gain),
            "latency_gain": float(evaluation.latency_gain),
            "d_score": float(evaluation.d_score),
            "dynamic_accuracy": float(evaluation.dynamic_accuracy),
            "mean_n_i": float(evaluation.mean_n_i),
        }
        for evaluation in evaluator.evaluate_population(decoded, setting)
    ]
