"""``repro cache`` — inspect and maintain the persistent result cache.

Subcommands::

    repro cache stats --cache-dir .cache/engine [--namespace serving]
    repro cache clear --cache-dir .cache/engine [--namespace serving]
    repro cache prune --cache-dir .cache/engine [--keep-version 1] [--orphans]
                      [--namespace inner]

``stats`` reports entry/byte totals with per-namespace and per-version
breakdowns; ``prune`` removes entries written under superseded cache
versions (unreachable since the version is folded into every digest);
``clear`` wipes the directory.  ``--namespace`` scopes any action to one
namespace (``static``, ``inner``, ``oracle``, ``serving``, ``fleet``, ...)
so a single grid can be dropped or audited without touching warm entries of
the others.
"""

from __future__ import annotations

import argparse

from repro.engine.cache import ENGINE_CACHE_VERSION, ResultCache


def _format_bytes(num: int) -> str:
    size = float(num)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    return f"{int(size)} B"  # pragma: no cover - unreachable


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("action", choices=["stats", "clear", "prune"])
    parser.add_argument(
        "--cache-dir", required=True, help="persistent evaluation-result cache directory"
    )
    parser.add_argument(
        "--namespace",
        default=None,
        help="restrict the action to one namespace (static, inner, oracle, "
        "serving, fleet, ...)",
    )
    parser.add_argument(
        "--keep-version",
        default=None,
        help=f"prune: version to keep (default: current, {ENGINE_CACHE_VERSION!r})",
    )
    parser.add_argument(
        "--orphans",
        action="store_true",
        help="prune: also remove unindexed entries (pre-index cache files; "
        "ignored with --namespace, which cannot attribute them)",
    )
    args = parser.parse_args(argv)

    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        stats = cache.disk_stats()
        namespaces = stats["namespaces"]
        if args.namespace is not None:
            row = namespaces.get(args.namespace, {"entries": 0, "bytes": 0})
            print(f"cache {stats['directory']} (namespace {args.namespace})")
            print(
                f"  {row['entries']} entries, {_format_bytes(row['bytes'])} "
                f"(of {stats['entries']} total)"
            )
            return 0
        print(f"cache {stats['directory']}")
        print(
            f"  {stats['entries']} entries, {_format_bytes(stats['bytes'])}"
            + (f" ({stats['unindexed']} unindexed)" if stats["unindexed"] else "")
        )
        for namespace, row in sorted(namespaces.items()):
            print(
                f"  namespace {namespace:>10s}: {row['entries']} entries, "
                f"{_format_bytes(row['bytes'])}"
            )
        for version, count in sorted(stats["versions"].items()):
            marker = " (current)" if version == str(cache.version) else ""
            print(f"  version {version:>12s}: {count} entries{marker}")
        session = cache.session_stats()
        if session:
            print("recorded sessions (hit/miss/put over all runs, all processes):")
            for namespace, row in sorted(session.items()):
                total = row.hits + row.misses
                rate = f"{row.hits / total:.1%}" if total else "n/a"
                print(
                    f"  namespace {namespace:>10s}: {row.hits} hits / "
                    f"{row.misses} misses ({rate}), {row.puts} puts"
                )
        return 0
    if args.action == "clear":
        removed = cache.clear(namespace=args.namespace)
        scope = f" (namespace {args.namespace})" if args.namespace else ""
        print(f"removed {removed} files from {cache.directory}{scope}")
        return 0
    removed = cache.prune(
        keep_version=args.keep_version,
        orphans=args.orphans,
        namespace=args.namespace,
    )
    keep = args.keep_version if args.keep_version is not None else cache.version
    scope = f", namespace {args.namespace}" if args.namespace else ""
    print(
        f"pruned {removed} entry files (kept version {keep!r}{scope}) in {cache.directory}"
    )
    return 0
