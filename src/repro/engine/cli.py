"""``repro cache`` — inspect and maintain the persistent result cache.

Subcommands::

    repro cache stats --cache-dir .cache/engine
    repro cache clear --cache-dir .cache/engine
    repro cache prune --cache-dir .cache/engine [--keep-version 1] [--orphans]

``stats`` reports entry/byte totals with per-namespace and per-version
breakdowns; ``prune`` removes entries written under superseded cache
versions (unreachable since the version is folded into every digest);
``clear`` wipes the directory.
"""

from __future__ import annotations

import argparse

from repro.engine.cache import ENGINE_CACHE_VERSION, ResultCache


def _format_bytes(num: int) -> str:
    size = float(num)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    return f"{int(size)} B"  # pragma: no cover - unreachable


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("action", choices=["stats", "clear", "prune"])
    parser.add_argument(
        "--cache-dir", required=True, help="persistent evaluation-result cache directory"
    )
    parser.add_argument(
        "--keep-version",
        default=None,
        help=f"prune: version to keep (default: current, {ENGINE_CACHE_VERSION!r})",
    )
    parser.add_argument(
        "--orphans",
        action="store_true",
        help="prune: also remove unindexed entries (pre-index cache files)",
    )
    args = parser.parse_args(argv)

    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        stats = cache.disk_stats()
        print(f"cache {stats['directory']}")
        print(
            f"  {stats['entries']} entries, {_format_bytes(stats['bytes'])}"
            + (f" ({stats['unindexed']} unindexed)" if stats["unindexed"] else "")
        )
        for namespace, row in sorted(stats["namespaces"].items()):
            print(
                f"  namespace {namespace:>10s}: {row['entries']} entries, "
                f"{_format_bytes(row['bytes'])}"
            )
        for version, count in sorted(stats["versions"].items()):
            marker = " (current)" if version == str(cache.version) else ""
            print(f"  version {version:>12s}: {count} entries{marker}")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} files from {cache.directory}")
        return 0
    removed = cache.prune(keep_version=args.keep_version, orphans=args.orphans)
    keep = args.keep_version if args.keep_version is not None else cache.version
    print(
        f"pruned {removed} entry files (kept version {keep!r}) in {cache.directory}"
    )
    return 0
