"""Content-addressed, persistent on-disk result cache.

A cache entry is addressed by the blake2b digest of a canonical-JSON
rendering of its key fields — ``(namespace, evaluator version, backbone key,
platform, seed, gamma, ...)`` — so any change to any field, including a
version bump, yields a different address and naturally invalidates stale
entries without any scanning or TTL machinery.

Two codecs are used transparently: values that survive
:func:`repro.utils.serialization.to_jsonable` are stored as human-readable
``<digest>.json`` files (static evaluations are three floats); richer object
graphs (inner-engine results with their Pareto archives) fall back to
``<digest>.pkl`` pickles.  Writes are atomic (temp file + rename), so a
killed run never leaves a torn entry behind, and concurrent writers of the
same key are idempotent because evaluations are pure.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
import time
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.obs import trace
from repro.utils.serialization import canonical_json, from_jsonable, to_jsonable

#: Bump to invalidate every entry written by older engine code.
ENGINE_CACHE_VERSION = "1"

_MISS = object()


@dataclass(frozen=True)
class CacheKey:
    """Address of one cache entry: namespace (for accounting) + digest."""

    namespace: str
    digest: str


@dataclass
class CacheStats:
    """Hit/miss/write accounting for one namespace (or the whole cache)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


# --------------------------------------------------------------------------
# Process-wide cache-stats registry.  Worker processes build their *own*
# ResultCache instances (the lru_cache'd contexts in engine/tasks.py), so a
# parent asking its cache for stats after an ``--executor process`` run used
# to see only its own traffic.  Every live cache registers here; a worker
# snapshots the registry before a task, diffs it after, and ships the delta
# home through the executor result channel (see obs/collect.py), where it
# merges into the parent cache via :meth:`ResultCache.merge_stats`.
# --------------------------------------------------------------------------
_REGISTRY_LOCK = threading.Lock()
# Keyed by id() because ResultCache (an eq-dataclass) is unhashable; dead
# entries evict themselves, and a recycled id simply replaces its entry.
_LIVE_CACHES: "weakref.WeakValueDictionary[int, ResultCache]" = (
    weakref.WeakValueDictionary()
)
# Traffic of caches that have been garbage-collected: a task-local cache
# usually dies when the task function returns — *before* the worker wrapper
# diffs the registry — so a finalizer folds its accounting in here and the
# snapshot stays monotonic over the process lifetime.
_RETIRED_STATS: dict[str, tuple[int, int, int]] = {}


def _retire_stats(stats: dict[str, CacheStats]) -> None:
    with _REGISTRY_LOCK:
        for namespace, s in stats.items():
            hits, misses, puts = _RETIRED_STATS.get(namespace, (0, 0, 0))
            _RETIRED_STATS[namespace] = (hits + s.hits, misses + s.misses, puts + s.puts)


def _register_cache(cache: "ResultCache") -> None:
    with _REGISTRY_LOCK:
        _LIVE_CACHES[id(cache)] = cache
    # The callback holds the stats dict (not the cache), so it cannot keep
    # the cache itself alive.
    weakref.finalize(cache, _retire_stats, cache._stats)


# While a worker-side call's stats deltas are being captured for the result
# envelope (obs/collect.py), the envelope owns every hit/miss/put this
# thread generates: the parent merges the delta into its cache and flushes
# it to the session sidecar exactly once.  Worker-side services closing
# *inside* the capture window (a shard's in-worker HadasSearch teardown)
# must therefore not also write the sidecar, or each event lands twice.
_CAPTURE_TLS = threading.local()


@contextmanager
def stats_capture() -> Iterator[None]:
    """Mark this thread's cache traffic as envelope-owned (flushes muted)."""
    depth = getattr(_CAPTURE_TLS, "depth", 0)
    _CAPTURE_TLS.depth = depth + 1
    try:
        yield
    finally:
        _CAPTURE_TLS.depth = depth


def _capturing() -> bool:
    return getattr(_CAPTURE_TLS, "depth", 0) > 0


def runtime_stats_snapshot() -> dict[str, tuple[int, int, int]]:
    """Per-namespace ``(hits, misses, puts)``: every live cache + retired ones."""
    with _REGISTRY_LOCK:
        caches = list(_LIVE_CACHES.values())
        totals = dict(_RETIRED_STATS)
    for cache in caches:
        for namespace, stats in list(cache._stats.items()):
            hits, misses, puts = totals.get(namespace, (0, 0, 0))
            totals[namespace] = (
                hits + stats.hits, misses + stats.misses, puts + stats.puts
            )
    return totals


def runtime_stats_delta(
    baseline: dict[str, tuple[int, int, int]],
) -> dict[str, dict[str, int]]:
    """What changed since ``baseline``; all-zero namespaces are dropped.

    Clamped at zero per field as a backstop: retirement keeps the snapshot
    monotonic, but a baseline taken in a parent process and diffed after a
    fork boundary must never produce negative freight.
    """
    deltas: dict[str, dict[str, int]] = {}
    for namespace, (hits, misses, puts) in runtime_stats_snapshot().items():
        base = baseline.get(namespace, (0, 0, 0))
        delta = (
            max(hits - base[0], 0), max(misses - base[1], 0), max(puts - base[2], 0)
        )
        if any(delta):
            deltas[namespace] = {
                "hits": delta[0], "misses": delta[1], "puts": delta[2]
            }
    return deltas


@dataclass
class ResultCache:
    """Persistent evaluation-result store shared by every engine layer.

    Parameters
    ----------
    directory:
        Root directory of the cache; created on first use.  Entries from
        different namespaces share the directory (the digest already
        incorporates the namespace).
    version:
        Cache-format version folded into every key; bumping it orphans all
        existing entries (they stay on disk but are never addressed again).
    """

    directory: str | Path
    version: str = ENGINE_CACHE_VERSION
    _stats: dict[str, CacheStats] = field(default_factory=dict, repr=False)
    _flushed: dict[str, tuple[int, int, int]] = field(default_factory=dict, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self):
        self.directory = Path(self.directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        _register_cache(self)

    # ------------------------------------------------------------- pickling
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.__dict__.setdefault("_flushed", {})
        self._lock = threading.Lock()
        _register_cache(self)

    # ----------------------------------------------------------------- keys
    def key(self, namespace: str, **fields: Any) -> CacheKey:
        """Content-address a key from named fields (order-insensitive)."""
        payload = canonical_json(
            {"__version__": str(self.version), "__namespace__": namespace, **fields}
        )
        digest = hashlib.blake2b(payload.encode("utf-8"), digest_size=20).hexdigest()
        return CacheKey(namespace=namespace, digest=digest)

    def stats(self, namespace: str | None = None) -> CacheStats:
        """Accounting for one namespace, or aggregated over all of them."""
        with self._lock:
            if namespace is not None:
                return self._stats.setdefault(namespace, CacheStats())
            total = CacheStats()
            for stats in self._stats.values():
                total.hits += stats.hits
                total.misses += stats.misses
                total.puts += stats.puts
            return total

    def _record(self, namespace: str, *, hit: bool = False, put: bool = False) -> None:
        with self._lock:
            stats = self._stats.setdefault(namespace, CacheStats())
            if put:
                stats.puts += 1
            elif hit:
                stats.hits += 1
            else:
                stats.misses += 1
        if trace.active() is not None:
            kind = "puts" if put else ("hits" if hit else "misses")
            trace.count(f"cache.{namespace}.{kind}")

    def merge_stats(self, deltas: dict[str, dict[str, int]]) -> None:
        """Fold another process's per-namespace hit/miss/put deltas in.

        Called by the collector when a worker-process envelope lands, so the
        parent's :meth:`stats` reflect traffic that happened in worker-built
        cache instances (see ``runtime_stats_snapshot``).
        """
        with self._lock:
            for namespace, delta in deltas.items():
                stats = self._stats.setdefault(namespace, CacheStats())
                stats.hits += int(delta.get("hits", 0))
                stats.misses += int(delta.get("misses", 0))
                stats.puts += int(delta.get("puts", 0))

    def _paths(self, key: CacheKey) -> tuple[Path, Path]:
        return (
            self.directory / f"{key.digest}.json",
            self.directory / f"{key.digest}.pkl",
        )

    # ---------------------------------------------------------------- index
    # The digest folds the namespace and version in, so entries are
    # unreachable (not just stale) after a version bump.  The index sidecar
    # records (digest -> namespace, version) at write time, which is what
    # lets `prune` find orphaned generations without guessing: filenames
    # alone cannot be mapped back to the version that produced them.
    @property
    def _index_path(self) -> Path:
        return self.directory / "index.jsonl"

    def _index_append(self, key: CacheKey) -> None:
        line = json.dumps(
            {"digest": key.digest, "namespace": key.namespace, "version": str(self.version)}
        )
        with self._lock:
            with self._index_path.open("a+b") as handle:
                # A hard-killed writer can leave a torn line with no trailing
                # newline; start on a fresh line so this record cannot be
                # welded onto the remnant and lost with it.
                if handle.seek(0, os.SEEK_END) > 0:
                    handle.seek(-1, os.SEEK_END)
                    if handle.read(1) != b"\n":
                        handle.write(b"\n")
                handle.write(line.encode("utf-8") + b"\n")

    def index_entries(self) -> dict[str, dict]:
        """Parse the index sidecar: digest -> {namespace, version} (last wins).

        Corrupt lines (torn concurrent appends) are skipped; entries whose
        files are gone are dropped.
        """
        entries: dict[str, dict] = {}
        try:
            lines = self._index_path.read_text().splitlines()
        except OSError:
            return entries
        for line in lines:
            try:
                record = json.loads(line)
                digest = record["digest"]
            except (ValueError, TypeError, KeyError):
                continue
            entries[digest] = record
        return {
            digest: record
            for digest, record in entries.items()
            if (self.directory / f"{digest}.json").exists()
            or (self.directory / f"{digest}.pkl").exists()
        }

    # -------------------------------------------------------------- get/put
    def get(self, key: CacheKey, cls: type | None = None, default: Any = None) -> Any:
        """Fetch the entry at ``key``; ``default`` on miss.

        ``cls`` rebuilds JSON-stored dataclasses (ignored for pickles, which
        carry their own types).
        """
        recorder = trace.active()
        if recorder is None:
            return self._get(key, cls, default)
        start = time.perf_counter()
        value = self._get(key, cls, default)
        recorder.observe(f"cache.{key.namespace}.get_s", time.perf_counter() - start)
        return value

    def _get(self, key: CacheKey, cls: type | None, default: Any) -> Any:
        json_path, pkl_path = self._paths(key)
        try:
            if json_path.exists():
                data = json.loads(json_path.read_text())
                value = from_jsonable(data, cls) if cls is not None else data
                self._record(key.namespace, hit=True)  # only after deserialization
                return value
            if pkl_path.exists():
                with pkl_path.open("rb") as handle:
                    value = pickle.load(handle)
                self._record(key.namespace, hit=True)
                return value
        except (
            OSError,
            ValueError,
            pickle.UnpicklingError,
            EOFError,
            # Stale pickles referencing moved/renamed classes:
            AttributeError,
            ImportError,
        ):
            pass  # torn/corrupt/stale entry: treat as a miss, re-evaluation overwrites it
        self._record(key.namespace)
        return default

    def contains(self, key: CacheKey) -> bool:
        """Existence check without touching hit/miss accounting."""
        json_path, pkl_path = self._paths(key)
        return json_path.exists() or pkl_path.exists()

    def put(self, key: CacheKey, value: Any) -> Path:
        """Store ``value`` at ``key`` (JSON when possible, pickle otherwise)."""
        recorder = trace.active()
        if recorder is None:
            return self._put(key, value)
        start = time.perf_counter()
        path = self._put(key, value)
        recorder.observe(f"cache.{key.namespace}.put_s", time.perf_counter() - start)
        return path

    def _put(self, key: CacheKey, value: Any) -> Path:
        json_path, pkl_path = self._paths(key)
        try:
            rendered = json.dumps(to_jsonable(value), sort_keys=True)
        except TypeError:
            self._write_atomic(pkl_path, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
            self._record(key.namespace, put=True)
            self._index_append(key)
            return pkl_path
        self._write_atomic(json_path, rendered.encode("utf-8"))
        self._record(key.namespace, put=True)
        self._index_append(key)
        return json_path

    # ------------------------------------------------------- session stats
    # Runtime hit/miss accounting is in-memory and per-process; the sidecar
    # below persists it so `repro cache stats` can report what actually
    # happened across past runs (including process-executor runs, whose
    # worker deltas merge into the parent cache before it flushes).
    @property
    def _session_stats_path(self) -> Path:
        return self.directory / "stats.jsonl"

    def flush_session_stats(self) -> dict[str, dict[str, int]]:
        """Append this cache's unflushed hit/miss/put deltas to the sidecar.

        Idempotent: each call writes only what accumulated since the last
        one, so repeated service teardowns append nothing new.  Returns the
        deltas written (empty dict when there was nothing to flush).  A
        no-op inside a :func:`stats_capture` window — that traffic ships
        home in the result envelope and the *parent* cache flushes it.
        """
        if _capturing():
            return {}
        with self._lock:
            deltas: dict[str, dict[str, int]] = {}
            for namespace, stats in self._stats.items():
                base = self._flushed.get(namespace, (0, 0, 0))
                delta = (
                    stats.hits - base[0], stats.misses - base[1], stats.puts - base[2]
                )
                if any(delta):
                    deltas[namespace] = {
                        "hits": delta[0], "misses": delta[1], "puts": delta[2]
                    }
                    self._flushed[namespace] = (stats.hits, stats.misses, stats.puts)
            if not deltas:
                return {}
            line = json.dumps(
                {"pid": os.getpid(), "ts": time.time(), "namespaces": deltas}
            )
            with self._session_stats_path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
            return deltas

    def session_stats(self) -> dict[str, CacheStats]:
        """Aggregate the sidecar: per-namespace totals over all recorded runs."""
        totals: dict[str, CacheStats] = {}
        try:
            lines = self._session_stats_path.read_text().splitlines()
        except OSError:
            return totals
        for line in lines:
            try:
                record = json.loads(line)
                namespaces = record["namespaces"]
            except (ValueError, TypeError, KeyError):
                continue  # torn concurrent append
            for namespace, delta in namespaces.items():
                stats = totals.setdefault(namespace, CacheStats())
                stats.hits += int(delta.get("hits", 0))
                stats.misses += int(delta.get("misses", 0))
                stats.puts += int(delta.get("puts", 0))
        return totals

    def memoize(self, key: CacheKey, fn, cls: type | None = None) -> Any:
        """Return the cached value at ``key``, computing and storing on miss."""
        value = self.get(key, cls=cls, default=_MISS)
        if value is not _MISS:
            return value
        value = fn()
        self.put(key, value)
        return value

    def _write_atomic(self, path: Path, payload: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(self.directory), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------ inventory
    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json")) + sum(
            1 for _ in self.directory.glob("*.pkl")
        )

    def disk_stats(self) -> dict:
        """On-disk inventory: entry/byte totals plus per-namespace and
        per-version breakdowns from the index sidecar.

        ``unindexed`` counts entry files the index does not know about
        (written by pre-index engine versions); they are left alone by
        :meth:`prune` unless explicitly requested.
        """
        files = {
            path.stem: path
            for pattern in ("*.json", "*.pkl")
            for path in self.directory.glob(pattern)
        }
        entries = self.index_entries()
        namespaces: dict[str, dict] = {}
        versions: dict[str, int] = {}
        for digest, record in entries.items():
            size = files[digest].stat().st_size if digest in files else 0
            space = namespaces.setdefault(
                record.get("namespace", "?"), {"entries": 0, "bytes": 0}
            )
            space["entries"] += 1
            space["bytes"] += size
            version = str(record.get("version", "?"))
            versions[version] = versions.get(version, 0) + 1
        return {
            "directory": str(self.directory),
            "entries": len(files),
            "bytes": sum(path.stat().st_size for path in files.values()),
            "unindexed": len(set(files) - set(entries)),
            "namespaces": namespaces,
            "versions": versions,
        }

    def prune(
        self,
        keep_version: str | None = None,
        orphans: bool = False,
        orphan_min_age_s: float = 60.0,
        namespace: str | None = None,
    ) -> int:
        """Delete entries written under any version other than ``keep_version``.

        Those entries are unreachable — the version is folded into every
        digest — so pruning reclaims disk without affecting hit rates.
        ``orphans=True`` additionally removes unindexed entry files (written
        before the index existed; indistinguishable from stale, so opt-in).
        Files younger than ``orphan_min_age_s`` are never swept as orphans:
        a concurrent writer creates the entry file *before* its index line
        lands, and the age guard keeps that window from looking orphaned.
        ``namespace`` limits the sweep to that namespace's entries (the
        orphan sweep is skipped then: unindexed files carry no namespace to
        match against).  Returns the number of entry files removed and
        rewrites the index to the surviving entries.
        """
        keep = str(self.version if keep_version is None else keep_version)
        entries = self.index_entries()
        removed = 0
        survivors: dict[str, dict] = {}

        def survives(record: dict) -> bool:
            if str(record.get("version")) == keep:
                return True
            return namespace is not None and record.get("namespace") != namespace

        for digest, record in entries.items():
            if survives(record):
                survivors[digest] = record
                continue
            for suffix in (".json", ".pkl"):
                path = self.directory / f"{digest}{suffix}"
                if path.exists():
                    path.unlink(missing_ok=True)
                    removed += 1
        if orphans and namespace is None:
            cutoff = time.time() - orphan_min_age_s
            for pattern in ("*.json", "*.pkl"):
                for path in self.directory.glob(pattern):
                    if path.stem in entries:
                        continue
                    try:
                        if path.stat().st_mtime > cutoff:
                            continue  # too fresh: may be a racing writer's entry
                    except OSError:
                        continue
                    path.unlink(missing_ok=True)
                    removed += 1
        # Re-read instead of trusting the pre-deletion snapshot: index lines
        # appended by concurrent writers while we swept must survive the
        # rewrite, or their (live) entries would look orphaned forever.
        with self._lock:
            latest = self.index_entries()
            survivors.update(
                (digest, record)
                for digest, record in latest.items()
                if digest not in survivors and survives(record)
            )
            rendered = "".join(json.dumps(record) + "\n" for record in survivors.values())
            self._write_atomic(self._index_path, rendered.encode("utf-8"))
        return removed

    def clear(self, namespace: str | None = None) -> int:
        """Delete every entry; returns how many files were removed.

        Also sweeps ``*.tmp`` remnants of writes that were hard-killed
        between ``mkstemp`` and the atomic rename (safe here: a clear is an
        explicit request, not something raced by concurrent writers) and
        the index sidecar.

        ``namespace`` restricts the wipe to that namespace's indexed entries
        (e.g. drop the ``serving`` grid but keep ``static``/``inner``/
        ``oracle`` warm); unindexed files and tmp remnants are left alone
        then, and the index is rewritten to the surviving entries.
        """
        removed = 0
        if namespace is not None:
            entries = self.index_entries()
            for digest, record in entries.items():
                if record.get("namespace") != namespace:
                    continue
                for suffix in (".json", ".pkl"):
                    path = self.directory / f"{digest}{suffix}"
                    if path.exists():
                        path.unlink(missing_ok=True)
                        removed += 1
            with self._lock:
                survivors = {
                    digest: record
                    for digest, record in self.index_entries().items()
                    if record.get("namespace") != namespace
                }
                rendered = "".join(
                    json.dumps(record) + "\n" for record in survivors.values()
                )
                self._write_atomic(self._index_path, rendered.encode("utf-8"))
            return removed
        for pattern in ("*.json", "*.pkl", "*.tmp"):
            for path in self.directory.glob(pattern):
                path.unlink(missing_ok=True)
                removed += 1
        self._index_path.unlink(missing_ok=True)
        self._session_stats_path.unlink(missing_ok=True)
        return removed
