"""Content-addressed, persistent on-disk result cache.

A cache entry is addressed by the blake2b digest of a canonical-JSON
rendering of its key fields — ``(namespace, evaluator version, backbone key,
platform, seed, gamma, ...)`` — so any change to any field, including a
version bump, yields a different address and naturally invalidates stale
entries without any scanning or TTL machinery.

Two codecs are used transparently: values that survive
:func:`repro.utils.serialization.to_jsonable` are stored as human-readable
``<digest>.json`` files (static evaluations are three floats); richer object
graphs (inner-engine results with their Pareto archives) fall back to
``<digest>.pkl`` pickles.  Writes are atomic (temp file + rename), so a
killed run never leaves a torn entry behind, and concurrent writers of the
same key are idempotent because evaluations are pure.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.utils.serialization import canonical_json, from_jsonable, to_jsonable

#: Bump to invalidate every entry written by older engine code.
ENGINE_CACHE_VERSION = "1"

_MISS = object()


@dataclass(frozen=True)
class CacheKey:
    """Address of one cache entry: namespace (for accounting) + digest."""

    namespace: str
    digest: str


@dataclass
class CacheStats:
    """Hit/miss/write accounting for one namespace (or the whole cache)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class ResultCache:
    """Persistent evaluation-result store shared by every engine layer.

    Parameters
    ----------
    directory:
        Root directory of the cache; created on first use.  Entries from
        different namespaces share the directory (the digest already
        incorporates the namespace).
    version:
        Cache-format version folded into every key; bumping it orphans all
        existing entries (they stay on disk but are never addressed again).
    """

    directory: str | Path
    version: str = ENGINE_CACHE_VERSION
    _stats: dict[str, CacheStats] = field(default_factory=dict, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self):
        self.directory = Path(self.directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------- pickling
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ----------------------------------------------------------------- keys
    def key(self, namespace: str, **fields: Any) -> CacheKey:
        """Content-address a key from named fields (order-insensitive)."""
        payload = canonical_json(
            {"__version__": str(self.version), "__namespace__": namespace, **fields}
        )
        digest = hashlib.blake2b(payload.encode("utf-8"), digest_size=20).hexdigest()
        return CacheKey(namespace=namespace, digest=digest)

    def stats(self, namespace: str | None = None) -> CacheStats:
        """Accounting for one namespace, or aggregated over all of them."""
        with self._lock:
            if namespace is not None:
                return self._stats.setdefault(namespace, CacheStats())
            total = CacheStats()
            for stats in self._stats.values():
                total.hits += stats.hits
                total.misses += stats.misses
                total.puts += stats.puts
            return total

    def _record(self, namespace: str, *, hit: bool = False, put: bool = False) -> None:
        with self._lock:
            stats = self._stats.setdefault(namespace, CacheStats())
            if put:
                stats.puts += 1
            elif hit:
                stats.hits += 1
            else:
                stats.misses += 1

    def _paths(self, key: CacheKey) -> tuple[Path, Path]:
        return (
            self.directory / f"{key.digest}.json",
            self.directory / f"{key.digest}.pkl",
        )

    # -------------------------------------------------------------- get/put
    def get(self, key: CacheKey, cls: type | None = None, default: Any = None) -> Any:
        """Fetch the entry at ``key``; ``default`` on miss.

        ``cls`` rebuilds JSON-stored dataclasses (ignored for pickles, which
        carry their own types).
        """
        json_path, pkl_path = self._paths(key)
        try:
            if json_path.exists():
                data = json.loads(json_path.read_text())
                value = from_jsonable(data, cls) if cls is not None else data
                self._record(key.namespace, hit=True)  # only after deserialization
                return value
            if pkl_path.exists():
                with pkl_path.open("rb") as handle:
                    value = pickle.load(handle)
                self._record(key.namespace, hit=True)
                return value
        except (
            OSError,
            ValueError,
            pickle.UnpicklingError,
            EOFError,
            # Stale pickles referencing moved/renamed classes:
            AttributeError,
            ImportError,
        ):
            pass  # torn/corrupt/stale entry: treat as a miss, re-evaluation overwrites it
        self._record(key.namespace)
        return default

    def contains(self, key: CacheKey) -> bool:
        """Existence check without touching hit/miss accounting."""
        json_path, pkl_path = self._paths(key)
        return json_path.exists() or pkl_path.exists()

    def put(self, key: CacheKey, value: Any) -> Path:
        """Store ``value`` at ``key`` (JSON when possible, pickle otherwise)."""
        json_path, pkl_path = self._paths(key)
        try:
            rendered = json.dumps(to_jsonable(value), sort_keys=True)
        except TypeError:
            self._write_atomic(pkl_path, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
            self._record(key.namespace, put=True)
            return pkl_path
        self._write_atomic(json_path, rendered.encode("utf-8"))
        self._record(key.namespace, put=True)
        return json_path

    def memoize(self, key: CacheKey, fn, cls: type | None = None) -> Any:
        """Return the cached value at ``key``, computing and storing on miss."""
        value = self.get(key, cls=cls, default=_MISS)
        if value is not _MISS:
            return value
        value = fn()
        self.put(key, value)
        return value

    def _write_atomic(self, path: Path, payload: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(self.directory), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------ inventory
    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json")) + sum(
            1 for _ in self.directory.glob("*.pkl")
        )

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed.

        Also sweeps ``*.tmp`` remnants of writes that were hard-killed
        between ``mkstemp`` and the atomic rename (safe here: a clear is an
        explicit request, not something raced by concurrent writers).
        """
        removed = 0
        for pattern in ("*.json", "*.pkl", "*.tmp"):
            for path in self.directory.glob(pattern):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
