"""Pluggable executors: where evaluation batches actually run.

All three executors share one contract: ``run(calls)`` takes a sequence of
``(fn, args)`` pairs and returns their results *in submission order* — the
property that makes parallel execution bit-identical to serial execution for
pure tasks.  Pools are created lazily and torn down by ``close()`` (the
:class:`~repro.engine.service.EvaluationService` context manager does this).

The process executor requires picklable ``fn``/``args``/results; tasks
submitted by the search stack satisfy this (dataclasses + numpy arrays).
Executors are never nested: a task running inside a pool must not submit to
the same pool (thread pools would deadlock once saturated), which is why the
search facade parallelises at exactly one level — across inner-engine runs
and across population batches, never both.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro.utils.validation import check_positive

Call = tuple[Callable[..., Any], tuple]

EXECUTOR_KINDS = ("serial", "thread", "process")


def _invoke(call: Call) -> Any:
    fn, args = call
    return fn(*args)


class SerialExecutor:
    """In-process, in-order execution (the zero-dependency default)."""

    kind = "serial"
    workers = 1

    def run(self, calls: Sequence[Call]) -> list[Any]:
        return [_invoke(call) for call in calls]

    def close(self) -> None:
        pass


class _PoolExecutor:
    """Shared lazy-pool plumbing for the thread/process executors."""

    kind: str

    def __init__(self, workers: int):
        check_positive("workers", workers)
        self.workers = workers
        self._pool = None

    def _make_pool(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def run(self, calls: Sequence[Call]) -> list[Any]:
        if len(calls) <= 1:  # no point paying pool dispatch for one task
            return [_invoke(call) for call in calls]
        if self._pool is None:
            self._pool = self._make_pool()
        return list(self._pool.map(_invoke, calls))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # Live pools cannot cross pickle boundaries (e.g. a service captured in
    # a task shipped to a worker process); the copy re-creates its pool
    # lazily if it is ever used.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_pool"] = None
        return state


class ThreadExecutor(_PoolExecutor):
    """Thread-pool execution: cheap dispatch, shared in-memory caches."""

    kind = "thread"

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.workers)


class ProcessExecutor(_PoolExecutor):
    """Process-pool execution: true parallelism, requires picklable tasks."""

    kind = "process"

    def _make_pool(self):
        return ProcessPoolExecutor(max_workers=self.workers)


def make_executor(kind: str, workers: int = 1):
    """Build an executor; ``"auto"`` picks serial for 1 worker, threads above."""
    if kind == "auto":
        kind = "serial" if workers <= 1 else "thread"
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(workers)
    if kind == "process":
        return ProcessExecutor(workers)
    raise ValueError(
        f"unknown executor {kind!r}; expected one of {('auto',) + EXECUTOR_KINDS}"
    )
