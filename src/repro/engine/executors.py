"""Pluggable executors: where evaluation batches actually run.

All executors share one contract: ``run(calls)`` takes a sequence of
``(fn, args)`` pairs and returns their results *in submission order* — the
property that makes parallel execution bit-identical to serial execution for
pure tasks.  Pools are created lazily and torn down by ``close()`` (the
:class:`~repro.engine.service.EvaluationService` context manager does this,
cancelling queued work when unwinding on an error).

``auto`` resolution rule: one worker means :class:`SerialExecutor`; above
one worker the :class:`AutoExecutor` defers the thread-vs-process choice to
*batch submission time* — a batch whose every call is codec-backed (built
from :class:`~repro.engine.tasks.TaskSpec` payloads via
:func:`~repro.engine.tasks.run_spec`) runs on the process pool, because spec
payloads are slim by construction and the work is CPU-bound numpy that the
GIL serialises under threads; any other batch runs on the thread pool, since
closures may drag arbitrary object graphs (or unpicklable state) that
process transport would copy per task.

The process executor requires picklable ``fn``/``args``/results; tasks
submitted by the search stack satisfy this (dataclasses + numpy arrays).
Executors are never nested: a task running inside a pool must not submit to
the same pool (thread pools would deadlock once saturated), which is why the
search facade parallelises at exactly one level — across inner-engine runs
and across population batches, never both — and the sharded experiment
runner forces per-platform workers to serial inside its process shards.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro.utils.validation import check_positive

Call = tuple[Callable[..., Any], tuple]

EXECUTOR_KINDS = ("serial", "thread", "process")


def _invoke(call: Call) -> Any:
    fn, args = call
    return fn(*args)


def is_codec_call(call: Call) -> bool:
    """True when the call evaluates a task-codec spec (see ``tasks.run_spec``).

    Detected via a function attribute rather than an import so this module
    never depends on the codec registry.
    """
    return bool(getattr(call[0], "is_task_codec", False))


class SerialExecutor:
    """In-process, in-order execution (the zero-dependency default)."""

    kind = "serial"
    workers = 1

    def run(self, calls: Sequence[Call]) -> list[Any]:
        return [_invoke(call) for call in calls]

    def close(self, cancel: bool = False) -> None:
        pass


class _PoolExecutor:
    """Shared lazy-pool plumbing for the thread/process executors."""

    kind: str

    def __init__(self, workers: int):
        check_positive("workers", workers)
        self.workers = workers
        self._pool = None

    def _make_pool(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def run(self, calls: Sequence[Call]) -> list[Any]:
        if len(calls) <= 1:  # no point paying pool dispatch for one task
            return [_invoke(call) for call in calls]
        if self._pool is None:
            self._pool = self._make_pool()
        return list(self._pool.map(_invoke, calls))

    def close(self, cancel: bool = False) -> None:
        """Shut the pool down; ``cancel`` drops queued-but-unstarted work.

        ``cancel=True`` is the error-path teardown (KeyboardInterrupt in the
        middle of a sharded sweep): running tasks finish, queued tasks are
        cancelled, and no worker processes are leaked.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=cancel)
            self._pool = None

    # Live pools cannot cross pickle boundaries (e.g. a service captured in
    # a task shipped to a worker process); the copy re-creates its pool
    # lazily if it is ever used.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_pool"] = None
        return state


class ThreadExecutor(_PoolExecutor):
    """Thread-pool execution: cheap dispatch, shared in-memory caches."""

    kind = "thread"

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.workers)


class ProcessExecutor(_PoolExecutor):
    """Process-pool execution: true parallelism, requires picklable tasks."""

    kind = "process"

    def _make_pool(self):
        return ProcessPoolExecutor(max_workers=self.workers)


class AutoExecutor:
    """Per-batch thread-vs-process choice (the multi-worker ``auto`` mode).

    Codec-backed batches (every call is a :class:`~repro.engine.tasks.
    TaskSpec` evaluation) go to the process pool; everything else goes to
    the thread pool.  Both pools are lazy — a run that never submits a
    codec batch never forks a process.
    """

    kind = "auto"

    def __init__(self, workers: int):
        check_positive("workers", workers)
        self.workers = workers
        self._thread = ThreadExecutor(workers)
        self._process = ProcessExecutor(workers)

    def run(self, calls: Sequence[Call]) -> list[Any]:
        if len(calls) <= 1:
            return [_invoke(call) for call in calls]
        if all(is_codec_call(call) for call in calls):
            return self._process.run(calls)
        return self._thread.run(calls)

    def close(self, cancel: bool = False) -> None:
        self._thread.close(cancel=cancel)
        self._process.close(cancel=cancel)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_thread"] = ThreadExecutor(self.workers)
        state["_process"] = ProcessExecutor(self.workers)
        return state


def make_executor(kind: str, workers: int = 1):
    """Build an executor.

    ``"auto"`` picks serial for one worker; above one worker it returns the
    :class:`AutoExecutor`, which routes codec-backed (task-spec) batches to
    the process pool and closure batches to the thread pool.
    """
    if kind == "auto":
        return SerialExecutor() if workers <= 1 else AutoExecutor(workers)
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(workers)
    if kind == "process":
        return ProcessExecutor(workers)
    raise ValueError(
        f"unknown executor {kind!r}; expected one of {('auto',) + EXECUTOR_KINDS}"
    )
