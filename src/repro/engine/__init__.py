"""Evaluation engine: pluggable executors + persistent result caching.

The bi-level search spends essentially all of its time inside evaluations
(static backbone measurements, inner-engine runs).  This subsystem decouples
*what* is evaluated from *how*: an :class:`EvaluationService` accepts batches
of pure evaluation tasks, runs them on a pluggable executor (``serial``,
``thread`` or ``process``) and, for tasks that carry a content-addressed
cache key, persists results on disk so repeated backbones across
generations, restarts and experiment-runner memoisation are never
re-measured.

Determinism contract: every task submitted to the service must be a pure
function of its arguments (the repo's RNG discipline — content-keyed
``child_rng`` streams — guarantees this for all evaluators), and results are
always returned in submission order.  Parallel execution is therefore
bit-identical to serial execution.
"""

from repro.engine.cache import CacheKey, CacheStats, ResultCache
from repro.engine.executors import (
    AutoExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.engine.service import EvalTask, EvaluationService, ServiceStats
from repro.engine.tasks import TaskSpec, register_task, run_spec, spec_task, task_spec

__all__ = [
    "CacheKey",
    "CacheStats",
    "ResultCache",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "AutoExecutor",
    "make_executor",
    "EvalTask",
    "EvaluationService",
    "ServiceStats",
    "TaskSpec",
    "register_task",
    "run_spec",
    "spec_task",
    "task_spec",
]
