"""The backbone search space B and its genome encoding (paper Table II).

The per-stage choice tables follow the AttentiveNAS supernet the paper builds
on.  The union of width values across stem, stages and head is exactly the 16
distinct values in [16, 1984] that Table II reports; depths span {1..8},
kernels {3, 5}, expand ratios {1, 4, 5, 6}; input resolution is one of
{192, 224, 256, 288}.  The resulting cardinality exceeds the paper's quoted
2.94e11 (see :meth:`BackboneSpace.cardinality`).

A genome is a flat integer vector of choice indices:

    [resolution, stem, (width, depth, kernel, expand) x 7 stages, head]

— 31 genes.  The encoding is position-independent of actual values, so
mutation/crossover operate uniformly on index ranges.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.arch.config import STAGE_STRIDES, BackboneConfig, StageConfig
from repro.utils.rng import make_rng
from repro.utils.serialization import canonical_json


@dataclass(frozen=True)
class StageChoices:
    """Per-stage option lists."""

    widths: tuple[int, ...]
    depths: tuple[int, ...]
    kernels: tuple[int, ...]
    expands: tuple[int, ...]

    @property
    def cardinality(self) -> int:
        return len(self.widths) * len(self.depths) * len(self.kernels) * len(self.expands)


#: AttentiveNAS-A per-stage choice tables (width/depth/kernel/expand).
ATTENTIVENAS_STAGES: tuple[StageChoices, ...] = (
    StageChoices((16, 24), (1, 2), (3, 5), (1,)),
    StageChoices((24, 32), (3, 4, 5), (3, 5), (4, 5, 6)),
    StageChoices((32, 40), (3, 4, 5, 6), (3, 5), (4, 5, 6)),
    StageChoices((64, 72), (3, 4, 5, 6), (3, 5), (4, 5, 6)),
    StageChoices((112, 120, 128), (3, 4, 5, 6, 7, 8), (3, 5), (4, 5, 6)),
    StageChoices((192, 200, 208, 216), (3, 4, 5, 6, 7, 8), (3, 5), (6,)),
    StageChoices((216, 224), (1, 2), (3, 5), (6,)),
)

RESOLUTIONS: tuple[int, ...] = (192, 224, 256, 288)
STEM_WIDTHS: tuple[int, ...] = (16, 24)
HEAD_WIDTHS: tuple[int, ...] = (1792, 1984)

GENES_PER_STAGE = 4


class BackboneSpace:
    """Encodes/decodes/samples backbone genomes (the B subspace).

    Parameters
    ----------
    num_classes:
        Classifier width attached to decoded configs (100 for the CIFAR-100
        reproduction).
    stages, resolutions, stem_widths, head_widths:
        Override the choice tables (used by the miniature trainable profile
        and by tests); defaults reproduce Table II.
    """

    def __init__(
        self,
        num_classes: int = 100,
        stages: tuple[StageChoices, ...] = ATTENTIVENAS_STAGES,
        resolutions: tuple[int, ...] = RESOLUTIONS,
        stem_widths: tuple[int, ...] = STEM_WIDTHS,
        head_widths: tuple[int, ...] = HEAD_WIDTHS,
    ):
        if len(stages) != len(STAGE_STRIDES):
            raise ValueError(f"expected {len(STAGE_STRIDES)} stage tables, got {len(stages)}")
        self.num_classes = num_classes
        self.stages = stages
        self.resolutions = resolutions
        self.stem_widths = stem_widths
        self.head_widths = head_widths

    def fingerprint(self) -> str:
        """Stable content digest of the space definition.

        Two spaces with identical choice tables share a fingerprint; any
        table change yields a new one.  Persistent cache keys fold this in
        because surrogate calibration is normalised against the space's
        bounds — the same backbone scores differently under different
        spaces.
        """
        payload = canonical_json(
            {
                "num_classes": self.num_classes,
                "stages": self.stages,
                "resolutions": self.resolutions,
                "stem_widths": self.stem_widths,
                "head_widths": self.head_widths,
            }
        )
        return hashlib.blake2b(payload.encode("utf-8"), digest_size=8).hexdigest()

    # ------------------------------------------------------------- geometry
    @property
    def genome_length(self) -> int:
        return 2 + GENES_PER_STAGE * len(self.stages) + 1

    def gene_bounds(self) -> np.ndarray:
        """Number of options for each gene (exclusive upper bound, len G)."""
        bounds = [len(self.resolutions), len(self.stem_widths)]
        for stage in self.stages:
            bounds.extend(
                [len(stage.widths), len(stage.depths), len(stage.kernels), len(stage.expands)]
            )
        bounds.append(len(self.head_widths))
        return np.asarray(bounds, dtype=np.int64)

    def cardinality(self) -> int:
        """Exact number of distinct backbones in the space."""
        return int(np.prod([int(b) for b in self.gene_bounds()], dtype=object))

    def distinct_widths(self) -> tuple[int, ...]:
        """Sorted distinct width values across stem/stages/head (Table II)."""
        values = set(self.stem_widths) | set(self.head_widths)
        for stage in self.stages:
            values |= set(stage.widths)
        return tuple(sorted(values))

    def depth_values(self) -> tuple[int, ...]:
        """Sorted distinct depth options across stages."""
        values: set[int] = set()
        for stage in self.stages:
            values |= set(stage.depths)
        return tuple(sorted(values))

    # ------------------------------------------------------------- encoding
    def validate_genome(self, genome: np.ndarray) -> np.ndarray:
        genome = np.asarray(genome, dtype=np.int64)
        bounds = self.gene_bounds()
        if genome.shape != bounds.shape:
            raise ValueError(f"genome length {genome.shape} != {bounds.shape}")
        if (genome < 0).any() or (genome >= bounds).any():
            bad = np.nonzero((genome < 0) | (genome >= bounds))[0]
            raise ValueError(f"genome genes out of range at positions {bad.tolist()}")
        return genome

    def decode(self, genome: np.ndarray) -> BackboneConfig:
        """Turn a genome index vector into a concrete BackboneConfig."""
        genome = self.validate_genome(genome)
        resolution = self.resolutions[genome[0]]
        stem = self.stem_widths[genome[1]]
        stages = []
        cursor = 2
        for stage_choices, stride in zip(self.stages, STAGE_STRIDES):
            w_idx, d_idx, k_idx, e_idx = genome[cursor : cursor + GENES_PER_STAGE]
            stages.append(
                StageConfig(
                    width=stage_choices.widths[w_idx],
                    depth=stage_choices.depths[d_idx],
                    kernel=stage_choices.kernels[k_idx],
                    expand=stage_choices.expands[e_idx],
                    stride=stride,
                )
            )
            cursor += GENES_PER_STAGE
        head = self.head_widths[genome[cursor]]
        return BackboneConfig(
            resolution=resolution,
            stem_width=stem,
            stages=tuple(stages),
            head_width=head,
            num_classes=self.num_classes,
        )

    def encode(self, config: BackboneConfig) -> np.ndarray:
        """Inverse of :meth:`decode`."""
        genome = [
            self.resolutions.index(config.resolution),
            self.stem_widths.index(config.stem_width),
        ]
        for stage, choices in zip(config.stages, self.stages):
            genome.extend(
                [
                    choices.widths.index(stage.width),
                    choices.depths.index(stage.depth),
                    choices.kernels.index(stage.kernel),
                    choices.expands.index(stage.expand),
                ]
            )
        genome.append(self.head_widths.index(config.head_width))
        return np.asarray(genome, dtype=np.int64)

    # ------------------------------------------------------------- sampling
    def sample_genome(self, rng=None) -> np.ndarray:
        """Uniform random genome."""
        rng = make_rng(rng)
        bounds = self.gene_bounds()
        return (rng.random(len(bounds)) * bounds).astype(np.int64)

    def sample(self, rng=None) -> BackboneConfig:
        """Uniform random backbone."""
        return self.decode(self.sample_genome(rng))

    def min_genome(self) -> np.ndarray:
        """Genome of the most compact backbone (all-minimum choices)."""
        return np.zeros(self.genome_length, dtype=np.int64)

    def max_genome(self) -> np.ndarray:
        """Genome of the largest backbone (all-maximum choices)."""
        return self.gene_bounds() - 1


def miniature_space(num_classes: int = 8) -> BackboneSpace:
    """A tiny but structurally faithful space for the trainable pipeline.

    Same seven-stage macro structure and genome layout as the full space, but
    channel counts small enough that the numpy supernet trains in seconds.
    """
    stages = (
        StageChoices((8,), (1, 2), (3,), (1,)),
        # The kernel choice sits on an early, high-resolution stage so the
        # OFA centre-slice path is exercised where 3x3 and 5x5 genuinely
        # differ (at tiny spatial sizes they coincide).
        StageChoices((8, 12), (1, 2), (3, 5), (1, 4)),
        StageChoices((12, 16), (1, 2), (3,), (1, 4)),
        StageChoices((16, 24), (1, 2), (3,), (1, 4)),
        StageChoices((24,), (1, 2), (3,), (4,)),
        StageChoices((32,), (1, 2), (3,), (4,)),
        StageChoices((32,), (1,), (3,), (4,)),
    )
    return BackboneSpace(
        num_classes=num_classes,
        stages=stages,
        resolutions=(32,),
        stem_widths=(8,),
        head_widths=(64,),
    )
