"""Analytical cost model: MACs, parameters and memory traffic per layer.

The hardware latency/energy models (:mod:`repro.hardware`) consume this
profile through a roofline formulation, so each layer records both its
arithmetic work (MACs) and its DRAM traffic (activation + weight bytes).
MBConv layers are lowered into their expand / depthwise / (SE) / project
sub-convolutions, which have very different arithmetic intensities — that is
precisely what makes different subnets prefer different DVFS points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.config import BackboneConfig, LayerSpec

#: Bytes per element; the paper's measurements run fp32 PyTorch eager mode.
DEFAULT_BYTES_PER_ELEMENT = 4.0

#: Squeeze-excite reduction used by AttentiveNAS blocks.
SE_REDUCTION = 4


@dataclass(frozen=True)
class LayerCost:
    """Cost of one resolved layer (MBConv sub-ops already aggregated)."""

    name: str
    kind: str
    index: int
    macs: float
    params: float
    input_bytes: float
    output_bytes: float
    weight_bytes: float

    @property
    def traffic_bytes(self) -> float:
        """Approximate DRAM traffic: reads + writes + weights."""
        return self.input_bytes + self.output_bytes + self.weight_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """MACs per byte of traffic — the roofline x-axis."""
        return self.macs / max(self.traffic_bytes, 1.0)


@dataclass
class NetworkCost:
    """Ordered layer costs for one backbone, with prefix aggregation.

    ``layers`` is append-only during construction (:func:`estimate_cost`);
    the first :meth:`prefix`/:meth:`prefix_end` call freezes a position →
    layer-index map, so prefixes are O(1) slices instead of re-scans.
    """

    config_key: str
    layers: list[LayerCost] = field(default_factory=list)
    _position_index: dict[int, int] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def total_macs(self) -> float:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_params(self) -> float:
        return sum(layer.params for layer in self.layers)

    @property
    def total_traffic(self) -> float:
        return sum(layer.traffic_bytes for layer in self.layers)

    def mbconv_layers(self) -> list[LayerCost]:
        return [layer for layer in self.layers if layer.kind == "mbconv"]

    def _position_map(self) -> dict[int, int]:
        """MBConv position → index into ``layers`` (body layers only)."""
        if self._position_index is None:
            mapping: dict[int, int] = {}
            for index, layer in enumerate(self.layers):
                if layer.kind in ("head", "classifier"):
                    break
                if layer.kind == "mbconv":
                    mapping[layer.index] = index
            self._position_index = mapping
        return self._position_index

    def prefix_end(self, position: int) -> int:
        """Index into ``layers`` of MBConv layer ``position`` (its prefix is
        ``layers[: prefix_end(position) + 1]``)."""
        mapping = self._position_map()
        if position not in mapping:
            raise ValueError(f"no MBConv layer at position {position}")
        return mapping[position]

    def prefix(self, position: int) -> list[LayerCost]:
        """Layers executed up to and including MBConv layer ``position``.

        Includes the stem.  ``position`` is 1-based over MBConv layers, as in
        the paper's exit indexing; ``position == 0`` means "stem only".
        """
        if position == 0:
            return [layer for layer in self.layers if layer.kind == "stem"]
        return self.layers[: self.prefix_end(position) + 1]

    def prefix_macs(self, position: int) -> float:
        return sum(layer.macs for layer in self.prefix(position))


def _conv_cost(
    name: str,
    kind: str,
    index: int,
    in_ch: int,
    out_ch: int,
    kernel: int,
    in_res: int,
    out_res: int,
    groups: int = 1,
    bytes_per_element: float = DEFAULT_BYTES_PER_ELEMENT,
    bn: bool = True,
) -> LayerCost:
    macs = out_res * out_res * (in_ch // groups) * out_ch * kernel * kernel
    params = (in_ch // groups) * out_ch * kernel * kernel + (2 * out_ch if bn else 0)
    return LayerCost(
        name=name,
        kind=kind,
        index=index,
        macs=float(macs),
        params=float(params),
        input_bytes=float(in_res * in_res * in_ch * bytes_per_element),
        output_bytes=float(out_res * out_res * out_ch * bytes_per_element),
        weight_bytes=float(params * bytes_per_element),
    )


def _merge(name: str, kind: str, index: int, parts: list[LayerCost]) -> LayerCost:
    return LayerCost(
        name=name,
        kind=kind,
        index=index,
        macs=sum(p.macs for p in parts),
        params=sum(p.params for p in parts),
        input_bytes=sum(p.input_bytes for p in parts),
        output_bytes=sum(p.output_bytes for p in parts),
        weight_bytes=sum(p.weight_bytes for p in parts),
    )


def _mbconv_cost(
    spec: LayerSpec,
    include_se: bool,
    bytes_per_element: float,
) -> LayerCost:
    in_ch, out_ch = spec.in_channels, spec.out_channels
    mid = in_ch * spec.expand
    in_res, out_res = spec.in_resolution, spec.out_resolution
    parts: list[LayerCost] = []
    if spec.expand > 1:
        parts.append(
            _conv_cost("expand", "sub", 0, in_ch, mid, 1, in_res, in_res,
                       bytes_per_element=bytes_per_element)
        )
    parts.append(
        _conv_cost(
            "depthwise", "sub", 0, mid, mid, spec.kernel, in_res, out_res,
            groups=mid, bytes_per_element=bytes_per_element,
        )
    )
    if include_se:
        se_ch = max(1, mid // SE_REDUCTION)
        se_macs = 2.0 * mid * se_ch + mid  # squeeze FC + excite FC + rescale
        se_params = 2.0 * mid * se_ch + mid + se_ch
        parts.append(
            LayerCost(
                "se", "sub", 0, se_macs, se_params,
                input_bytes=float(mid * bytes_per_element),
                output_bytes=float(mid * bytes_per_element),
                weight_bytes=float(se_params * bytes_per_element),
            )
        )
    parts.append(
        _conv_cost("project", "sub", 0, mid, out_ch, 1, out_res, out_res,
                   bytes_per_element=bytes_per_element)
    )
    return _merge(f"mbconv{spec.index}", "mbconv", spec.index, parts)


def estimate_cost(
    config: BackboneConfig,
    include_se: bool = True,
    bytes_per_element: float = DEFAULT_BYTES_PER_ELEMENT,
) -> NetworkCost:
    """Lower a backbone config into its per-layer cost profile."""
    cost = NetworkCost(config_key=config.key)
    for spec in config.layers():
        if spec.kind == "stem":
            cost.layers.append(
                _conv_cost("stem", "stem", 0, spec.in_channels, spec.out_channels,
                           spec.kernel, spec.in_resolution, spec.out_resolution,
                           bytes_per_element=bytes_per_element)
            )
        elif spec.kind == "mbconv":
            cost.layers.append(_mbconv_cost(spec, include_se, bytes_per_element))
        elif spec.kind == "head":
            cost.layers.append(
                _conv_cost("head", "head", 0, spec.in_channels, spec.out_channels,
                           1, spec.in_resolution, spec.out_resolution,
                           bytes_per_element=bytes_per_element)
            )
        elif spec.kind == "classifier":
            macs = float(spec.in_channels * spec.out_channels)
            params = float(spec.in_channels * spec.out_channels + spec.out_channels)
            cost.layers.append(
                LayerCost(
                    "classifier", "classifier", 0, macs, params,
                    input_bytes=float(spec.in_channels * bytes_per_element),
                    output_bytes=float(spec.out_channels * bytes_per_element),
                    weight_bytes=float(params * bytes_per_element),
                )
            )
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown layer kind {spec.kind!r}")
    return cost


def exit_branch_cost(
    in_channels: int,
    resolution: int,
    num_classes: int,
    branch_width: int | None = None,
    bytes_per_element: float = DEFAULT_BYTES_PER_ELEMENT,
) -> LayerCost:
    """Cost of the paper's exit branch at a given attachment point.

    The branch is one conv-BN-activation block followed by global pooling and
    a classifier (paper §IV-B1).  ``branch_width`` defaults to the input
    channel count.
    """
    width = branch_width or in_channels
    conv = _conv_cost("exit_conv", "sub", 0, in_channels, width, 3,
                      resolution, resolution, bytes_per_element=bytes_per_element)
    fc_macs = float(width * num_classes)
    fc_params = float(width * num_classes + num_classes)
    fc = LayerCost(
        "exit_fc", "sub", 0, fc_macs, fc_params,
        input_bytes=float(width * bytes_per_element),
        output_bytes=float(num_classes * bytes_per_element),
        weight_bytes=float(fc_params * bytes_per_element),
    )
    return _merge("exit_branch", "exit", 0, [conv, fc])
