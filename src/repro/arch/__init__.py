"""Backbone architecture space B (paper Table II).

This package defines the AttentiveNAS-style once-for-all search space the
paper reuses: seven MBConv stages with per-stage width/depth/kernel/expand
choices, a stem and head width choice, and four input resolutions.  The
distinct width values across the whole network span [16, 1984] with exactly
16 distinct values, matching Table II row-for-row.

:mod:`~repro.arch.space` owns the genome encoding consumed by the outer
search engine; :mod:`~repro.arch.cost` lowers a concrete
:class:`~repro.arch.config.BackboneConfig` into a per-layer FLOPs/params/
bytes profile consumed by the hardware models.
"""

from repro.arch.config import BackboneConfig, LayerSpec, StageConfig
from repro.arch.cost import LayerCost, NetworkCost, estimate_cost, exit_branch_cost
from repro.arch.space import BackboneSpace, StageChoices

__all__ = [
    "StageConfig",
    "BackboneConfig",
    "LayerSpec",
    "BackboneSpace",
    "StageChoices",
    "LayerCost",
    "NetworkCost",
    "estimate_cost",
    "exit_branch_cost",
]
