"""Concrete backbone architecture descriptions.

A :class:`BackboneConfig` is a fully resolved subnet: stem width, seven MBConv
stages (width, depth, kernel, expand, stride), head width, input resolution.
It knows how to unroll itself into an ordered list of :class:`LayerSpec`
records — the granularity at which exits attach (paper §IV-B1: layer-wise,
after MBConv layers) and at which the cost model operates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_positive

#: Stage strides used by the AttentiveNAS macro-architecture (stem stride 2).
STAGE_STRIDES: tuple[int, ...] = (1, 2, 2, 2, 1, 2, 1)

#: Overall downsampling factor from input resolution to final feature map.
TOTAL_STRIDE: int = 32


@dataclass(frozen=True)
class StageConfig:
    """One MBConv stage: ``depth`` repeated inverted-residual layers."""

    width: int
    depth: int
    kernel: int
    expand: int
    stride: int = 1

    def __post_init__(self):
        check_positive("width", self.width)
        check_positive("depth", self.depth)
        if self.kernel not in (3, 5):
            raise ValueError(f"kernel must be 3 or 5, got {self.kernel}")
        if self.expand not in (1, 4, 5, 6):
            raise ValueError(f"expand must be in {{1, 4, 5, 6}}, got {self.expand}")


@dataclass(frozen=True)
class LayerSpec:
    """A single resolved layer in the unrolled backbone.

    ``kind`` is one of ``stem``, ``mbconv``, ``head`` (final 1x1 conv) or
    ``classifier``.  ``index`` numbers MBConv layers from 1 — the paper's
    exit positions refer to this numbering.
    """

    kind: str
    index: int
    in_channels: int
    out_channels: int
    kernel: int
    expand: int
    stride: int
    in_resolution: int
    stage: int = -1

    @property
    def out_resolution(self) -> int:
        if self.kind == "classifier":
            return 1
        return max(1, self.in_resolution // self.stride)


@dataclass(frozen=True)
class BackboneConfig:
    """A fully specified backbone subnet (one point of the B space)."""

    resolution: int
    stem_width: int
    stages: tuple[StageConfig, ...]
    head_width: int
    num_classes: int = 100

    def __post_init__(self):
        if len(self.stages) != len(STAGE_STRIDES):
            raise ValueError(
                f"expected {len(STAGE_STRIDES)} stages, got {len(self.stages)}"
            )
        for i, (stage, stride) in enumerate(zip(self.stages, STAGE_STRIDES)):
            if stage.stride != stride:
                raise ValueError(
                    f"stage {i} must have stride {stride} (macro architecture), got {stage.stride}"
                )

    # ------------------------------------------------------------ structure
    @property
    def total_mbconv_layers(self) -> int:
        """Sum of stage depths — the paper's Σ l_i."""
        return sum(s.depth for s in self.stages)

    @property
    def depths(self) -> tuple[int, ...]:
        return tuple(s.depth for s in self.stages)

    def layers(self) -> list[LayerSpec]:
        """Unroll into the ordered layer sequence (stem, MBConvs, head, cls)."""
        specs: list[LayerSpec] = []
        res = self.resolution
        specs.append(
            LayerSpec("stem", 0, 3, self.stem_width, 3, 1, 2, res)
        )
        res = res // 2
        channels = self.stem_width
        mb_index = 0
        for stage_idx, stage in enumerate(self.stages):
            for layer_in_stage in range(stage.depth):
                stride = stage.stride if layer_in_stage == 0 else 1
                mb_index += 1
                specs.append(
                    LayerSpec(
                        "mbconv",
                        mb_index,
                        channels,
                        stage.width,
                        stage.kernel,
                        stage.expand,
                        stride,
                        res,
                        stage=stage_idx,
                    )
                )
                res = max(1, res // stride)
                channels = stage.width
        specs.append(LayerSpec("head", 0, channels, self.head_width, 1, 1, 1, res))
        specs.append(
            LayerSpec("classifier", 0, self.head_width, self.num_classes, 1, 1, 1, res)
        )
        return specs

    def channels_at_layer(self, position: int) -> int:
        """Output channels of MBConv layer ``position`` (1-based)."""
        if not 1 <= position <= self.total_mbconv_layers:
            raise ValueError(
                f"position must be in [1, {self.total_mbconv_layers}], got {position}"
            )
        for spec in self.layers():
            if spec.kind == "mbconv" and spec.index == position:
                return spec.out_channels
        raise AssertionError("unreachable")

    def resolution_at_layer(self, position: int) -> int:
        """Spatial resolution of the feature map after MBConv ``position``."""
        for spec in self.layers():
            if spec.kind == "mbconv" and spec.index == position:
                return spec.out_resolution
        raise ValueError(f"no MBConv layer at position {position}")

    def describe(self) -> str:
        """One-line human summary."""
        stage_str = "-".join(
            f"w{s.width}d{s.depth}k{s.kernel}e{s.expand}" for s in self.stages
        )
        return (
            f"res{self.resolution}/stem{self.stem_width}/{stage_str}/head{self.head_width}"
        )

    @property
    def key(self) -> str:
        """Stable identity string (used for caching evaluations)."""
        return self.describe()
