"""Static (S) and dynamic (D) evaluation of candidate designs.

:class:`~repro.eval.static.StaticEvaluator` produces the paper's S(b) vector
(eq. 3): accuracy, latency and energy of a backbone as a standalone model at
default hardware settings.

:class:`~repro.eval.dynamic.DynamicEvaluator` produces the D(x, f | b)
evaluations (eqs. 5–7): per-exit N_i, ideal-mapping usage, expected dynamic
energy/latency of the multi-exit network at a DVFS setting, the per-exit
scores with the dissimilarity regulariser, and the aggregate D score.
"""

from repro.eval.dynamic import DynamicEvaluation, DynamicEvaluator
from repro.eval.static import StaticEvaluation, StaticEvaluator

__all__ = [
    "StaticEvaluation",
    "StaticEvaluator",
    "DynamicEvaluation",
    "DynamicEvaluator",
]
