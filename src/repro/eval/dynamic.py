"""Dynamic evaluation D(x, f | b): paper eqs. 5–7.

Given a backbone, an exit placement x and a DVFS setting f, this evaluator
computes:

* per-exit N_i and ideal-mapping usage fractions (from the exit oracle);
* the early-exit execution costs E_{x_i,f}, L_{x_i,f} — the backbone prefix
  up to the exit *plus every earlier exit branch* (rejected inputs pay for
  the branches they traversed);
* expected dynamic energy/latency of the DyNN under ideal mapping, and the
  corresponding gains over the backbone at default clocks;
* per-exit scores (eq. 6) and the aggregate D (eq. 5).

Score semantics: eq. 6 multiplies N_i by "normalized dynamic energy ...
relative to the backbone" terms.  Since the engines *maximise* D and the
paper's Fig. 5 reports energy-efficiency *gains*, the normalised terms are
implemented as savings, ``1 - E_{x_i,f}/E_b`` (clamped at 0) — an exit only
scores when it actually saves energy/latency.  Set
``literal_ratios=True`` to use the raw ratios instead (paper-literal
reading; documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accuracy.exit_model import BackboneExitOracle
from repro.arch.config import BackboneConfig
from repro.arch.cost import LayerCost, NetworkCost, exit_branch_cost
from repro.exits.evaluation import ExitEvaluation
from repro.exits.placement import MIN_EXIT_POSITION, ExitPlacement
from repro.hardware.cost_table import CostTableBank
from repro.hardware.dvfs import DvfsSetting
from repro.hardware.energy import EnergyModel
from repro.utils.validation import check_nonneg


@dataclass(frozen=True)
class DynamicEvaluation:
    """Full D-side evaluation of one (x, f | b) candidate."""

    placement: ExitPlacement
    setting: DvfsSetting
    exit_stats: ExitEvaluation
    exit_energy_j: np.ndarray  # E_{x_i,f} per exit
    exit_latency_s: np.ndarray  # L_{x_i,f} per exit
    dynamic_energy_j: float  # expected energy under ideal mapping
    dynamic_latency_s: float
    energy_gain: float  # 1 - E_dyn / E_b(default)
    latency_gain: float
    scores: np.ndarray  # eq. 6 per exit
    d_score: float  # eq. 5 aggregate

    @property
    def mean_n_i(self) -> float:
        return self.exit_stats.mean_n_i

    @property
    def dynamic_accuracy(self) -> float:
        """Union accuracy (fraction) under ideal mapping."""
        return self.exit_stats.dynamic_accuracy


@dataclass
class DynamicEvaluator:
    """Evaluates D(x, f | b) for one backbone on one platform.

    Parameters
    ----------
    config:
        The backbone b'.
    cost:
        Its per-layer cost profile.
    oracle:
        Per-backbone exit-correctness oracle (surrogate or trained).
    energy_model:
        Platform energy model.
    baseline_energy_j, baseline_latency_s:
        E_b, L_b — the backbone at *default* clocks (from the static
        evaluation), the normalisers of eq. 6.
    gamma:
        The dissimilarity trade-off exponent γ (0 disables the regulariser —
        the paper's Fig. 7 ablation).
    literal_ratios:
        Use eq. 6's ratios verbatim instead of savings (see module note).
    use_tables:
        Evaluate through the precomputed
        :class:`~repro.hardware.cost_table.CostTableBank` (the default).
        ``False`` selects the pre-cost-table reference loop — kept for the
        dynamic-eval bench's "before" baseline and the bit-identity property
        tests; both paths produce identical bits.
    """

    config: BackboneConfig
    cost: NetworkCost
    oracle: BackboneExitOracle
    energy_model: EnergyModel
    baseline_energy_j: float
    baseline_latency_s: float
    gamma: float = 1.0
    literal_ratios: bool = False
    use_tables: bool = True
    _branch_cache: dict[int, LayerCost] = field(default_factory=dict, repr=False)
    _eval_cache: dict[tuple, DynamicEvaluation] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        check_nonneg("gamma", self.gamma)
        self._channels = {
            spec.index: (spec.out_channels, spec.out_resolution)
            for spec in self.config.layers()
            if spec.kind == "mbconv"
        }
        # One bank per evaluator = one bank per inner run: every placement
        # evaluated at a seen DVFS setting reuses the same cost table.  The
        # branch provider hands each new table every legal exit branch, so a
        # fresh setting costs exactly one batched kernel pass.
        self.bank = CostTableBank(
            self.energy_model, self.cost, branch_provider=self._branch_items
        )

    def _branch_items(self) -> list[tuple[int, LayerCost]]:
        """(position, branch cost) for every legal exit position."""
        return [
            (p, self.branch_cost(p))
            for p in sorted(self._channels)
            if p >= MIN_EXIT_POSITION
        ]

    def branch_cost(self, position: int) -> LayerCost:
        """Cost profile of the exit branch attached at ``position``."""
        if position not in self._branch_cache:
            channels, resolution = self._channels[position]
            self._branch_cache[position] = exit_branch_cost(
                channels, resolution, self.config.num_classes
            )
        return self._branch_cache[position]

    def _exit_path_report(self, positions: tuple[int, ...], upto: int, setting: DvfsSetting):
        """Reference energy report of executing to exit index ``upto``.

        Pre-cost-table implementation (per-layer Python loop), retained as
        the bit-identity oracle for the vectorized kernel and as the
        dynamic-eval bench's "before" baseline.
        """
        layers = list(self.cost.prefix(positions[upto]))
        layers.extend(self.branch_cost(p) for p in positions[: upto + 1])
        return self.energy_model.composite_report_reference(layers, setting)

    def _full_path_report(self, positions: tuple[int, ...], setting: DvfsSetting):
        """Reference energy report of the full network plus all branches."""
        layers = list(self.cost.layers)
        layers.extend(self.branch_cost(p) for p in positions)
        return self.energy_model.composite_report_reference(layers, setting)

    def _path_costs(self, positions: tuple[int, ...], setting: DvfsSetting):
        """Vectorized per-exit and full-path costs from the table bank.

        O(exits) array work: cumulative-sum gathers at the prefix indices
        plus one cached scalar bundle per traversed branch — no per-layer
        iteration at all once the setting's table exists.  A table is built
        with every legal exit branch's scalars in its single batched pass,
        so later placements at the setting never re-enter the timing kernel.
        """
        table = self.bank.table(setting)
        branches = [self.branch_cost(p) for p in positions]
        exit_energy, exit_latency = table.exit_path_costs(positions, branches)
        full_energy, full_latency = table.full_path_cost(positions, branches)
        return exit_energy, exit_latency, full_energy, full_latency

    def evaluate(self, placement: ExitPlacement, setting: DvfsSetting) -> DynamicEvaluation:
        """Full dynamic evaluation of (x, f | b) (cached)."""
        key = (placement.key, setting.core_ghz, setting.emc_ghz)
        if key in self._eval_cache:
            return self._eval_cache[key]

        stats = self.oracle.evaluate_placement(placement)
        positions = placement.positions
        if self.use_tables:
            exit_energy, exit_latency, full_energy, full_latency = self._path_costs(
                positions, setting
            )
        else:
            exit_reports = [
                self._exit_path_report(positions, i, setting)
                for i in range(len(positions))
            ]
            full_report = self._full_path_report(positions, setting)
            exit_energy = np.asarray([r.energy_j for r in exit_reports])
            exit_latency = np.asarray([r.latency_s for r in exit_reports])
            full_energy = full_report.energy_j
            full_latency = full_report.latency_s

        usage = stats.usage
        dynamic_energy = float(usage[:-1] @ exit_energy + usage[-1] * full_energy)
        dynamic_latency = float(usage[:-1] @ exit_latency + usage[-1] * full_latency)

        energy_ratio = exit_energy / self.baseline_energy_j
        latency_ratio = exit_latency / self.baseline_latency_s
        if self.literal_ratios:
            energy_term = energy_ratio
            latency_term = latency_ratio
        else:
            energy_term = np.clip(1.0 - energy_ratio, 0.0, None)
            latency_term = np.clip(1.0 - latency_ratio, 0.0, None)
        dissim = stats.dissimilarity
        scores = stats.n_i * energy_term * latency_term * dissim**self.gamma

        evaluation = DynamicEvaluation(
            placement=placement,
            setting=setting,
            exit_stats=stats,
            exit_energy_j=exit_energy,
            exit_latency_s=exit_latency,
            dynamic_energy_j=dynamic_energy,
            dynamic_latency_s=dynamic_latency,
            energy_gain=float(1.0 - dynamic_energy / self.baseline_energy_j),
            latency_gain=float(1.0 - dynamic_latency / self.baseline_latency_s),
            scores=scores,
            d_score=float(scores.mean()),
        )
        self._eval_cache[key] = evaluation
        return evaluation

    def objectives(self, evaluation: DynamicEvaluation) -> tuple[float, float, float]:
        """IOE maximisation vector for one evaluation (paper eqs. 5-6).

        All three components are *per-exit proxy averages*, exactly as the
        paper's D formulation: the accuracy side folds the dissimilarity
        regulariser in (mean of N_i * dissim_i^gamma), and the energy/
        latency sides average the per-exit normalised savings.  None of them
        is an ideal-mapping aggregate — which is precisely why, without the
        dissimilarity term, the search degenerates to clustered exits (the
        proxies do not punish redundancy; the paper's Fig. 7 ablation shows
        the same failure).  Deployment metrics (``energy_gain`` etc.) are
        still the physical ideal-mapping aggregates.
        """
        stats = evaluation.exit_stats
        dissim = stats.dissimilarity**self.gamma
        d_acc = float(np.mean(stats.n_i * dissim))
        energy_ratio = evaluation.exit_energy_j / self.baseline_energy_j
        latency_ratio = evaluation.exit_latency_s / self.baseline_latency_s
        if self.literal_ratios:
            d_energy = float(np.mean(energy_ratio))
            d_latency = float(np.mean(latency_ratio))
        else:
            d_energy = float(np.mean(np.clip(1.0 - energy_ratio, 0.0, None)))
            d_latency = float(np.mean(np.clip(1.0 - latency_ratio, 0.0, None)))
        return (d_acc, d_energy, d_latency)
