"""Dynamic evaluation D(x, f | b): paper eqs. 5–7.

Given a backbone, an exit placement x and a DVFS setting f, this evaluator
computes:

* per-exit N_i and ideal-mapping usage fractions (from the exit oracle);
* the early-exit execution costs E_{x_i,f}, L_{x_i,f} — the backbone prefix
  up to the exit *plus every earlier exit branch* (rejected inputs pay for
  the branches they traversed);
* expected dynamic energy/latency of the DyNN under ideal mapping, and the
  corresponding gains over the backbone at default clocks;
* per-exit scores (eq. 6) and the aggregate D (eq. 5).

Score semantics: eq. 6 multiplies N_i by "normalized dynamic energy ...
relative to the backbone" terms.  Since the engines *maximise* D and the
paper's Fig. 5 reports energy-efficiency *gains*, the normalised terms are
implemented as savings, ``1 - E_{x_i,f}/E_b`` (clamped at 0) — an exit only
scores when it actually saves energy/latency.  Set
``literal_ratios=True`` to use the raw ratios instead (paper-literal
reading; documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accuracy.exit_model import BackboneExitOracle
from repro.arch.config import BackboneConfig
from repro.arch.cost import LayerCost, NetworkCost, exit_branch_cost
from repro.exits.evaluation import ExitEvaluation, PopulationExitStats
from repro.exits.placement import MIN_EXIT_POSITION, ExitPlacement
from repro.hardware.cost_table import CostTableBank
from repro.hardware.dvfs import DvfsSetting
from repro.hardware.energy import EnergyModel
from repro.hardware.population_kernel import PopulationKernel, PopulationPathCosts
from repro.obs import trace
from repro.utils.validation import check_nonneg


@dataclass(frozen=True)
class DynamicEvaluation:
    """Full D-side evaluation of one (x, f | b) candidate."""

    placement: ExitPlacement
    setting: DvfsSetting
    exit_stats: ExitEvaluation
    exit_energy_j: np.ndarray  # E_{x_i,f} per exit
    exit_latency_s: np.ndarray  # L_{x_i,f} per exit
    dynamic_energy_j: float  # expected energy under ideal mapping
    dynamic_latency_s: float
    energy_gain: float  # 1 - E_dyn / E_b(default)
    latency_gain: float
    scores: np.ndarray  # eq. 6 per exit
    d_score: float  # eq. 5 aggregate

    @property
    def mean_n_i(self) -> float:
        return self.exit_stats.mean_n_i

    @property
    def dynamic_accuracy(self) -> float:
        """Union accuracy (fraction) under ideal mapping."""
        return self.exit_stats.dynamic_accuracy


@dataclass
class DynamicEvaluator:
    """Evaluates D(x, f | b) for one backbone on one platform.

    Parameters
    ----------
    config:
        The backbone b'.
    cost:
        Its per-layer cost profile.
    oracle:
        Per-backbone exit-correctness oracle (surrogate or trained).
    energy_model:
        Platform energy model.
    baseline_energy_j, baseline_latency_s:
        E_b, L_b — the backbone at *default* clocks (from the static
        evaluation), the normalisers of eq. 6.
    gamma:
        The dissimilarity trade-off exponent γ (0 disables the regulariser —
        the paper's Fig. 7 ablation).
    literal_ratios:
        Use eq. 6's ratios verbatim instead of savings (see module note).
    use_tables:
        Evaluate through the precomputed
        :class:`~repro.hardware.cost_table.CostTableBank` (the default).
        ``False`` selects the pre-cost-table reference loop — kept for the
        dynamic-eval bench's "before" baseline and the bit-identity property
        tests; both paths produce identical bits.
    use_population_kernel:
        Route :meth:`evaluate_population` through the stacked
        :class:`~repro.hardware.population_kernel.PopulationKernel` (the
        default; requires ``use_tables``).  ``False`` keeps the per-placement
        :meth:`evaluate` loop — the population bench's "before" comparator
        and the bit-identity reference; both paths produce identical bits.
    use_fused_objectives:
        Compute the IOE objective vectors for a population inside the fused
        finalisation (stacked guarded reductions, memoised per (placement,
        setting)) so :meth:`objectives` is a dict read on the search hot
        path.  ``False`` keeps the per-evaluation scalar computation — the
        bench's "before" comparator; both paths produce identical bits.
    """

    config: BackboneConfig
    cost: NetworkCost
    oracle: BackboneExitOracle
    energy_model: EnergyModel
    baseline_energy_j: float
    baseline_latency_s: float
    gamma: float = 1.0
    literal_ratios: bool = False
    use_tables: bool = True
    use_population_kernel: bool = True
    use_fused_objectives: bool = True
    _branch_cache: dict[int, LayerCost] = field(default_factory=dict, repr=False)
    _eval_cache: dict[tuple, DynamicEvaluation] = field(default_factory=dict, repr=False)
    _objectives_cache: dict[tuple, tuple[float, float, float]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self):
        check_nonneg("gamma", self.gamma)
        self._channels = {
            spec.index: (spec.out_channels, spec.out_resolution)
            for spec in self.config.layers()
            if spec.kind == "mbconv"
        }
        # One bank per evaluator = one bank per inner run: every placement
        # evaluated at a seen DVFS setting reuses the same cost table.  The
        # branch provider hands each new table every legal exit branch, so a
        # fresh setting costs exactly one batched kernel pass.
        self.bank = CostTableBank(
            self.energy_model, self.cost, branch_provider=self._branch_items
        )
        self.population = PopulationKernel(
            self.bank, self.branch_cost, self.config.total_mbconv_layers
        )

    def _branch_items(self) -> list[tuple[int, LayerCost]]:
        """(position, branch cost) for every legal exit position."""
        return [
            (p, self.branch_cost(p))
            for p in sorted(self._channels)
            if p >= MIN_EXIT_POSITION
        ]

    def branch_cost(self, position: int) -> LayerCost:
        """Cost profile of the exit branch attached at ``position``."""
        if position not in self._branch_cache:
            channels, resolution = self._channels[position]
            self._branch_cache[position] = exit_branch_cost(
                channels, resolution, self.config.num_classes
            )
        return self._branch_cache[position]

    def _exit_path_report(self, positions: tuple[int, ...], upto: int, setting: DvfsSetting):
        """Reference energy report of executing to exit index ``upto``.

        Pre-cost-table implementation (per-layer Python loop), retained as
        the bit-identity oracle for the vectorized kernel and as the
        dynamic-eval bench's "before" baseline.
        """
        layers = list(self.cost.prefix(positions[upto]))
        layers.extend(self.branch_cost(p) for p in positions[: upto + 1])
        return self.energy_model.composite_report_reference(layers, setting)

    def _full_path_report(self, positions: tuple[int, ...], setting: DvfsSetting):
        """Reference energy report of the full network plus all branches."""
        layers = list(self.cost.layers)
        layers.extend(self.branch_cost(p) for p in positions)
        return self.energy_model.composite_report_reference(layers, setting)

    def _path_costs(self, positions: tuple[int, ...], setting: DvfsSetting):
        """Vectorized per-exit and full-path costs from the table bank.

        O(exits) array work: cumulative-sum gathers at the prefix indices
        plus one cached scalar bundle per traversed branch — no per-layer
        iteration at all once the setting's table exists.  A table is built
        with every legal exit branch's scalars in its single batched pass,
        so later placements at the setting never re-enter the timing kernel.
        """
        table = self.bank.table(setting)
        branches = [self.branch_cost(p) for p in positions]
        exit_energy, exit_latency = table.exit_path_costs(positions, branches)
        full_energy, full_latency = table.full_path_cost(positions, branches)
        return exit_energy, exit_latency, full_energy, full_latency

    def evaluate(self, placement: ExitPlacement, setting: DvfsSetting) -> DynamicEvaluation:
        """Full dynamic evaluation of (x, f | b) (cached)."""
        key = (placement.key, setting.core_ghz, setting.emc_ghz)
        if key in self._eval_cache:
            trace.count("dyneval.memo_hits")
            return self._eval_cache[key]
        trace.count("dyneval.evaluations")
        trace.count(
            "dyneval.table_path" if self.use_tables else "dyneval.reference_path"
        )

        stats = self.oracle.evaluate_placement(placement)
        positions = placement.positions
        if self.use_tables:
            exit_energy, exit_latency, full_energy, full_latency = self._path_costs(
                positions, setting
            )
        else:
            exit_reports = [
                self._exit_path_report(positions, i, setting)
                for i in range(len(positions))
            ]
            full_report = self._full_path_report(positions, setting)
            exit_energy = np.asarray([r.energy_j for r in exit_reports])
            exit_latency = np.asarray([r.latency_s for r in exit_reports])
            full_energy = full_report.energy_j
            full_latency = full_report.latency_s

        usage = stats.usage
        dynamic_energy = float(usage[:-1] @ exit_energy + usage[-1] * full_energy)
        dynamic_latency = float(usage[:-1] @ exit_latency + usage[-1] * full_latency)

        energy_ratio = exit_energy / self.baseline_energy_j
        latency_ratio = exit_latency / self.baseline_latency_s
        if self.literal_ratios:
            energy_term = energy_ratio
            latency_term = latency_ratio
        else:
            energy_term = np.clip(1.0 - energy_ratio, 0.0, None)
            latency_term = np.clip(1.0 - latency_ratio, 0.0, None)
        dissim = stats.dissimilarity
        scores = stats.n_i * energy_term * latency_term * dissim**self.gamma

        evaluation = DynamicEvaluation(
            placement=placement,
            setting=setting,
            exit_stats=stats,
            exit_energy_j=exit_energy,
            exit_latency_s=exit_latency,
            dynamic_energy_j=dynamic_energy,
            dynamic_latency_s=dynamic_latency,
            energy_gain=float(1.0 - dynamic_energy / self.baseline_energy_j),
            latency_gain=float(1.0 - dynamic_latency / self.baseline_latency_s),
            scores=scores,
            d_score=float(scores.mean()),
        )
        self._eval_cache[key] = evaluation
        return evaluation

    def evaluate_population(
        self, placements: list[ExitPlacement], setting: DvfsSetting
    ) -> list[DynamicEvaluation]:
        """Evaluate N placements at one setting as one stacked kernel call.

        Bit-identical to ``[self.evaluate(p, setting) for p in placements]``
        (asserted by the population property tests and the bench): the
        stacked kernel performs exactly the per-placement elementwise work,
        and every reduction (usage-weighted dots, score means) runs per row
        on operand slices identical to the per-call arrays.  Shares
        :meth:`evaluate`'s cache — duplicates and previously seen
        (placement, setting) pairs cost a dict read, mixed call patterns
        stay coherent — and falls back to the per-placement loop when either
        kernel flag is off.
        """
        placements = list(placements)
        if not (self.use_tables and self.use_population_kernel):
            trace.count("dyneval.population_fallbacks")
            trace.count("dyneval.population_fallback_rows", len(placements))
            return [self.evaluate(p, setting) for p in placements]
        trace.count("dyneval.population_calls")
        trace.count("dyneval.population_rows", len(placements))
        cache = self._eval_cache
        core, emc = setting.core_ghz, setting.emc_ghz
        keys = [(p.key, core, emc) for p in placements]
        pending: dict[tuple, ExitPlacement] = {}
        for key, placement in zip(keys, placements):
            if key not in cache and key not in pending:
                pending[key] = placement
        if pending:
            batch = list(pending.values())
            fused = self.population.fused_batch(batch, setting, self.oracle)
            for key, evaluation in zip(
                pending,
                self._finalize_population(batch, fused.stats, fused.costs, setting),
            ):
                cache[key] = evaluation
        return [cache[key] for key in keys]

    def evaluate_generation(
        self, decoded: list[tuple[ExitPlacement, DvfsSetting]]
    ) -> list[DynamicEvaluation]:
        """Evaluate a mixed-setting generation, grouped by DVFS setting.

        One fused accuracy+cost population call per distinct setting
        (order-preserving results) — the entry point the NSGA-II/IOE batch
        hook, random search and the ``population-eval`` task kind all lower
        to.  Bit-identical to evaluating each (placement, setting) pair
        individually, since :meth:`evaluate_population` is.
        """
        groups: dict[tuple[float, float], list[int]] = {}
        for index, (_, setting) in enumerate(decoded):
            groups.setdefault((setting.core_ghz, setting.emc_ghz), []).append(index)
        trace.count("dyneval.generation_calls")
        trace.count("dyneval.generation_rows", len(decoded))
        trace.count("dyneval.generation_groups", len(groups))
        results: list[DynamicEvaluation | None] = [None] * len(decoded)
        for indices in groups.values():
            setting = decoded[indices[0]][1]
            evaluations = self.evaluate_population(
                [decoded[i][0] for i in indices], setting
            )
            for i, evaluation in zip(indices, evaluations):
                results[i] = evaluation
        return results

    def _finalize_population(
        self,
        placements: list[ExitPlacement],
        stats: PopulationExitStats,
        costs: PopulationPathCosts,
        setting: DvfsSetting,
    ) -> list[DynamicEvaluation]:
        """Stacked eq. 5–7 tail: ratios, clamps and scores as fixed-shape
        matrix ops; reductions per row (see :meth:`evaluate_population`).

        The accuracy matrices arrive pre-stacked from the oracle's
        population kernel — fused with the cost matrices here — and with
        ``use_fused_objectives`` the per-row IOE objective vectors are
        computed in the same pass (guarded stacked reductions) and memoised
        so :meth:`objectives` never recomputes them."""
        exit_energy = costs.exit_energy_j
        exit_latency = costs.exit_latency_s
        energy_ratio = exit_energy / self.baseline_energy_j
        latency_ratio = exit_latency / self.baseline_latency_s
        if self.literal_ratios:
            energy_term = energy_ratio
            latency_term = latency_ratio
        else:
            energy_term = np.clip(1.0 - energy_ratio, 0.0, None)
            latency_term = np.clip(1.0 - latency_ratio, 0.0, None)
        n_i = stats.n_i
        dissim_pow = stats.dissimilarity**self.gamma
        scores = n_i * energy_term * latency_term * dissim_pow

        widths = costs.widths.tolist()
        full_energies = costs.full_energy_j.tolist()
        full_latencies = costs.full_latency_s.tolist()
        baseline_energy = self.baseline_energy_j
        baseline_latency = self.baseline_latency_s
        # d_score = scores[:width].mean() per row.  Below numpy's pairwise
        # 8-element unroll every row reduction is the strict left-to-right
        # sum ``mean`` performs, pad columns are exactly ±0.0 (n_i pads are
        # zero), and trailing ±0.0 adds are bitwise no-ops on the
        # non-negative scores — so one stacked reduction divided by the true
        # widths gives ``mean``'s bits for the whole batch.  At eight or
        # more columns the padded and unpadded accumulation orders can
        # differ, so fall back to per-row sums of the exact slices.
        if scores.shape[1] < 8:
            d_scores = (np.add.reduce(scores, axis=1) / costs.widths).tolist()
        else:
            d_scores = [
                float(np.add.reduce(scores[row, :widths[row]]) / widths[row])
                for row in range(len(widths))
            ]
        objective_rows = (
            self._fused_objectives(n_i, dissim_pow, energy_term, latency_term, costs)
            if self.use_fused_objectives
            else None
        )
        # One gather turns the padded matrices into flat concatenations of
        # the valid row prefixes; each evaluation's arrays are contiguous
        # slices of those buffers (read-only by convention, like
        # ``ExitEvaluation.dissimilarity``) — same values as per-row copies
        # without N allocations.  The frozen record is built via __new__ +
        # __dict__ (frozen dataclasses pay one guarded ``object.__setattr__``
        # per field in ``__init__``; this builds the identical object).
        valid = np.arange(scores.shape[1]) < costs.widths[:, None]
        flat_energy = exit_energy[valid]
        flat_latency = exit_latency[valid]
        flat_scores = scores[valid]
        bounds = np.concatenate(([0], np.cumsum(costs.widths))).tolist()
        new = DynamicEvaluation.__new__
        cls = DynamicEvaluation
        core, emc = setting.core_ghz, setting.emc_ghz
        objectives_cache = self._objectives_cache
        evaluations = []
        for row, (placement, exit_stats) in enumerate(
            zip(placements, stats.evaluations)
        ):
            start = bounds[row]
            end = bounds[row + 1]
            row_energy = flat_energy[start:end]
            row_latency = flat_latency[start:end]
            full_energy = full_energies[row]
            full_latency = full_latencies[row]
            head, tail = exit_stats.usage_split
            dynamic_energy = float(head @ row_energy + tail * full_energy)
            dynamic_latency = float(head @ row_latency + tail * full_latency)
            evaluation = new(cls)
            evaluation.__dict__.update({
                "placement": placement,
                "setting": setting,
                "exit_stats": exit_stats,
                "exit_energy_j": row_energy,
                "exit_latency_s": row_latency,
                "dynamic_energy_j": dynamic_energy,
                "dynamic_latency_s": dynamic_latency,
                "energy_gain": 1.0 - dynamic_energy / baseline_energy,
                "latency_gain": 1.0 - dynamic_latency / baseline_latency,
                "scores": flat_scores[start:end],
                "d_score": d_scores[row],
            })
            evaluations.append(evaluation)
            if objective_rows is not None:
                objectives_cache[(placement.key, core, emc)] = objective_rows[row]
        return evaluations

    def _fused_objectives(
        self,
        n_i: np.ndarray,
        dissim_pow: np.ndarray,
        energy_term: np.ndarray,
        latency_term: np.ndarray,
        costs: PopulationPathCosts,
    ) -> list[tuple[float, float, float]]:
        """Per-row IOE objective vectors as stacked guarded reductions.

        Each component is a per-exit mean over the row's valid slice (see
        :meth:`objectives`).  The accuracy operand's pads are exactly +0.0
        (``n_i`` pads are zero), but the energy/latency savings terms are
        ``clip(1 - 0/E_b) = 1.0`` at pad columns — the cost kernel's padded
        exit costs gather 0 — so those operands are explicitly zeroed by
        the width mask before reducing.  The same < 8-column guard as the
        d_score reduction keeps every quotient bit-identical to
        ``np.mean`` over the exact row slice.
        """
        widths = costs.widths
        acc = n_i * dissim_pow
        valid = np.arange(acc.shape[1]) < widths[:, None]
        energy_masked = np.where(valid, energy_term, 0.0)
        latency_masked = np.where(valid, latency_term, 0.0)
        if acc.shape[1] < 8:
            d_acc = (np.add.reduce(acc, axis=1) / widths).tolist()
            d_energy = (np.add.reduce(energy_masked, axis=1) / widths).tolist()
            d_latency = (np.add.reduce(latency_masked, axis=1) / widths).tolist()
        else:
            width_list = widths.tolist()
            d_acc = [
                float(np.add.reduce(acc[row, :w]) / w)
                for row, w in enumerate(width_list)
            ]
            d_energy = [
                float(np.add.reduce(energy_masked[row, :w]) / w)
                for row, w in enumerate(width_list)
            ]
            d_latency = [
                float(np.add.reduce(latency_masked[row, :w]) / w)
                for row, w in enumerate(width_list)
            ]
        return list(zip(d_acc, d_energy, d_latency))

    def path_costs(self, positions: tuple[int, ...], setting: DvfsSetting):
        """Public ``(exit_energy, exit_latency, full_energy, full_latency)``.

        Routed through the active kernel: the cost-table gathers when
        ``use_tables`` (the runtime planners' fast path) or the reference
        per-layer loop otherwise — identical bits either way.
        """
        positions = tuple(positions)
        if self.use_tables:
            return self._path_costs(positions, setting)
        exit_reports = [
            self._exit_path_report(positions, i, setting)
            for i in range(len(positions))
        ]
        full_report = self._full_path_report(positions, setting)
        return (
            np.asarray([r.energy_j for r in exit_reports]),
            np.asarray([r.latency_s for r in exit_reports]),
            full_report.energy_j,
            full_report.latency_s,
        )

    def full_path_cost(
        self, positions: tuple[int, ...], setting: DvfsSetting
    ) -> tuple[float, float]:
        """``(energy_j, latency_s)`` of the full network plus all branches."""
        positions = tuple(positions)
        if self.use_tables:
            table = self.bank.table(setting)
            branches = [self.branch_cost(p) for p in positions]
            return table.full_path_cost(positions, branches)
        report = self._full_path_report(positions, setting)
        return report.energy_j, report.latency_s

    def objectives(self, evaluation: DynamicEvaluation) -> tuple[float, float, float]:
        """IOE maximisation vector for one evaluation (paper eqs. 5-6).

        All three components are *per-exit proxy averages*, exactly as the
        paper's D formulation: the accuracy side folds the dissimilarity
        regulariser in (mean of N_i * dissim_i^gamma), and the energy/
        latency sides average the per-exit normalised savings.  None of them
        is an ideal-mapping aggregate — which is precisely why, without the
        dissimilarity term, the search degenerates to clustered exits (the
        proxies do not punish redundancy; the paper's Fig. 7 ablation shows
        the same failure).  Deployment metrics (``energy_gain`` etc.) are
        still the physical ideal-mapping aggregates.

        With ``use_fused_objectives`` the vector was already computed (and
        memoised) inside the fused population finalisation, so the search
        hot path lands on a dict read; the scalar computation below serves
        cold keys (per-placement :meth:`evaluate` callers, fallback modes)
        and is the bit-identity reference for the fused reductions.
        """
        fused = self.use_fused_objectives
        if fused:
            key = (
                evaluation.placement.key,
                evaluation.setting.core_ghz,
                evaluation.setting.emc_ghz,
            )
            cached = self._objectives_cache.get(key)
            if cached is not None:
                return cached
        stats = evaluation.exit_stats
        dissim = stats.dissimilarity**self.gamma
        d_acc = float(np.mean(stats.n_i * dissim))
        energy_ratio = evaluation.exit_energy_j / self.baseline_energy_j
        latency_ratio = evaluation.exit_latency_s / self.baseline_latency_s
        if self.literal_ratios:
            d_energy = float(np.mean(energy_ratio))
            d_latency = float(np.mean(latency_ratio))
        else:
            d_energy = float(np.mean(np.clip(1.0 - energy_ratio, 0.0, None)))
            d_latency = float(np.mean(np.clip(1.0 - latency_ratio, 0.0, None)))
        result = (d_acc, d_energy, d_latency)
        if fused:
            self._objectives_cache[key] = result
        return result
