"""Static backbone evaluation: the S(b) fitness vector of paper eq. 3.

Accuracy comes from the calibrated surrogate; latency and energy come from
the simulated hardware-in-the-loop measurement at the platform's *default*
DVFS setting — the paper explicitly leaves DVFS exploration to the IOE.
Evaluations are cached by backbone key in memory and, when a persistent
:class:`~repro.engine.cache.ResultCache` is attached, on disk under a
content address of (backbone key, platform, seed, measurement parameters,
evaluator version) — so repeated backbones across generations, restarts and
experiment-runner memoisation are never re-measured (the paper's supernet
makes backbone evaluation cheap; measurement is the bottleneck their
LUT/caching amortises).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.accuracy.surrogate import AccuracySurrogate
from repro.arch.config import BackboneConfig
from repro.arch.cost import NetworkCost, estimate_cost
from repro.engine.cache import ResultCache
from repro.hardware.dvfs import DvfsSetting, DvfsSpace
from repro.hardware.measurement import HardwareInTheLoop
from repro.hardware.platform import HardwarePlatform

#: Bump when the static evaluation semantics change; orphans persisted entries.
STATIC_EVALUATOR_VERSION = "1"


@dataclass(frozen=True)
class StaticEvaluation:
    """S(b): static accuracy / latency / energy of a standalone backbone."""

    accuracy: float  # percent
    latency_s: float
    energy_j: float

    def objectives(self) -> tuple[float, float, float]:
        """Maximisation vector (accuracy, -latency, -energy) for NSGA-II."""
        return (self.accuracy, -self.latency_s, -self.energy_j)


class StaticEvaluator:
    """Evaluates S(b) for backbones on one platform, with caching.

    Parameters
    ----------
    platform, surrogate, hwil, seed:
        The device model, accuracy surrogate and (optional) measurement
        harness; ``seed`` keys the harness noise streams.
    cache:
        Optional persistent result cache shared with the rest of the engine;
        hits skip both the surrogate and the HW-in-the-loop measurement.
    """

    def __init__(
        self,
        platform: HardwarePlatform,
        surrogate: AccuracySurrogate,
        hwil: HardwareInTheLoop | None = None,
        seed: int = 0,
        cache: ResultCache | None = None,
    ):
        self.platform = platform
        self.surrogate = surrogate
        self.hwil = hwil or HardwareInTheLoop(platform, seed=seed)
        self.dvfs_space = DvfsSpace(platform)
        self.default_setting: DvfsSetting = self.dvfs_space.default_setting()
        self.result_cache = cache
        self._cache: dict[str, StaticEvaluation] = {}
        self._cost_cache: dict[str, NetworkCost] = {}
        self._lock = threading.Lock()
        self.num_measurements = 0  # fresh measurements performed by *this* process

    # ------------------------------------------------------------- pickling
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def cost(self, config: BackboneConfig) -> NetworkCost:
        """Cost profile of a backbone (cached)."""
        if config.key not in self._cost_cache:
            self._cost_cache[config.key] = estimate_cost(config)
        return self._cost_cache[config.key]

    def _cache_key(self, config: BackboneConfig):
        return self.result_cache.key(
            "static",
            evaluator_version=STATIC_EVALUATOR_VERSION,
            backbone=config.key,
            # config.key does not encode the classifier width, but the head's
            # cost (and thus latency/energy) depends on it.
            num_classes=config.num_classes,
            platform=self.platform.name,
            seed=self.hwil.seed,
            # Surrogate accuracy is calibrated against the space's bounds
            # and anchors, so both are result-determining inputs.
            space=self.surrogate.space.fingerprint(),
            anchors=self.surrogate.anchors,
            surrogate_seed=self.surrogate.seed,
            noise_cv=self.hwil.noise_cv,
            repeats=self.hwil.repeats,
            # Warm-up draws consume the measurement noise stream before the
            # timed draws, so the means depend on it.
            warmup=self.hwil.warmup,
        )

    def evaluate(self, config: BackboneConfig) -> StaticEvaluation:
        """S(b) at default hardware settings (cached per backbone)."""
        if config.key in self._cache:
            return self._cache[config.key]
        key = self._cache_key(config) if self.result_cache is not None else None
        if key is not None:
            cached = self.result_cache.get(key, cls=StaticEvaluation)
            if cached is not None:
                self._cache[config.key] = cached
                return cached
        measurement = self.hwil.measure(self.cost(config), self.default_setting)
        evaluation = StaticEvaluation(
            accuracy=self.surrogate.accuracy(config),
            latency_s=measurement.latency_s_mean,
            energy_j=measurement.energy_j_mean,
        )
        # Thread executors may race two workers onto the same fresh backbone;
        # both compute identical values, so insertion just needs to count once.
        with self._lock:
            if config.key not in self._cache:
                self._cache[config.key] = evaluation
                self.num_measurements += 1
                if key is not None:
                    self.result_cache.put(key, evaluation)
        return self._cache[config.key]

    @property
    def num_evaluations(self) -> int:
        """Distinct backbones evaluated so far (including cache hits)."""
        return len(self._cache)
