"""Static backbone evaluation: the S(b) fitness vector of paper eq. 3.

Accuracy comes from the calibrated surrogate; latency and energy come from
the simulated hardware-in-the-loop measurement at the platform's *default*
DVFS setting — the paper explicitly leaves DVFS exploration to the IOE.
Evaluations are cached by backbone key (the paper's supernet makes backbone
evaluation cheap; measurement is the bottleneck their LUT/caching amortises).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accuracy.surrogate import AccuracySurrogate
from repro.arch.config import BackboneConfig
from repro.arch.cost import NetworkCost, estimate_cost
from repro.hardware.dvfs import DvfsSetting, DvfsSpace
from repro.hardware.measurement import HardwareInTheLoop
from repro.hardware.platform import HardwarePlatform


@dataclass(frozen=True)
class StaticEvaluation:
    """S(b): static accuracy / latency / energy of a standalone backbone."""

    accuracy: float  # percent
    latency_s: float
    energy_j: float

    def objectives(self) -> tuple[float, float, float]:
        """Maximisation vector (accuracy, -latency, -energy) for NSGA-II."""
        return (self.accuracy, -self.latency_s, -self.energy_j)


class StaticEvaluator:
    """Evaluates S(b) for backbones on one platform, with caching."""

    def __init__(
        self,
        platform: HardwarePlatform,
        surrogate: AccuracySurrogate,
        hwil: HardwareInTheLoop | None = None,
        seed: int = 0,
    ):
        self.platform = platform
        self.surrogate = surrogate
        self.hwil = hwil or HardwareInTheLoop(platform, seed=seed)
        self.dvfs_space = DvfsSpace(platform)
        self.default_setting: DvfsSetting = self.dvfs_space.default_setting()
        self._cache: dict[str, StaticEvaluation] = {}
        self._cost_cache: dict[str, NetworkCost] = {}

    def cost(self, config: BackboneConfig) -> NetworkCost:
        """Cost profile of a backbone (cached)."""
        if config.key not in self._cost_cache:
            self._cost_cache[config.key] = estimate_cost(config)
        return self._cost_cache[config.key]

    def evaluate(self, config: BackboneConfig) -> StaticEvaluation:
        """S(b) at default hardware settings (cached per backbone)."""
        if config.key in self._cache:
            return self._cache[config.key]
        measurement = self.hwil.measure(self.cost(config), self.default_setting)
        evaluation = StaticEvaluation(
            accuracy=self.surrogate.accuracy(config),
            latency_s=measurement.latency_s_mean,
            energy_j=measurement.energy_j_mean,
        )
        self._cache[config.key] = evaluation
        return evaluation

    @property
    def num_evaluations(self) -> int:
        """Distinct backbones evaluated so far."""
        return len(self._cache)
