"""HADAS reproduction: hardware-aware dynamic neural architecture search.

A from-scratch reproduction of *HADAS: Hardware-Aware Dynamic Neural
Architecture Search for Edge Performance Scaling* (DATE 2023,
arXiv:2212.03354) — the bi-level co-optimisation of backbone architecture,
early-exit placement and DVFS settings for dynamic neural networks on edge
devices — together with every substrate it needs offline: a numpy autograd
NN library, an AttentiveNAS-style search space, analytical Jetson hardware
models, calibrated accuracy surrogates, NSGA-II, runtime controllers and the
full experiment/benchmark harness.

Quickstart::

    from repro import HadasConfig, HadasSearch

    result = HadasSearch(HadasConfig(platform="tx2-gpu")).run()
    best = result.selected_model()
    print(best.payload["evaluation"].energy_gain)

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.arch.config import BackboneConfig, StageConfig
from repro.arch.space import BackboneSpace
from repro.exits.placement import ExitPlacement, ExitSpace
from repro.hardware.dvfs import DvfsSetting, DvfsSpace
from repro.hardware.platform import HardwarePlatform, get_platform, list_platforms
from repro.search.hadas import HadasConfig, HadasResult, HadasSearch

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "HadasConfig",
    "HadasResult",
    "HadasSearch",
    "BackboneConfig",
    "StageConfig",
    "BackboneSpace",
    "ExitPlacement",
    "ExitSpace",
    "DvfsSetting",
    "DvfsSpace",
    "HardwarePlatform",
    "get_platform",
    "list_platforms",
]
