"""Terminal scatter plots for reproducing the paper's figures on stdout.

The benchmark harness regenerates each figure as an ASCII scatter so the
*shape* of the result (Pareto fronts, dominance, crossovers) can be inspected
without matplotlib.  Multiple labelled series share one canvas; the first
character of each label is used as the marker.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

Point = tuple[float, float]


def _bounds(series: Mapping[str, Sequence[Point]]) -> tuple[float, float, float, float]:
    xs = [p[0] for pts in series.values() for p in pts]
    ys = [p[1] for pts in series.values() for p in pts]
    if not xs:
        return 0.0, 1.0, 0.0, 1.0
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if math.isclose(x_lo, x_hi):
        x_lo, x_hi = x_lo - 0.5, x_hi + 0.5
    if math.isclose(y_lo, y_hi):
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5
    return x_lo, x_hi, y_lo, y_hi


def scatter(
    series: Mapping[str, Sequence[Point]],
    width: int = 68,
    height: int = 20,
    title: str | None = None,
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Render labelled point series on a shared ASCII canvas.

    Later series overdraw earlier ones, so put the highlighted front last.
    """
    x_lo, x_hi, y_lo, y_hi = _bounds(series)
    grid = [[" "] * width for _ in range(height)]
    for label, points in series.items():
        marker = (label or "?")[0]
        for x, y in points:
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.3g} +" + "".join(["-"] * width) + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{y_lo:10.3g} +" + "".join(["-"] * width) + "+")
    lines.append(" " * 12 + f"{x_lo:<10.3g}{xlabel:^{max(width - 20, 4)}}{x_hi:>10.3g}")
    legend = "   ".join(f"{(label or '?')[0]} = {label}" for label in series)
    lines.append(f"  [{ylabel}]  legend: {legend}")
    return "\n".join(lines)


def bars(
    values: Mapping[str, float],
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Render a horizontal bar chart for labelled scalar values."""
    if not values:
        return title or ""
    peak = max(abs(v) for v in values.values()) or 1.0
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        n = int(round(abs(value) / peak * width))
        bar = "#" * n
        lines.append(f"  {key.ljust(label_w)} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)
