"""JSON round-tripping for experiment results and configuration objects.

``to_jsonable`` lowers dataclasses, numpy scalars/arrays, paths, tuples and
sets into plain JSON-compatible structures; ``from_jsonable`` rebuilds a
dataclass tree from such a structure given the target type.  Only what the
experiment drivers need — this is not a general serialization framework.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, get_args, get_origin, get_type_hints

import numpy as np


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serialisable builtins."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": obj.tolist(), "dtype": str(obj.dtype)}
    if isinstance(obj, Path):
        return str(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    raise TypeError(f"cannot serialise object of type {type(obj).__name__}")


def _build(value: Any, target: Any) -> Any:
    """Best-effort reconstruction of ``value`` as type ``target``."""
    if target is Any or target is None or value is None:
        return value
    origin = get_origin(target)
    if origin is None:
        if dataclasses.is_dataclass(target) and isinstance(value, dict):
            return from_jsonable(value, target)
        if target in (int, float, str, bool):
            return target(value)
        return value
    args = get_args(target)
    if origin in (list, set, frozenset):
        elem = args[0] if args else Any
        return origin(_build(v, elem) for v in value)
    if origin is tuple:
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(_build(v, args[0]) for v in value)
        if args:
            return tuple(_build(v, t) for v, t in zip(value, args))
        return tuple(value)
    if origin is dict:
        key_t = args[0] if args else Any
        val_t = args[1] if len(args) > 1 else Any
        return {_build(k, key_t): _build(v, val_t) for k, v in value.items()}
    return value


def from_jsonable(data: Any, cls: type) -> Any:
    """Rebuild a dataclass instance of type ``cls`` from ``to_jsonable`` output."""
    if isinstance(data, dict) and "__ndarray__" in data:
        return np.asarray(data["__ndarray__"], dtype=data.get("dtype", "float64"))
    if not dataclasses.is_dataclass(cls):
        return _build(data, cls)
    hints = get_type_hints(cls)
    kwargs = {}
    for field in dataclasses.fields(cls):
        if field.name not in data:
            continue
        raw = data[field.name]
        if isinstance(raw, dict) and "__ndarray__" in raw:
            kwargs[field.name] = np.asarray(raw["__ndarray__"], dtype=raw.get("dtype", "float64"))
        else:
            kwargs[field.name] = _build(raw, hints.get(field.name, Any))
    return cls(**kwargs)


def canonical_json(obj: Any) -> str:
    """Deterministic JSON rendering of ``obj`` (sorted keys, no whitespace).

    Two structurally equal objects always render to the same string, which is
    what makes the string a sound input for content addressing (the engine
    cache hashes it to derive entry digests).
    """
    return json.dumps(
        to_jsonable(obj), sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def save_json(obj: Any, path: str | Path, indent: int = 2) -> Path:
    """Serialise ``obj`` with :func:`to_jsonable` and write it to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(obj), indent=indent, sort_keys=True))
    return path


def load_json(path: str | Path, cls: type | None = None) -> Any:
    """Load JSON from ``path``; rebuild as ``cls`` when provided."""
    data = json.loads(Path(path).read_text())
    if cls is None:
        return data
    return from_jsonable(data, cls)
