"""Deterministic random-number management.

The library never touches global numpy random state.  Instead, a single root
seed fans out into a tree of named, independent generators::

    tree = RngTree(seed=7)
    ooe_rng = tree.child("ooe")              # stable: same name -> same stream
    ioe_rng = tree.child("ioe", "backbone3") # nested names compose

Two trees built from the same seed produce identical streams for identical
names, regardless of the order in which children are requested.  This is what
makes the search engines, the hardware measurement noise, and the synthetic
dataset reproducible independently of each other.
"""

from __future__ import annotations

import hashlib

import numpy as np

_SEED_BYTES = 8


def hash_to_seed(*parts: object) -> int:
    """Map an arbitrary tuple of printable parts to a stable 63-bit seed.

    Uses blake2b rather than Python's ``hash`` so the result is stable across
    processes and interpreter runs (``PYTHONHASHSEED`` does not matter).
    """
    digest = hashlib.blake2b(
        "\x1f".join(str(p) for p in parts).encode("utf-8"), digest_size=_SEED_BYTES
    ).digest()
    return int.from_bytes(digest, "little") & 0x7FFF_FFFF_FFFF_FFFF


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for an OS-entropy generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def child_rng(rng_or_seed: int | np.random.Generator | None, *names: object) -> np.random.Generator:
    """Derive an independent child generator from a parent seed and a name path.

    When given a ``Generator``, one value is drawn from it to seed the child
    (order-dependent, like numpy's ``spawn``).  When given an integer, the
    child is a pure function of ``(seed, names)`` and therefore order-free.
    """
    if isinstance(rng_or_seed, np.random.Generator):
        base = int(rng_or_seed.integers(0, 2**63 - 1))
    else:
        base = int(rng_or_seed or 0)
    return np.random.default_rng(hash_to_seed(base, *names))


class RngTree:
    """A tree of named, mutually independent random generators.

    Children are memoised: asking twice for the same path returns the *same*
    generator object, so sequential draws continue rather than restart.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._children: dict[tuple[str, ...], np.random.Generator] = {}

    def child(self, *names: object) -> np.random.Generator:
        """Return the generator at path ``names``, creating it on first use."""
        key = tuple(str(n) for n in names)
        if key not in self._children:
            self._children[key] = np.random.default_rng(hash_to_seed(self.seed, *key))
        return self._children[key]

    def fresh(self, *names: object) -> np.random.Generator:
        """Return a *new* generator at path ``names`` (not memoised).

        Useful when a component must be able to re-run from scratch with the
        identical stream, e.g. re-evaluating a cached individual.
        """
        return np.random.default_rng(hash_to_seed(self.seed, *(str(n) for n in names)))

    def subtree(self, *names: object) -> "RngTree":
        """Return an independent subtree rooted at path ``names``."""
        return RngTree(hash_to_seed(self.seed, "__subtree__", *(str(n) for n in names)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngTree(seed={self.seed}, children={len(self._children)})"
