"""Argument validation helpers used across the library.

These raise ``ValueError`` with the offending name and value so configuration
mistakes surface at construction time rather than deep inside a search run.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonneg(name: str, value: float) -> float:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Require ``lo <= value <= hi``."""
    if not lo <= value <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def check_one_of(name: str, value: object, options: Iterable[object]) -> object:
    """Require ``value`` to be one of ``options``."""
    options = list(options)
    if value not in options:
        raise ValueError(f"{name} must be one of {options}, got {value!r}")
    return value


def check_same_length(name_a: str, a: Sequence, name_b: str, b: Sequence) -> None:
    """Require two sequences to have equal length."""
    if len(a) != len(b):
        raise ValueError(f"{name_a} (len {len(a)}) and {name_b} (len {len(b)}) must have equal length")
