"""Plain-text table rendering for benchmark and experiment reports.

The benchmark harness reproduces the paper's tables on stdout; this module
renders them with aligned columns so the output is diff-able run to run.
"""

from __future__ import annotations

from typing import Sequence


def _fmt_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table string."""
    str_rows = [[_fmt_cell(cell, precision) for cell in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(f"row {i} has {len(row)} cells, expected {len(headers)}")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_kv_block(title: str, pairs: Sequence[tuple[str, object]], precision: int = 3) -> str:
    """Render key/value pairs as an aligned two-column block."""
    width = max((len(k) for k, _ in pairs), default=0)
    lines = [title]
    for key, value in pairs:
        lines.append(f"  {key.ljust(width)} : {_fmt_cell(value, precision)}")
    return "\n".join(lines)
