"""Shared utilities: deterministic RNG trees, serialization, and reporting.

Every stochastic component in the library draws randomness from a named
child of a single root :class:`numpy.random.Generator` (see :mod:`~repro.utils.rng`),
which makes every experiment reproducible from one integer seed.
"""

from repro.utils.rng import RngTree, child_rng, hash_to_seed, make_rng
from repro.utils.serialization import from_jsonable, load_json, save_json, to_jsonable
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_in_range,
    check_nonneg,
    check_one_of,
    check_positive,
    check_probability,
)

__all__ = [
    "RngTree",
    "child_rng",
    "hash_to_seed",
    "make_rng",
    "to_jsonable",
    "from_jsonable",
    "save_json",
    "load_json",
    "format_table",
    "check_positive",
    "check_nonneg",
    "check_probability",
    "check_in_range",
    "check_one_of",
]
