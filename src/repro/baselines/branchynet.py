"""BranchyNet-style heuristic exit placement (no search).

BranchyNet attaches a small number of exits at hand-picked, roughly uniform
depths of a fixed backbone.  We reproduce that heuristic as a lower anchor:
it respects the paper's position constraint (no exit before layer 5) but
performs no optimisation of count, position, or DVFS.
"""

from __future__ import annotations

import numpy as np

from repro.arch.config import BackboneConfig
from repro.exits.placement import MIN_EXIT_POSITION, ExitPlacement


def branchynet_exits(config: BackboneConfig, num_exits: int = 2) -> ExitPlacement:
    """Place ``num_exits`` exits uniformly over the valid depth range."""
    last = config.total_mbconv_layers - 1
    if last < MIN_EXIT_POSITION:
        raise ValueError(
            f"backbone too shallow for exits: {config.total_mbconv_layers} layers"
        )
    available = last - MIN_EXIT_POSITION + 1
    num_exits = max(1, min(num_exits, available))
    positions = np.unique(
        np.round(np.linspace(MIN_EXIT_POSITION, last, num_exits)).astype(int)
    )
    return ExitPlacement(total_layers=config.total_mbconv_layers,
                         positions=tuple(int(p) for p in positions))
