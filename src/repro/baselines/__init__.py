"""Baselines the paper compares against.

* :mod:`~repro.baselines.attentivenas` — the a0..a6 reference subnets of the
  AttentiveNAS framework (the paper's static baselines; a0 is the most
  compact, a6 the most accurate).
* :mod:`~repro.baselines.optimized_baseline` — the paper's "optimized
  baselines": the IOE run on a fixed baseline backbone with the same budget
  HADAS gets, isolating the value of backbone co-search.
* :mod:`~repro.baselines.branchynet` — a BranchyNet-style heuristic that
  places exits uniformly with no search, as a lower anchor.
"""

from repro.baselines.attentivenas import (
    ATTENTIVENAS_MODELS,
    attentivenas_model,
    attentivenas_models,
)
from repro.baselines.branchynet import branchynet_exits
from repro.baselines.optimized_baseline import optimize_baseline_backbones

__all__ = [
    "ATTENTIVENAS_MODELS",
    "attentivenas_model",
    "attentivenas_models",
    "optimize_baseline_backbones",
    "branchynet_exits",
]
