"""AttentiveNAS reference models a0..a6.

The paper samples its baselines from the AttentiveNAS supernet fine-tuned on
CIFAR-100: a0 is the most compact / most energy-efficient model and a6 the
most accurate (paper Table III).  The configurations below follow the
published AttentiveNAS family — monotonically growing resolution, width,
depth, kernel and expand choices — expressed inside our Table-II space so
they can be encoded/decoded by the same genome machinery as HADAS backbones.
"""

from __future__ import annotations

from repro.arch.config import STAGE_STRIDES, BackboneConfig, StageConfig


def _config(
    res: int,
    stem: int,
    widths: tuple[int, ...],
    depths: tuple[int, ...],
    kernels: tuple[int, ...],
    expands: tuple[int, ...],
    head: int,
    num_classes: int,
) -> BackboneConfig:
    stages = tuple(
        StageConfig(width=w, depth=d, kernel=k, expand=e, stride=s)
        for w, d, k, e, s in zip(widths, depths, kernels, expands, STAGE_STRIDES)
    )
    return BackboneConfig(
        resolution=res, stem_width=stem, stages=stages, head_width=head,
        num_classes=num_classes,
    )


def attentivenas_model(name: str, num_classes: int = 100) -> BackboneConfig:
    """Build one of the a0..a6 reference subnets."""
    # Depth/width/kernel/expand choices tuned so the analytical cost model
    # matches the published AttentiveNAS MAC counts within ~15 %:
    # a0 203M, a1 279M, a2 317M, a3 357M, a4 444M, a5 491M, a6 709M.
    table = {
        "a0": (192, 16, (16, 24, 32, 64, 112, 192, 216), (1, 3, 3, 3, 3, 3, 1),
               (3, 3, 3, 3, 3, 3, 3), (1, 4, 4, 4, 4, 6, 6), 1792),
        "a1": (224, 16, (16, 24, 32, 64, 112, 192, 216), (1, 3, 3, 3, 3, 3, 1),
               (3, 3, 3, 3, 3, 3, 3), (1, 4, 4, 4, 4, 6, 6), 1792),
        "a2": (224, 16, (16, 24, 32, 64, 112, 200, 216), (1, 3, 4, 4, 3, 3, 1),
               (3, 3, 3, 5, 5, 3, 3), (1, 4, 4, 5, 4, 6, 6), 1792),
        "a3": (224, 24, (16, 24, 40, 64, 120, 200, 216), (2, 3, 3, 4, 4, 3, 1),
               (3, 3, 5, 3, 5, 3, 3), (1, 4, 5, 5, 4, 6, 6), 1792),
        "a4": (256, 24, (24, 32, 40, 64, 112, 192, 216), (2, 3, 3, 4, 3, 3, 1),
               (3, 3, 3, 3, 3, 3, 3), (1, 4, 4, 4, 4, 6, 6), 1984),
        "a5": (288, 24, (24, 32, 40, 64, 112, 192, 216), (2, 3, 3, 3, 3, 3, 1),
               (3, 3, 3, 3, 3, 3, 3), (1, 4, 4, 4, 4, 6, 6), 1984),
        "a6": (288, 24, (24, 32, 40, 72, 120, 200, 224), (2, 3, 4, 4, 4, 3, 2),
               (3, 3, 3, 3, 5, 3, 3), (1, 4, 5, 4, 5, 6, 6), 1984),
    }
    if name not in table:
        raise KeyError(f"unknown AttentiveNAS model {name!r}; expected a0..a6")
    res, stem, widths, depths, kernels, expands, head = table[name]
    return _config(res, stem, widths, depths, kernels, expands, head, num_classes)


#: Names in compactness order.
ATTENTIVENAS_MODELS: tuple[str, ...] = ("a0", "a1", "a2", "a3", "a4", "a5", "a6")


def attentivenas_models(num_classes: int = 100) -> dict[str, BackboneConfig]:
    """All seven reference subnets keyed by name."""
    return {name: attentivenas_model(name, num_classes) for name in ATTENTIVENAS_MODELS}
