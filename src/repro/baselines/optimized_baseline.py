"""The paper's "optimized baselines": IOE applied to fixed backbones.

For the IOE comparison (Fig. 5 bottom, Fig. 6) the paper gives the baselines
a fair chance: the a0..a6 backbones keep their architecture, but their exit
placement and DVFS settings are optimised with the *same* inner-engine budget
HADAS uses.  Any remaining gap is therefore attributable to HADAS's backbone
co-search — its OOE samples backbones "more poised to benefit from the IOE
optimizations".
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.arch.config import BackboneConfig
from repro.baselines.attentivenas import attentivenas_models

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.search.ioe import InnerEngine, InnerResult


def optimize_baseline_backbones(
    make_inner_engine,
    models: dict[str, BackboneConfig] | None = None,
) -> dict[str, "InnerResult"]:
    """Run the inner engine on each fixed baseline backbone.

    Parameters
    ----------
    make_inner_engine:
        Callable ``(name, BackboneConfig) -> InnerEngine`` so the caller
        controls budget/platform/seeding (and can match HADAS's IOE budget
        exactly, as the paper does).
    models:
        Backbones to optimise; defaults to the a0..a6 family.

    Returns
    -------
    dict mapping model name to its inner-engine result (exits/DVFS Pareto).
    """
    models = models if models is not None else attentivenas_models()
    results = {}
    for name, config in models.items():
        engine = make_inner_engine(name, config)
        results[name] = engine.run()
    return results
