"""Process-safe tracing/metrics runtime: spans, counters, histograms.

Design constraints, in order:

1. **Zero-cost when off.**  Every instrumentation point in the repo calls
   :func:`span` / :func:`count` / :func:`observe` unconditionally, including
   the dynamic-evaluation hot path, so the disabled path must be a couple of
   attribute reads and a ``None`` check (measured well under 2% of a single
   :meth:`DynamicEvaluator.evaluate` call — asserted in ``tests/test_obs.py``).
2. **No effect on results.**  The runtime never touches an RNG, never
   reorders work, and never raises into instrumented code; recording a trace
   is bit-identical to not recording one.
3. **Process-safe.**  A :class:`Recorder` is plain data (events list +
   counter/histogram dicts); worker processes run under their own recorder
   and ship :meth:`Recorder.export_payload` home through the executor result
   channel, where :meth:`Recorder.merge` folds it into the parent's recorder
   (see ``obs/collect.py``).  Span ids are disambiguated by ``(pid, id)``.

Activation is layered: :func:`install` sets a process-global default
recorder (what the ``--trace`` CLI flags use); :func:`recording` overrides
it for the current thread only (what worker-side wrappers and tests use, so
concurrent threads never write into each other's recorders).  :func:`active`
consults the thread-local override first, then the global default.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

#: Histograms keep at most this many raw samples (count/sum/min/max keep
#: exact totals past the cap); enough for honest p95s without unbounded
#: memory on million-event serving runs.
HISTOGRAM_SAMPLE_CAP = 4096


class Histogram:
    """Streaming value distribution: exact moments, capped raw samples."""

    __slots__ = ("count", "total", "min", "max", "samples")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples: list[float] = []

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.samples) < HISTOGRAM_SAMPLE_CAP:
            self.samples.append(value)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples (0 when empty)."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
        return ordered[rank]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_payload(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "samples": list(self.samples),
        }

    def merge_payload(self, payload: dict) -> None:
        if not payload.get("count"):
            return
        self.count += int(payload["count"])
        self.total += float(payload["total"])
        self.min = min(self.min, float(payload["min"]))
        self.max = max(self.max, float(payload["max"]))
        room = HISTOGRAM_SAMPLE_CAP - len(self.samples)
        if room > 0:
            self.samples.extend(float(v) for v in payload.get("samples", [])[:room])


class Recorder:
    """Collects span events, counters and histograms for one run.

    Thread-safe: span completion and metric updates take a lock (recording
    is the slow path by definition); each thread keeps its own span stack so
    parent/child links never cross threads.
    """

    def __init__(self):
        self.events: list[dict] = []
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.pid = os.getpid()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._stacks = threading.local()

    # ---------------------------------------------------------------- spans
    def _stack(self) -> list[int]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        return stack

    def span(self, name: str, **attrs: Any) -> "Span":
        return Span(self, name, attrs)

    def _finish_span(self, event: dict) -> None:
        with self._lock:
            self.events.append(event)

    # -------------------------------------------------------------- metrics
    def count(self, name: str, value: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.add(value)

    # ------------------------------------------------------------ transport
    def export_payload(self) -> dict:
        """Plain-data snapshot for shipping across a process boundary."""
        with self._lock:
            return {
                "pid": self.pid,
                "events": [dict(event) for event in self.events],
                "counters": dict(self.counters),
                "histograms": {
                    name: hist.as_payload() for name, hist in self.histograms.items()
                },
            }

    def merge(self, payload: dict) -> None:
        """Fold a worker recorder's :meth:`export_payload` into this one."""
        with self._lock:
            self.events.extend(payload.get("events", ()))
            for name, value in payload.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + value
            for name, data in payload.get("histograms", {}).items():
                hist = self.histograms.get(name)
                if hist is None:
                    hist = self.histograms[name] = Histogram()
                hist.merge_payload(data)


class Span:
    """One timed region; records wall + thread-CPU time on exit.

    Exceptions propagate untouched (the event still lands, flagged with
    ``error`` so a trace of a failed run shows where it died).
    """

    __slots__ = ("_recorder", "name", "attrs", "span_id", "parent_id",
                 "_ts", "_wall0", "_cpu0")

    def __init__(self, recorder: Recorder, name: str, attrs: dict):
        self._recorder = recorder
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "Span":
        recorder = self._recorder
        stack = recorder._stack()
        self.parent_id = stack[-1] if stack else None
        self.span_id = next(recorder._ids)
        stack.append(self.span_id)
        self._ts = time.time()
        self._cpu0 = time.thread_time()
        self._wall0 = time.perf_counter()
        return self

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes discovered mid-span (e.g. batch sizes)."""
        self.attrs.update(attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.thread_time() - self._cpu0
        recorder = self._recorder
        stack = recorder._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        event = {
            "name": self.name,
            "ts": self._ts,
            "wall_s": wall,
            "cpu_s": cpu,
            "pid": recorder.pid,
            "tid": threading.get_ident(),
            "id": self.span_id,
            "parent": self.parent_id,
        }
        if self.attrs:
            event["attrs"] = dict(self.attrs)
        if exc_type is not None:
            event["error"] = exc_type.__name__
        recorder._finish_span(event)
        return False


class _NoopSpan:
    """Shared do-nothing span returned by :func:`span` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()

_default: Recorder | None = None
_tls = threading.local()


def active() -> Recorder | None:
    """The recorder in effect for this thread (``None`` when tracing is off)."""
    recorder = getattr(_tls, "recorder", None)
    return recorder if recorder is not None else _default


def install(recorder: Recorder | None) -> None:
    """Set the process-global default recorder (``None`` disables tracing)."""
    global _default
    _default = recorder


def uninstall() -> None:
    install(None)


@contextmanager
def recording(recorder: Recorder) -> Iterator[Recorder]:
    """Route this thread's events to ``recorder`` for the duration.

    Thread-local, so concurrent pool workers each recording their own task
    never interleave; nested use restores the outer recorder on exit.
    """
    previous = getattr(_tls, "recorder", None)
    _tls.recorder = recorder
    try:
        yield recorder
    finally:
        _tls.recorder = previous


def span(name: str, **attrs: Any):
    """Open a span under the active recorder; a shared no-op when tracing is off."""
    recorder = active()
    if recorder is None:
        return _NOOP_SPAN
    return Span(recorder, name, attrs)


def count(name: str, value: float = 1) -> None:
    """Bump a counter on the active recorder (no-op when tracing is off)."""
    recorder = active()
    if recorder is not None:
        recorder.count(name, value)


def observe(name: str, value: float) -> None:
    """Add a histogram sample on the active recorder (no-op when tracing is off)."""
    recorder = active()
    if recorder is not None:
        recorder.observe(name, value)
