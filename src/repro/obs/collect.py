"""Collector: ship worker-side events and cache deltas home with results.

Pool workers (threads *and* processes) run outside the submitting thread's
recorder, and process workers additionally keep their own ``ResultCache``
instances whose hit/miss accounting the parent never sees.  The collector
closes both gaps through the existing executor result channel — no extra
sockets, files or queues:

* :class:`TracedCall` wraps each pending ``(fn, args)`` call in
  :meth:`EvaluationService.evaluate_batch`.  In the worker it runs ``fn``
  under a fresh thread-local :class:`~repro.obs.trace.Recorder` (when
  tracing is on), snapshots the process-wide cache-stats delta (when running
  in a forked worker), and returns everything bundled in an
  :class:`Envelope` alongside the result.
* :func:`absorb` unwraps the envelope in the parent: events merge into the
  active recorder, cache deltas merge into the service's cache, and the bare
  result flows onward — downstream code (cache puts, result assembly) never
  sees the wrapper.

``TracedCall`` mirrors the wrapped function's ``is_task_codec`` attribute so
the ``auto`` executor's codec-batch routing is unchanged, and it pickles iff
the wrapped function does — exactly the existing process-executor contract.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any

import contextlib

from repro.engine.cache import (
    runtime_stats_delta,
    runtime_stats_snapshot,
    stats_capture,
)
from repro.obs import trace


@dataclass
class Envelope:
    """A worker result plus the observability freight riding with it."""

    result: Any
    payload: dict | None = None  # Recorder.export_payload() from the worker
    cache_deltas: dict | None = None  # namespace -> {hits, misses, puts}
    queue_wait_s: float | None = None
    pid: int = 0


def _task_label(fn: Any, args: tuple) -> str:
    """Human-readable task name: the spec kind for codec calls, else the fn."""
    if getattr(fn, "is_task_codec", False) and args:
        kind = getattr(args[0], "kind", None)
        if kind:
            return str(kind)
    inner = getattr(fn, "fn", None)  # unwrap nested TracedCall, defensively
    target = inner if inner is not None else fn
    return getattr(target, "__name__", type(target).__name__)


class TracedCall:
    """Picklable call wrapper that records one task's worker-side telemetry.

    ``record`` controls event capture (tracing on in the parent at submit
    time); cache-stats deltas are captured whenever the call actually runs
    in another process, so cross-process cache accounting stays truthful
    even with tracing off.
    """

    def __init__(self, fn: Any, record: bool):
        self.fn = fn
        self.record = record
        self.origin_pid = os.getpid()
        self.submitted_at = time.time()
        # Preserve codec-batch detection through the wrapper.
        self.is_task_codec = bool(getattr(fn, "is_task_codec", False))

    def __call__(self, *args: Any) -> Any:
        in_parent = os.getpid() == self.origin_pid
        if not self.record and in_parent:
            # Nothing to ship: events are off and the parent's live caches
            # already see every hit/miss this call makes.
            return self.fn(*args)
        queue_wait = max(time.time() - self.submitted_at, 0.0)
        baseline = None if in_parent else runtime_stats_snapshot()
        # In a worker, the envelope owns this call's cache deltas: mute the
        # session-stats sidecar for the duration so services closing inside
        # the task don't record the same traffic a second time.
        scope = stats_capture() if not in_parent else contextlib.nullcontext()
        with scope:
            if self.record:
                recorder = trace.Recorder()
                with trace.recording(recorder):
                    with recorder.span(
                        "worker.execute", task=_task_label(self.fn, args)
                    ):
                        result = self.fn(*args)
                payload = recorder.export_payload()
            else:
                result = self.fn(*args)
                payload = None
        deltas = None if baseline is None else runtime_stats_delta(baseline)
        return Envelope(
            result=result,
            payload=payload,
            cache_deltas=deltas or None,
            queue_wait_s=queue_wait,
            pid=os.getpid(),
        )


def absorb(output: Any, cache: Any = None) -> Any:
    """Unwrap an :class:`Envelope` in the parent, merging its freight.

    Events and queue-wait samples land on the parent's active recorder;
    cache deltas from *other* processes merge into ``cache`` (the service's
    shared :class:`~repro.engine.cache.ResultCache`) so ``cache.stats()``
    counts worker traffic.  Non-envelope outputs pass through untouched.
    """
    if not isinstance(output, Envelope):
        return output
    recorder = trace.active()
    if recorder is not None:
        if output.payload is not None:
            recorder.merge(output.payload)
        if output.queue_wait_s is not None:
            recorder.observe("engine.queue_wait_s", output.queue_wait_s)
    if output.cache_deltas and cache is not None and output.pid != os.getpid():
        cache.merge_stats(output.cache_deltas)
    return output.result
