"""Observability: tracing/metrics runtime, collectors, exports, manifests.

Import surface is deliberately thin — ``repro.engine.cache`` imports this
package for its counters, so the package initialiser must not pull in
``obs.collect`` (which imports the cache back).  Instrumented modules do
``from repro.obs import trace`` and call ``trace.span`` / ``trace.count`` /
``trace.observe``; everything else (collector, exporters, manifest, CLI)
is imported from its own module on demand.
"""

from repro.obs.trace import (  # noqa: F401
    Recorder,
    active,
    count,
    install,
    observe,
    recording,
    span,
    uninstall,
)
