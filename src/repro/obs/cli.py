"""``repro trace`` — inspect saved traces — plus the runners' ``--trace`` hook.

Usage::

    python -m repro trace summary out.jsonl
    python -m repro trace top out.jsonl --limit 10
    python -m repro trace export out.jsonl --chrome chrome.json

``summary`` prints the aggregate span/counter/histogram tables; ``top``
prints only the N heaviest span names; ``export --chrome`` writes Chrome
``trace_event`` JSON that Perfetto (https://ui.perfetto.dev) opens directly.

:func:`traced_run` is the shared implementation behind every runner's
``--trace out.jsonl`` flag: it installs a global recorder for the duration,
then writes the trace JSONL and a ``<out>.manifest.json``
:class:`~repro.obs.manifest.RunManifest` beside it.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import time
from pathlib import Path
from typing import Any, Iterator

from repro.obs import trace
from repro.obs.export import load_jsonl, render_summary, to_chrome_trace, write_jsonl
from repro.obs.manifest import build_manifest


@contextlib.contextmanager
def traced_run(
    out: str | None,
    command: str,
    config: Any = None,
    seed: int = 0,
    platforms: list[str] | tuple[str, ...] = (),
) -> Iterator[trace.Recorder | None]:
    """Record the enclosed block to ``out`` (no-op when ``out`` is None).

    Installs the process-global recorder so every instrumented layer —
    including worker processes, whose envelopes merge back through the
    service — lands in one trace.  On exit the trace JSONL and its manifest
    are written and their paths printed; tracing never changes results (the
    runtime touches no RNG), so a traced run is bit-identical to a bare one.
    """
    if out is None:
        yield None
        return
    if trace.active() is not None:
        raise RuntimeError("a trace recording is already active in this process")
    recorder = trace.Recorder()
    started_at = time.time()
    wall0 = time.perf_counter()
    trace.install(recorder)
    try:
        yield recorder
    finally:
        trace.uninstall()
        wall_s = time.perf_counter() - wall0
        path = write_jsonl(
            recorder, out, meta={"command": command, "seed": int(seed)}
        )
        manifest = build_manifest(
            recorder,
            command=command,
            config=config,
            seed=seed,
            platforms=list(platforms),
            started_at=started_at,
            wall_s=wall_s,
        )
        manifest_path = manifest.save(Path(out).with_suffix(".manifest.json"))
        print(f"trace written to {path} (manifest: {manifest_path})")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser("summary", help="aggregate span/counter tables")
    p_summary.add_argument("trace_file")

    p_top = sub.add_parser("top", help="heaviest span names by total wall time")
    p_top.add_argument("trace_file")
    p_top.add_argument("-n", "--limit", type=int, default=10)

    p_export = sub.add_parser("export", help="convert to other formats")
    p_export.add_argument("trace_file")
    p_export.add_argument(
        "--chrome",
        metavar="OUT",
        required=True,
        help="write Chrome trace_event JSON (open in Perfetto) to OUT",
    )

    args = parser.parse_args(argv)
    try:
        payload = load_jsonl(args.trace_file)
    except OSError as error:
        raise SystemExit(f"cannot read trace {args.trace_file!r}: {error}")

    if args.command == "summary":
        print(render_summary(payload))
    elif args.command == "top":
        print(render_summary(payload, top=max(args.limit, 1)))
    elif args.command == "export":
        out = Path(args.chrome)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(to_chrome_trace(payload)))
        print(f"chrome trace written to {out} ({len(payload['events'])} events)")
    return 0
