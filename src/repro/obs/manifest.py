"""Run manifests: one JSON record of what a traced run actually was.

A :class:`RunManifest` pins the facts a future reader needs to interpret a
trace — what command ran, under which config fingerprint and seed, against
which platforms and cache namespaces, at which code revision — plus the
timing/counter rollup so the headline numbers survive even if the trace
file itself is discarded.  ``validate_manifest`` checks a loaded manifest
against :data:`MANIFEST_SCHEMA` (hand-rolled: the toolchain has no
jsonschema dependency, and the schema is flat enough not to want one).
"""

from __future__ import annotations

import hashlib
import json
import platform as platform_module
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.export import summarize
from repro.obs.trace import Recorder
from repro.utils.serialization import canonical_json, to_jsonable

MANIFEST_SCHEMA_VERSION = 1

#: field -> (required, allowed types); the validation contract for readers.
MANIFEST_SCHEMA: dict[str, tuple[bool, tuple[type, ...]]] = {
    "schema_version": (True, (int,)),
    "command": (True, (str,)),
    "config_fingerprint": (True, (str,)),
    "seed": (True, (int,)),
    "platforms": (True, (list,)),
    "cache_namespaces": (True, (list,)),
    "git_describe": (False, (str, type(None))),
    "python_version": (True, (str,)),
    "numpy_version": (False, (str, type(None))),
    "hostname": (False, (str, type(None))),
    "started_at": (True, (int, float)),
    "wall_s": (True, (int, float)),
    "counters": (True, (dict,)),
    "spans": (True, (dict,)),
    "histograms": (False, (dict,)),
}


@dataclass(frozen=True)
class RunManifest:
    """Everything needed to identify and headline one traced run."""

    command: str
    config_fingerprint: str
    seed: int
    platforms: list[str]
    cache_namespaces: list[str]
    git_describe: str | None
    python_version: str
    numpy_version: str | None
    hostname: str | None
    started_at: float
    wall_s: float
    counters: dict[str, float]
    spans: dict[str, dict]
    histograms: dict[str, dict] = field(default_factory=dict)
    schema_version: int = MANIFEST_SCHEMA_VERSION

    def to_json(self) -> dict:
        return to_jsonable(asdict(self))

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n")
        return path


def config_fingerprint(config: Any) -> str:
    """Stable digest of any JSON-able config object (e.g. a Profile)."""
    payload = canonical_json(to_jsonable(config))
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


def git_describe() -> str | None:
    """Best-effort ``git describe`` of the working tree; None off-repo."""
    try:
        result = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    described = result.stdout.strip()
    return described if result.returncode == 0 and described else None


def _numpy_version() -> str | None:
    try:
        import numpy
    except ImportError:  # the obs layer itself is stdlib-only
        return None
    return str(numpy.__version__)


def build_manifest(
    recorder: Recorder,
    command: str,
    config: Any = None,
    seed: int = 0,
    platforms: list[str] | tuple[str, ...] = (),
    started_at: float = 0.0,
    wall_s: float = 0.0,
) -> RunManifest:
    """Assemble the manifest for a finished recorder."""
    summary = summarize(recorder.export_payload())
    namespaces = sorted(
        {
            name.split(".")[1]
            for name in summary["counters"]
            if name.startswith("cache.") and len(name.split(".")) == 3
        }
    )
    return RunManifest(
        command=command,
        config_fingerprint=config_fingerprint(config) if config is not None else "",
        seed=int(seed),
        platforms=[str(p) for p in platforms],
        cache_namespaces=namespaces,
        git_describe=git_describe(),
        python_version=sys.version.split()[0],
        numpy_version=_numpy_version(),
        hostname=platform_module.node() or None,
        started_at=float(started_at) if started_at else time.time() - wall_s,
        wall_s=float(wall_s),
        counters=summary["counters"],
        spans=summary["spans"],
        histograms=summary["histograms"],
    )


def validate_manifest(payload: dict) -> None:
    """Raise ``ValueError`` listing every way ``payload`` violates the schema."""
    problems = []
    if not isinstance(payload, dict):
        raise ValueError(f"manifest must be a JSON object, got {type(payload).__name__}")
    for name, (required, types) in MANIFEST_SCHEMA.items():
        if name not in payload:
            if required:
                problems.append(f"missing required field {name!r}")
            continue
        if not isinstance(payload[name], types):
            expected = "/".join(t.__name__ for t in types)
            problems.append(
                f"field {name!r} has type {type(payload[name]).__name__}, "
                f"expected {expected}"
            )
    version = payload.get("schema_version")
    if isinstance(version, int) and version > MANIFEST_SCHEMA_VERSION:
        problems.append(
            f"schema_version {version} is newer than supported "
            f"{MANIFEST_SCHEMA_VERSION}"
        )
    if problems:
        raise ValueError("invalid manifest: " + "; ".join(problems))
