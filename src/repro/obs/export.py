"""Trace persistence and aggregation: JSONL, Chrome trace_event, summaries.

The on-disk format is line-delimited JSON so traces stream and survive
truncation: a ``meta`` header line, one ``span`` line per event, then a
``counters`` and a ``histograms`` trailer.  :func:`to_chrome_trace` converts
a loaded payload to the Chrome ``trace_event`` array format, which Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` open directly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.trace import Histogram, Recorder


def write_jsonl(recorder: Recorder, path: str | Path, meta: dict | None = None) -> Path:
    """Persist a recorder to ``path`` as JSONL; returns the path written."""
    payload = recorder.export_payload()
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        header = {"type": "meta", "pid": payload["pid"]}
        if meta:
            header.update(meta)
        handle.write(json.dumps(header) + "\n")
        for event in payload["events"]:
            handle.write(json.dumps({"type": "span", **event}) + "\n")
        handle.write(
            json.dumps({"type": "counters", "counters": payload["counters"]}) + "\n"
        )
        handle.write(
            json.dumps({"type": "histograms", "histograms": payload["histograms"]})
            + "\n"
        )
    return path


def load_jsonl(path: str | Path) -> dict:
    """Load a trace file back into a payload dict.

    Returns ``{"meta", "events", "counters", "histograms"}``; corrupt lines
    are skipped so a truncated trace still summarises.
    """
    payload: dict[str, Any] = {"meta": {}, "events": [], "counters": {}, "histograms": {}}
    for line in Path(path).read_text().splitlines():
        try:
            record = json.loads(line)
            kind = record.get("type")
        except (ValueError, AttributeError):
            continue
        if kind == "meta":
            payload["meta"] = {k: v for k, v in record.items() if k != "type"}
        elif kind == "span":
            payload["events"].append({k: v for k, v in record.items() if k != "type"})
        elif kind == "counters":
            payload["counters"].update(record.get("counters", {}))
        elif kind == "histograms":
            payload["histograms"].update(record.get("histograms", {}))
    return payload


def span_tree(events: list[dict]) -> dict[tuple[int, int | None], list[dict]]:
    """Group events by ``(pid, parent id)`` — children of ``(pid, None)`` are
    roots of that process.  Ids are only unique per process, hence the pid in
    the key."""
    children: dict[tuple[int, int | None], list[dict]] = {}
    for event in events:
        key = (event.get("pid", 0), event.get("parent"))
        children.setdefault(key, []).append(event)
    return children


def to_chrome_trace(payload: dict) -> dict:
    """Convert a loaded payload to Chrome ``trace_event`` JSON (Perfetto).

    Complete events (``"ph": "X"``) with microsecond timestamps rebased to
    the earliest span, one row per (pid, tid).
    """
    events = payload.get("events", [])
    base = min((event["ts"] for event in events), default=0.0)
    trace_events = []
    for event in events:
        entry = {
            "name": event["name"],
            "cat": "span",
            "ph": "X",
            "ts": (event["ts"] - base) * 1e6,
            "dur": event.get("wall_s", 0.0) * 1e6,
            "pid": event.get("pid", 0),
            "tid": event.get("tid", 0),
        }
        args = dict(event.get("attrs", {}))
        if event.get("cpu_s") is not None:
            args["cpu_s"] = event["cpu_s"]
        if event.get("error"):
            args["error"] = event["error"]
        if args:
            entry["args"] = args
        trace_events.append(entry)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def _histogram_of(data: dict) -> Histogram:
    hist = Histogram()
    hist.merge_payload(data)
    return hist


def summarize(payload: dict) -> dict:
    """Aggregate a payload into per-span-name and per-metric rollups."""
    spans: dict[str, dict] = {}
    for event in payload.get("events", []):
        row = spans.setdefault(
            event["name"],
            {"count": 0, "wall_s": 0.0, "cpu_s": 0.0, "max_wall_s": 0.0},
        )
        row["count"] += 1
        row["wall_s"] += event.get("wall_s", 0.0)
        row["cpu_s"] += event.get("cpu_s", 0.0)
        row["max_wall_s"] = max(row["max_wall_s"], event.get("wall_s", 0.0))
    for row in spans.values():
        row["mean_wall_s"] = row["wall_s"] / row["count"] if row["count"] else 0.0
    histograms = {}
    for name, data in payload.get("histograms", {}).items():
        hist = _histogram_of(data)
        histograms[name] = {
            "count": hist.count,
            "mean": hist.mean,
            "p50": hist.percentile(0.50),
            "p95": hist.percentile(0.95),
            "max": hist.max if hist.count else 0.0,
        }
    return {
        "spans": spans,
        "counters": dict(payload.get("counters", {})),
        "histograms": histograms,
    }


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.0f}us"


def _format_sample(name: str, value: float) -> str:
    # Only ``*_s`` histograms hold durations; the rest are plain quantities
    # (batch sizes, group counts) and render as bare numbers.
    if name.endswith("_s"):
        return _format_seconds(value)
    return f"{value:.4g}"


def render_summary(payload: dict, top: int = 0) -> str:
    """Human-readable aggregate table (the ``repro trace summary`` output).

    ``top`` limits the span table to the N heaviest names by total wall
    time (0 = all), which is also what ``repro trace top`` prints.
    """
    summary = summarize(payload)
    lines = []
    spans = sorted(
        summary["spans"].items(), key=lambda item: item[1]["wall_s"], reverse=True
    )
    if top:
        spans = spans[:top]
    if spans:
        lines.append("spans (by total wall time):")
        lines.append(
            f"  {'name':<28} {'count':>7} {'total':>10} {'mean':>10} "
            f"{'max':>10} {'cpu':>10}"
        )
        for name, row in spans:
            lines.append(
                f"  {name:<28} {row['count']:>7} "
                f"{_format_seconds(row['wall_s']):>10} "
                f"{_format_seconds(row['mean_wall_s']):>10} "
                f"{_format_seconds(row['max_wall_s']):>10} "
                f"{_format_seconds(row['cpu_s']):>10}"
            )
    if summary["counters"]:
        lines.append("counters:")
        for name in sorted(summary["counters"]):
            value = summary["counters"][name]
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<44} {rendered:>12}")
    if summary["histograms"]:
        lines.append("histograms:")
        lines.append(
            f"  {'name':<28} {'count':>7} {'mean':>10} {'p50':>10} "
            f"{'p95':>10} {'max':>10}"
        )
        for name in sorted(summary["histograms"]):
            row = summary["histograms"][name]
            lines.append(
                f"  {name:<28} {row['count']:>7} "
                f"{_format_sample(name, row['mean']):>10} "
                f"{_format_sample(name, row['p50']):>10} "
                f"{_format_sample(name, row['p95']):>10} "
                f"{_format_sample(name, row['max']):>10}"
            )
    if not lines:
        return "empty trace"
    return "\n".join(lines)


def counter_rollup(recorder: Recorder) -> dict:
    """Compact JSON-able rollup of a live recorder (for bench reports).

    Counters verbatim, histograms as count/mean/p95 triples, plus derived
    per-namespace cache hit rates — the shape both bench suites embed.
    """
    payload = recorder.export_payload()
    summary = summarize(payload)
    cache_hit_rates = {}
    counters = summary["counters"]
    namespaces = {
        name.split(".")[1]
        for name in counters
        if name.startswith("cache.") and len(name.split(".")) == 3
    }
    for namespace in sorted(namespaces):
        hits = counters.get(f"cache.{namespace}.hits", 0)
        misses = counters.get(f"cache.{namespace}.misses", 0)
        lookups = hits + misses
        cache_hit_rates[namespace] = hits / lookups if lookups else 0.0
    return {
        "counters": counters,
        "histograms": summary["histograms"],
        "cache_hit_rates": cache_hit_rates,
    }
