"""Synthetic vision data standing in for CIFAR-100.

The paper trains and evaluates on CIFAR-100, which is unavailable offline.
This package provides a procedurally generated class-conditional image
dataset with an explicit *per-sample difficulty* scalar — the property that
makes early exiting meaningful (easy samples are classifiable from shallow
features).  The dataset feeds the miniature trainable pipeline; the same
difficulty distribution drives the analytical exit model in
:mod:`repro.accuracy.exit_model` (see DESIGN.md §1).
"""

from repro.data.difficulty import DifficultyDistribution
from repro.data.splits import train_val_test_split
from repro.data.synthetic import SyntheticVisionDataset

__all__ = ["SyntheticVisionDataset", "DifficultyDistribution", "train_val_test_split"]
