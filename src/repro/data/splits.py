"""Dataset split helpers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng


def train_val_test_split(
    images: np.ndarray,
    labels: np.ndarray,
    val_fraction: float = 0.1,
    test_fraction: float = 0.1,
    rng=None,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Shuffle and split arrays into train/val/test dictionaries."""
    if not 0 < val_fraction + test_fraction < 1:
        raise ValueError("val_fraction + test_fraction must lie in (0, 1)")
    rng = make_rng(rng)
    n = len(images)
    order = rng.permutation(n)
    n_val = int(round(n * val_fraction))
    n_test = int(round(n * test_fraction))
    val_idx = order[:n_val]
    test_idx = order[n_val : n_val + n_test]
    train_idx = order[n_val + n_test :]
    return {
        "train": (images[train_idx], labels[train_idx]),
        "val": (images[val_idx], labels[val_idx]),
        "test": (images[test_idx], labels[test_idx]),
    }
