"""Procedurally generated class-conditional images.

Each class owns a smooth random prototype field (low-frequency mixture of 2-D
cosines).  A sample is its class prototype corrupted by difficulty-scaled
noise and a small random translation, so the Bayes-optimal decision gets
harder exactly as the difficulty scalar grows.  This gives the miniature
training pipeline the property the paper's method exploits: shallow features
suffice for easy samples, depth pays off only on hard ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.difficulty import DifficultyDistribution
from repro.utils.rng import child_rng
from repro.utils.validation import check_positive


@dataclass
class SyntheticVisionDataset:
    """In-memory synthetic image classification dataset.

    Attributes
    ----------
    num_classes, image_size, channels:
        Output geometry; defaults are miniature (tests train in seconds).
    noise_scale:
        Multiplier mapping difficulty in [0, 1] to additive noise sigma.
    difficulty:
        The population difficulty distribution (shared with the analytical
        exit model so the two evaluation paths agree).
    """

    num_classes: int = 8
    image_size: int = 16
    channels: int = 3
    noise_scale: float = 1.6
    num_frequencies: int = 4
    difficulty: DifficultyDistribution = field(default_factory=DifficultyDistribution)
    seed: int = 0

    def __post_init__(self):
        check_positive("num_classes", self.num_classes)
        check_positive("image_size", self.image_size)
        check_positive("channels", self.channels)
        self._prototypes = self._build_prototypes()

    def _build_prototypes(self) -> np.ndarray:
        """Smooth per-class prototype fields, unit-normalised per class."""
        rng = child_rng(self.seed, "prototypes")
        size = self.image_size
        yy, xx = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
        protos = np.zeros((self.num_classes, self.channels, size, size))
        for cls in range(self.num_classes):
            for ch in range(self.channels):
                field_sum = np.zeros((size, size))
                for _ in range(self.num_frequencies):
                    fx, fy = rng.uniform(0.5, 2.5, size=2)
                    phase_x, phase_y = rng.uniform(0, 2 * np.pi, size=2)
                    amp = rng.uniform(0.5, 1.0)
                    field_sum += amp * np.cos(2 * np.pi * fx * xx / size + phase_x) * np.cos(
                        2 * np.pi * fy * yy / size + phase_y
                    )
                protos[cls, ch] = field_sum
            protos[cls] /= np.linalg.norm(protos[cls]) / np.sqrt(protos[cls].size)
        return protos

    @property
    def prototypes(self) -> np.ndarray:
        """Per-class prototype images, shape (classes, channels, H, W)."""
        return self._prototypes

    def generate(
        self, n: int, split: str = "train"
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Generate ``n`` samples for a named split.

        Returns ``(images, labels, difficulties)``; different split names map
        to disjoint random streams, so train/val/test never share samples.
        """
        rng = child_rng(self.seed, "samples", split)
        labels = rng.integers(0, self.num_classes, size=n)
        difficulties = self.difficulty.sample(n, rng)
        images = self._prototypes[labels].copy()

        # Small random translation (circular shift) per sample.
        shifts = rng.integers(-1, 2, size=(n, 2))
        for i in range(n):
            if shifts[i, 0]:
                images[i] = np.roll(images[i], shifts[i, 0], axis=1)
            if shifts[i, 1]:
                images[i] = np.roll(images[i], shifts[i, 1], axis=2)

        noise = rng.normal(0.0, 1.0, size=images.shape)
        images += noise * (self.noise_scale * difficulties)[:, None, None, None]
        return images.astype(np.float64), labels.astype(np.int64), difficulties

    def bayes_reference_accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy of the nearest-prototype classifier (an upper reference).

        Useful in tests: a trained network should approach (not exceed by
        much) this matched-filter performance.
        """
        flat = images.reshape(len(images), -1)
        protos = self._prototypes.reshape(self.num_classes, -1)
        scores = flat @ protos.T
        scores -= 0.5 * (protos**2).sum(axis=1)[None, :]
        return float((scores.argmax(axis=1) == labels).mean())
