"""Per-sample difficulty distributions.

A sample's difficulty is a scalar in [0, 1]: the fraction of a network's
discriminative capability that must be exceeded to classify it correctly.
We model the population as a Beta distribution — natural-image corpora show
many easy samples and a heavy-ish tail of hard ones, which a Beta with
``alpha < beta`` captures.  The same object serves the synthetic dataset
(noise scaling) and the analytical exit model (closed-form N_i fractions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DifficultyDistribution:
    """Beta(alpha, beta) difficulty model over [0, 1].

    The default (2, 3.5) puts the mode near 0.29: most samples are fairly
    easy — consistent with the large early-exit fractions reported by the
    multi-exit literature the paper builds on (BranchyNet, MSDNet).
    """

    alpha: float = 2.0
    beta: float = 3.5

    def __post_init__(self):
        check_positive("alpha", self.alpha)
        check_positive("beta", self.beta)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` difficulty values."""
        return rng.beta(self.alpha, self.beta, size=n)

    def cdf(self, threshold: np.ndarray | float) -> np.ndarray | float:
        """P(difficulty <= threshold): the fraction of samples a capability
        level ``threshold`` classifies correctly."""
        return stats.beta.cdf(np.clip(threshold, 0.0, 1.0), self.alpha, self.beta)

    def quantile(self, q: np.ndarray | float) -> np.ndarray | float:
        """Inverse CDF."""
        return stats.beta.ppf(q, self.alpha, self.beta)

    @property
    def mean(self) -> float:
        """Population mean difficulty."""
        return self.alpha / (self.alpha + self.beta)
