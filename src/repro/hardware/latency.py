"""Roofline latency model over per-layer cost profiles.

Each layer takes ``max(t_compute, t_memory) + dispatch_overhead`` where

* ``t_compute = MACs / (macs_per_cycle · f_core · utilisation(MACs))``
* ``t_memory  = traffic_bytes / (mem_bytes_per_cycle · f_emc)``

The compute/memory activity ratios (``t_compute / t_layer`` etc.) are
retained per layer because the energy model scales rail power by them.

Dispatch overhead is *frequency dependent*: framework work (op scheduling,
tensor management) executes on the clocked SoC, so down-clocking stretches
it.  ``overhead = base * (w0 + wc * f_core_max / f_core + wm * f_emc_max /
f_emc)`` with weights summing to 1 at maximum clocks.  This is what makes
DVFS nearly useless for small dispatch-dominated models but worth 20-30 %
for compute-dominated ones — the differentiation visible across the paper's
Table III rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.arch.cost import LayerCost, NetworkCost
from repro.hardware.dvfs import DvfsSetting
from repro.hardware.platform import HardwarePlatform

#: Overhead composition: fixed fraction, core-clocked fraction, EMC-clocked.
#: Chosen so full-model optimal-DVFS gains land in the paper's 3-15 % band
#: while keeping a non-trivial (core, EMC) optimum away from max clocks.
OVERHEAD_FIXED_FRAC = 0.55
OVERHEAD_CORE_FRAC = 0.20
OVERHEAD_EMC_FRAC = 0.25


@dataclass(frozen=True)
class LayerTiming:
    """Timing of one layer at one DVFS setting."""

    name: str
    total_s: float
    compute_s: float
    memory_s: float
    overhead_s: float

    @property
    def core_activity(self) -> float:
        """Fraction of layer time the compute rail is busy."""
        busy = self.total_s - self.overhead_s
        if busy <= 0:
            return 0.0
        return min(1.0, self.compute_s / busy)

    @property
    def mem_activity(self) -> float:
        """Fraction of layer time the memory rail is busy."""
        busy = self.total_s - self.overhead_s
        if busy <= 0:
            return 0.0
        return min(1.0, self.memory_s / busy)

    @property
    def bound(self) -> str:
        """Which roof the layer sits under."""
        return "compute" if self.compute_s >= self.memory_s else "memory"


@dataclass(frozen=True)
class BatchTiming:
    """Per-layer timing vectors of a layer sequence at one DVFS setting.

    Arrays are indexed like the input layer list.  Every element is
    bit-identical to the matching :class:`LayerTiming` field/property — the
    same float64 expressions evaluated elementwise — which is what lets the
    cost-table kernel replace the per-layer Python loop without changing a
    single result bit.
    """

    total_s: np.ndarray
    compute_s: np.ndarray
    memory_s: np.ndarray
    overhead_s: np.ndarray
    busy_s: np.ndarray
    core_activity: np.ndarray
    mem_activity: np.ndarray


class LatencyModel:
    """Evaluates network latency for one platform.

    ``layer_timing_calls``/``batch_timing_calls`` count kernel invocations;
    the dynamic-eval bench uses them to prove the hot path does no per-layer
    Python iteration once the cost tables are warm.
    """

    def __init__(self, platform: HardwarePlatform):
        self.platform = platform
        self.layer_timing_calls = 0
        self.batch_timing_calls = 0

    def dispatch_overhead_s(self, setting: DvfsSetting) -> float:
        """Per-layer dispatch overhead at a DVFS setting (see module note)."""
        scale = (
            OVERHEAD_FIXED_FRAC
            + OVERHEAD_CORE_FRAC * self.platform.max_core_freq / setting.core_ghz
            + OVERHEAD_EMC_FRAC * self.platform.max_emc_freq / setting.emc_ghz
        )
        return self.platform.dispatch_overhead_s * scale

    def layer_timing(self, layer: LayerCost, setting: DvfsSetting) -> LayerTiming:
        """Roofline timing of a single layer."""
        self.layer_timing_calls += 1
        rate = self.platform.compute_rate_macs_per_s(setting.core_ghz, layer.macs)
        compute_s = layer.macs / rate if layer.macs > 0 else 0.0
        bandwidth = self.platform.memory_bandwidth_bytes_per_s(setting.emc_ghz)
        memory_s = layer.traffic_bytes / bandwidth
        overhead_s = self.dispatch_overhead_s(setting)
        total = max(compute_s, memory_s) + overhead_s
        return LayerTiming(
            name=layer.name,
            total_s=total,
            compute_s=compute_s,
            memory_s=memory_s,
            overhead_s=overhead_s,
        )

    def batch_timing(self, layers: Sequence[LayerCost], setting: DvfsSetting) -> BatchTiming:
        """All layer timings of a sequence in one numpy pass.

        Bit-identical to calling :meth:`layer_timing` per layer: each array
        element is computed by the same float64 expression, just broadcast —
        ``util = (base · macs) / (macs + sat)``, ``rate = ((mpc · f) · 1e9) ·
        util``, ``total = max(compute, memory) + overhead`` — so downstream
        accumulations see the exact same operands.
        """
        n = len(layers)
        macs = np.fromiter((layer.macs for layer in layers), dtype=np.float64, count=n)
        traffic = np.fromiter(
            (layer.traffic_bytes for layer in layers), dtype=np.float64, count=n
        )
        return self.batch_timing_arrays(macs, traffic, setting)

    def batch_timing_arrays(
        self, macs: np.ndarray, traffic: np.ndarray, setting: DvfsSetting
    ) -> BatchTiming:
        """:meth:`batch_timing` from pre-extracted MAC/traffic vectors.

        The cost-table bank extracts its layer vectors once and reuses them
        for every DVFS setting, skipping the per-table attribute walk.
        """
        self.batch_timing_calls += 1
        n = len(macs)
        platform = self.platform
        util = platform.util_base * macs / (macs + platform.util_saturation_macs)
        rate = platform.macs_per_cycle * setting.core_ghz * 1e9 * util
        compute_s = np.zeros(n)
        np.divide(macs, rate, out=compute_s, where=macs > 0)
        memory_s = traffic / platform.memory_bandwidth_bytes_per_s(setting.emc_ghz)
        overhead = self.dispatch_overhead_s(setting)
        overhead_s = np.full(n, overhead)
        total_s = np.maximum(compute_s, memory_s) + overhead
        busy_s = total_s - overhead_s
        positive = busy_s > 0
        core_activity = np.zeros(n)
        np.divide(compute_s, busy_s, out=core_activity, where=positive)
        np.minimum(core_activity, 1.0, out=core_activity)
        mem_activity = np.zeros(n)
        np.divide(memory_s, busy_s, out=mem_activity, where=positive)
        np.minimum(mem_activity, 1.0, out=mem_activity)
        return BatchTiming(
            total_s=total_s,
            compute_s=compute_s,
            memory_s=memory_s,
            overhead_s=overhead_s,
            busy_s=busy_s,
            core_activity=core_activity,
            mem_activity=mem_activity,
        )

    def timings(self, cost: NetworkCost, setting: DvfsSetting) -> list[LayerTiming]:
        """Per-layer timings for a whole network."""
        return [self.layer_timing(layer, setting) for layer in cost.layers]

    def network_latency_s(self, cost: NetworkCost, setting: DvfsSetting) -> float:
        """End-to-end single-image latency (seconds)."""
        return sum(t.total_s for t in self.timings(cost, setting))

    def prefix_latency_s(
        self,
        cost: NetworkCost,
        position: int,
        setting: DvfsSetting,
        exit_layer: LayerCost | None = None,
    ) -> float:
        """Latency of executing up to MBConv ``position`` plus an exit branch.

        This is the early-exit latency L_{x_i, f} of paper eq. 6: the shared
        backbone prefix, plus the exit branch itself when provided.
        """
        total = sum(self.layer_timing(layer, setting).total_s for layer in cost.prefix(position))
        if exit_layer is not None:
            total += self.layer_timing(exit_layer, setting).total_s
        return total
