"""Edge platform descriptions and the four paper devices.

Each :class:`HardwarePlatform` bundles the compute-unit microarchitecture
parameters (effective MACs/cycle, utilisation behaviour, dispatch overhead),
the memory subsystem (bytes per EMC cycle), the voltage–frequency curves and
the power coefficients.  Numbers are order-of-magnitude Jetson values tuned
so that the TX2 Pascal GPU reproduces the scale of paper Table III
(a0 ≈ 174 mJ, a6 ≈ 335 mJ per inference at default clocks); see
EXPERIMENTS.md for the calibration record.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class VoltageCurve:
    """Linear V–f relation between (f_min, v_min) and (f_max, v_max)."""

    f_min_ghz: float
    f_max_ghz: float
    v_min: float
    v_max: float

    def voltage(self, f_ghz: float) -> float:
        """Supply voltage at clock ``f_ghz`` (clamped to the curve range)."""
        f = float(np.clip(f_ghz, self.f_min_ghz, self.f_max_ghz))
        if self.f_max_ghz == self.f_min_ghz:
            return self.v_max
        frac = (f - self.f_min_ghz) / (self.f_max_ghz - self.f_min_ghz)
        return self.v_min + frac * (self.v_max - self.v_min)


@dataclass(frozen=True)
class HardwarePlatform:
    """An edge compute setting: one compute unit + one SoC memory system.

    Attributes
    ----------
    macs_per_cycle:
        Effective MAC throughput per core clock cycle at full utilisation.
    util_base, util_saturation_macs:
        Utilisation of ``macs_per_cycle`` grows with layer size as
        ``util_base * macs / (macs + util_saturation_macs)`` — small layers
        cannot fill the machine.
    dispatch_overhead_s:
        Fixed per-layer cost (kernel launch / op scheduling).
    mem_bytes_per_cycle:
        DRAM bytes transferred per EMC clock cycle.
    core_freqs_ghz / emc_freqs_ghz:
        The DVFS grids (paper Table II).
    c_eff_core / c_eff_mem:
        Switched-capacitance coefficients in W / (V² · GHz).
    c_eff_mem_idle:
        DRAM background (refresh + controller) coefficient in W / (V² · GHz);
        burns for the *whole* inference at the chosen EMC clock — the
        dominant reason memory down-clocking saves energy on compute-bound
        workloads.
    p_idle_w, p_leak_w_per_v:
        Rail idle power and voltage-proportional leakage.
    """

    name: str
    key: str
    kind: str  # "gpu" | "cpu"
    macs_per_cycle: float
    util_base: float
    util_saturation_macs: float
    dispatch_overhead_s: float
    mem_bytes_per_cycle: float
    core_freqs_ghz: tuple[float, ...]
    emc_freqs_ghz: tuple[float, ...]
    core_voltage: VoltageCurve
    mem_voltage: VoltageCurve
    c_eff_core: float
    c_eff_mem: float
    c_eff_mem_idle: float
    p_idle_w: float
    p_leak_w_per_v: float

    def __post_init__(self):
        check_positive("macs_per_cycle", self.macs_per_cycle)
        check_positive("mem_bytes_per_cycle", self.mem_bytes_per_cycle)
        if self.kind not in ("gpu", "cpu"):
            raise ValueError(f"kind must be 'gpu' or 'cpu', got {self.kind!r}")
        if list(self.core_freqs_ghz) != sorted(self.core_freqs_ghz):
            raise ValueError("core_freqs_ghz must be sorted ascending")
        if list(self.emc_freqs_ghz) != sorted(self.emc_freqs_ghz):
            raise ValueError("emc_freqs_ghz must be sorted ascending")

    # ------------------------------------------------------------ throughput
    def utilization(self, layer_macs: float) -> float:
        """Fraction of peak throughput achieved by a layer of given size."""
        return self.util_base * layer_macs / (layer_macs + self.util_saturation_macs)

    def compute_rate_macs_per_s(self, f_core_ghz: float, layer_macs: float) -> float:
        """Achieved MAC rate for a layer at a core clock."""
        return self.macs_per_cycle * f_core_ghz * 1e9 * self.utilization(layer_macs)

    def memory_bandwidth_bytes_per_s(self, f_emc_ghz: float) -> float:
        """DRAM bandwidth at an EMC clock."""
        return self.mem_bytes_per_cycle * f_emc_ghz * 1e9

    @property
    def max_core_freq(self) -> float:
        return self.core_freqs_ghz[-1]

    @property
    def max_emc_freq(self) -> float:
        return self.emc_freqs_ghz[-1]

    def with_overrides(self, **kwargs) -> "HardwarePlatform":
        """Return a copy with selected fields replaced (for ablations)."""
        return replace(self, **kwargs)


def _grid(lo: float, hi: float, n: int) -> tuple[float, ...]:
    return tuple(round(float(f), 4) for f in np.linspace(lo, hi, n))


def agx_volta_gpu() -> HardwarePlatform:
    """Jetson AGX Xavier Volta GPU (512 CUDA cores) + AGX LPDDR4x EMC.

    Table II: GPU frequency in [0.1, 1.4] GHz with 14 levels; AGX EMC in
    [0.2, 2.1] GHz with 9 levels.
    """
    return HardwarePlatform(
        name="AGX Volta GPU",
        key="agx-gpu",
        kind="gpu",
        macs_per_cycle=1024.0,
        util_base=0.07,
        util_saturation_macs=1.5e6,
        dispatch_overhead_s=650e-6,
        mem_bytes_per_cycle=64.0,
        core_freqs_ghz=_grid(0.1, 1.4, 14),
        emc_freqs_ghz=_grid(0.2, 2.1, 9),
        core_voltage=VoltageCurve(0.1, 1.4, 0.62, 1.10),
        mem_voltage=VoltageCurve(0.2, 2.1, 0.60, 1.05),
        c_eff_core=5.5,
        c_eff_mem=1.9,
        c_eff_mem_idle=1.3,
        p_idle_w=1.0,
        p_leak_w_per_v=3.0,
    )


def agx_carmel_cpu() -> HardwarePlatform:
    """Jetson AGX Xavier Carmel ARM v8.2 CPU (8 cores) + AGX EMC.

    Table II: CPU frequency in [0.1, 2.3] GHz with 29 levels.
    """
    return HardwarePlatform(
        name="Carmel ARM v8.2 CPU",
        key="carmel-cpu",
        kind="cpu",
        macs_per_cycle=16.0,
        util_base=0.12,
        util_saturation_macs=2.0e5,
        dispatch_overhead_s=40e-6,
        mem_bytes_per_cycle=48.0,
        core_freqs_ghz=_grid(0.1, 2.3, 29),
        emc_freqs_ghz=_grid(0.2, 2.1, 9),
        core_voltage=VoltageCurve(0.1, 2.3, 0.58, 1.15),
        mem_voltage=VoltageCurve(0.2, 2.1, 0.60, 1.05),
        c_eff_core=1.2,
        c_eff_mem=1.9,
        c_eff_mem_idle=1.3,
        p_idle_w=0.8,
        p_leak_w_per_v=1.5,
    )


def tx2_pascal_gpu() -> HardwarePlatform:
    """Jetson TX2 Pascal GPU (256 CUDA cores) + TX2 LPDDR4 EMC.

    Table II: GPU frequency in [0.1, 1.4] GHz with 13 levels; TX2 EMC in
    [0.2, 1.8] GHz with 11 levels.
    """
    return HardwarePlatform(
        name="TX2 Pascal GPU",
        key="tx2-gpu",
        kind="gpu",
        macs_per_cycle=512.0,
        util_base=0.07,
        util_saturation_macs=1.0e6,
        dispatch_overhead_s=900e-6,
        mem_bytes_per_cycle=32.0,
        core_freqs_ghz=_grid(0.1, 1.4, 13),
        emc_freqs_ghz=_grid(0.2, 1.8, 11),
        core_voltage=VoltageCurve(0.1, 1.4, 0.65, 1.10),
        mem_voltage=VoltageCurve(0.2, 1.8, 0.60, 1.05),
        c_eff_core=3.5,
        c_eff_mem=1.6,
        c_eff_mem_idle=1.0,
        p_idle_w=1.0,
        p_leak_w_per_v=2.6,
    )


def tx2_denver_cpu() -> HardwarePlatform:
    """Jetson TX2 Denver CPU (2 wide cores) + TX2 EMC.

    Table II: CPU frequency in [0.3, 2.1] GHz with 12 levels.
    """
    return HardwarePlatform(
        name="NVIDIA Denver CPU",
        key="denver-cpu",
        kind="cpu",
        macs_per_cycle=8.0,
        util_base=0.12,
        util_saturation_macs=1.0e5,
        dispatch_overhead_s=30e-6,
        mem_bytes_per_cycle=32.0,
        core_freqs_ghz=_grid(0.3, 2.1, 12),
        emc_freqs_ghz=_grid(0.2, 1.8, 11),
        core_voltage=VoltageCurve(0.3, 2.1, 0.60, 1.12),
        mem_voltage=VoltageCurve(0.2, 1.8, 0.60, 1.05),
        c_eff_core=0.9,
        c_eff_mem=1.6,
        c_eff_mem_idle=1.0,
        p_idle_w=0.6,
        p_leak_w_per_v=1.2,
    )


PLATFORM_BUILDERS = {
    "agx-gpu": agx_volta_gpu,
    "carmel-cpu": agx_carmel_cpu,
    "tx2-gpu": tx2_pascal_gpu,
    "denver-cpu": tx2_denver_cpu,
}

#: Paper presentation order (Fig. 5 left to right).
PAPER_PLATFORM_ORDER = ("agx-gpu", "carmel-cpu", "tx2-gpu", "denver-cpu")

#: Colloquial device names accepted anywhere a platform key is (``--fleet
#: tx2,xavier``); values are canonical ``PLATFORM_BUILDERS`` keys.
PLATFORM_ALIASES = {
    "tx2": "tx2-gpu",
    "xavier": "agx-gpu",
    "agx": "agx-gpu",
    "carmel": "carmel-cpu",
    "denver": "denver-cpu",
}


def canonical_platform_key(key: str) -> str:
    """Resolve an alias ("tx2", "xavier") to its canonical platform key.

    Canonical keys pass through unchanged; unknown names also pass through —
    validation (with its helpful error message) stays the job of
    :func:`validate_platform_keys`.
    """
    return PLATFORM_ALIASES.get(key, key)


def resolve_platform_keys(keys) -> list[str]:
    """Alias-resolve *and* validate a sequence of platform names."""
    resolved = [canonical_platform_key(key) for key in keys]
    validate_platform_keys(resolved)
    return resolved


def validate_platform_keys(keys) -> None:
    """Raise ``ValueError`` naming every unknown key and the valid set.

    CLI front-ends wrap this into a clean usage error instead of letting a
    bad ``--platform``/``--platforms`` argument surface as a deep KeyError
    mid-experiment.
    """
    unknown = [key for key in keys if key not in PLATFORM_BUILDERS]
    if unknown:
        raise ValueError(
            f"unknown platform{'s' if len(unknown) > 1 else ''} "
            + ", ".join(repr(k) for k in unknown)
            + f"; valid platforms: {', '.join(PAPER_PLATFORM_ORDER)}"
        )


def get_platform(key: str) -> HardwarePlatform:
    """Look up one of the four paper platforms by key."""
    if key not in PLATFORM_BUILDERS:
        raise KeyError(f"unknown platform {key!r}; available: {sorted(PLATFORM_BUILDERS)}")
    return PLATFORM_BUILDERS[key]()


def list_platforms() -> list[HardwarePlatform]:
    """All four paper platforms, in paper presentation order."""
    return [PLATFORM_BUILDERS[key]() for key in PAPER_PLATFORM_ORDER]
