"""Per-(network, DVFS setting) cost tables: the vectorized dynamic-eval kernel.

A paper-budget inner run performs thousands of dynamic evaluations, and each
one used to re-walk the backbone prefix layer by layer in Python for every
exit — an O(layers × exits) loop whose per-layer terms depend only on
``(layer, setting)``.  A :class:`SettingCostTable` precomputes those terms
once: per-layer vectors of roofline time, busy time, dispatch overhead and
the four rail-energy contributions, plus their cumulative sums.  A backbone
prefix report then becomes a cumsum lookup at the prefix index, and an
early-exit path costs one cached scalar per traversed exit branch — O(exits)
array work per candidate.

Bit-identity contract: every number a table produces equals the reference
per-layer loop (:meth:`EnergyModel._accumulate_reference`) bit for bit.
``np.cumsum`` sums strictly left to right (matching the loop's accumulator),
the memory rail's two per-layer terms are interleaved before summation to
preserve their in-loop addition order (float addition is not associative),
and branch scalars are added to the gathered prefix values in the exact
sequence the loop appends branch layers.

A :class:`CostTableBank` lazily materialises one table per setting over the
finite core × EMC grid and is shared across a whole inner run: every
placement evaluated at a seen setting reuses the same table and the same
cached branch scalars.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.arch.cost import LayerCost, NetworkCost
from repro.hardware.dvfs import DvfsSetting
from repro.obs import trace
from repro.hardware.energy import (
    EnergyModel,
    EnergyReport,
    PathProfile,
    interleaved_cumsum,
)


@dataclass(frozen=True)
class BranchTerms:
    """Scalar cost terms of one exit branch at one DVFS setting."""

    total_s: float
    busy_s: float
    overhead_s: float
    core_j: float
    mem_dyn_j: float
    mem_bg_j: float
    static_j: float


class SettingCostTable:
    """Precomputed per-layer cost vectors of one network at one setting.

    Cumulative arrays are indexed like ``cost.layers``; ``cum_*[i]`` is the
    reference loop's accumulator value after processing layer ``i``.  Exit
    branches are cached as per-position scalars — one branch profile per
    position, which holds by construction (the evaluator derives the branch
    from the backbone's channels at that position).

    ``branch_items`` — optional ``(position, branch LayerCost)`` pairs —
    lets the whole table (backbone vectors *and* every branch scalar) come
    out of a single batched timing pass: the branch layers are appended to
    the backbone for one kernel invocation, then split off.  Elementwise
    kernels make this bit-identical to timing them separately.
    """

    def __init__(
        self,
        model: EnergyModel,
        cost: NetworkCost,
        setting: DvfsSetting,
        branch_items: Sequence[tuple[int, LayerCost]] = (),
        layer_arrays: tuple[np.ndarray, np.ndarray] | None = None,
    ):
        self.setting = setting
        self.cost = cost
        self._model = model
        branch_items = list(branch_items)
        if layer_arrays is None:
            layers = cost.layers + [layer for _, layer in branch_items]
            timing = model.latency.batch_timing(layers, setting)
        else:
            # Bank-precomputed (macs, traffic) over layers + branches: the
            # attribute walk happens once per bank, not once per setting.
            timing = model.latency.batch_timing_arrays(*layer_arrays, setting)
        core, mem_dyn, mem_bg, static = model.layer_energy_terms(timing, setting)
        n = len(cost.layers)
        self.cum_total = np.cumsum(timing.total_s[:n])
        self.cum_core = np.cumsum(core[:n])
        self.cum_mem = interleaved_cumsum(mem_dyn[:n], mem_bg[:n])
        self.cum_static = np.cumsum(static[:n])
        # Path-profile accumulators (see :class:`~repro.hardware.energy.
        # PathProfile`): busy/overhead split and the dynamic-rail energy
        # (core and mem_dyn interleaved, matching the reference profile's
        # per-layer addition order).  Serving-ladder construction reads
        # these instead of re-walking layers through the timing kernel.
        self.cum_busy = np.cumsum(timing.busy_s[:n])
        self.cum_overhead = np.cumsum(timing.overhead_s[:n])
        self.cum_dynamic = interleaved_cumsum(core[:n], mem_dyn[:n])
        self.passive_power_w = model.power.static_power(
            setting
        ) + model.power.mem_background_power(setting)
        self._branch: dict[int, BranchTerms] = {}
        if branch_items:
            columns = zip(
                timing.total_s[n:].tolist(),
                timing.busy_s[n:].tolist(),
                timing.overhead_s[n:].tolist(),
                core[n:].tolist(),
                mem_dyn[n:].tolist(),
                mem_bg[n:].tolist(),
                static[n:].tolist(),
            )
            for (position, _), values in zip(branch_items, columns):
                self._branch[position] = BranchTerms(*values)

    # ------------------------------------------------------------- indexing
    def prefix_end(self, position: int) -> int:
        """Cumulative-array index of the prefix ending at MBConv ``position``."""
        return self.cost.prefix_end(position)

    # -------------------------------------------------------- branch scalars
    def _terms(self, layer: LayerCost) -> BranchTerms:
        timing = self._model.latency.batch_timing([layer], self.setting)
        core, mem_dyn, mem_bg, static = self._model.layer_energy_terms(
            timing, self.setting
        )
        return BranchTerms(
            total_s=float(timing.total_s[0]),
            busy_s=float(timing.busy_s[0]),
            overhead_s=float(timing.overhead_s[0]),
            core_j=float(core[0]),
            mem_dyn_j=float(mem_dyn[0]),
            mem_bg_j=float(mem_bg[0]),
            static_j=float(static[0]),
        )

    def branch_terms(self, position: int, layer: LayerCost) -> BranchTerms:
        """Cached scalar costs of the exit branch attached at ``position``.

        ``setdefault`` keeps the write idempotent under concurrent callers
        (thread-executor runs sharing a bank): racing threads compute the
        same deterministic terms and exactly one value is kept.
        """
        terms = self._branch.get(position)
        if terms is None:
            terms = self._branch.setdefault(position, self._terms(layer))
        return terms

    # ------------------------------------------------------------ path costs
    def exit_path_costs(
        self, positions: Sequence[int], branch_layers: Sequence[LayerCost]
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(energy_j, latency_s)`` arrays of a placement's early-exit paths.

        Element ``i`` covers the backbone prefix up to ``positions[i]`` plus
        the branches at ``positions[: i + 1]`` — gathered from the
        cumulative arrays, then branch scalars added in exactly the order
        the reference loop appends branch layers (branch ``j`` lands on
        every exit ``i >= j`` before branch ``j + 1`` does).
        """
        count = len(positions)
        indices = np.fromiter(
            (self.prefix_end(p) for p in positions), dtype=np.intp, count=count
        )
        latency = self.cum_total[indices]
        core = self.cum_core[indices]
        mem = self.cum_mem[indices]
        static = self.cum_static[indices]
        for j, (position, layer) in enumerate(zip(positions, branch_layers)):
            terms = self.branch_terms(position, layer)
            latency[j:] += terms.total_s
            core[j:] += terms.core_j
            mem[j:] += terms.mem_dyn_j
            mem[j:] += terms.mem_bg_j
            static[j:] += terms.static_j
        return core + mem + static, latency

    def full_path_cost(
        self, positions: Sequence[int], branch_layers: Sequence[LayerCost]
    ) -> tuple[float, float]:
        """``(energy_j, latency_s)`` of the full network plus every branch."""
        latency = float(self.cum_total[-1])
        core = float(self.cum_core[-1])
        mem = float(self.cum_mem[-1])
        static = float(self.cum_static[-1])
        for position, layer in zip(positions, branch_layers):
            terms = self.branch_terms(position, layer)
            latency += terms.total_s
            core += terms.core_j
            mem += terms.mem_dyn_j
            mem += terms.mem_bg_j
            static += terms.static_j
        return (core + mem + static), latency

    # ---------------------------------------------------------- path profiles
    def exit_path_profile(
        self,
        positions: Sequence[int],
        branch_layers: Sequence[LayerCost],
        index: int,
    ) -> PathProfile:
        """Batch-decomposable profile of the path leaving at exit ``index``.

        Bit-identical to :meth:`EnergyModel.path_profile` over the prefix up
        to ``positions[index]`` plus the branches at ``positions[: index+1]``:
        the gathered cumulative values continue the reference cumsums, and
        branch scalars are added in the loop's append order (core before
        mem_dyn per branch, preserving the dynamic rail's interleave).
        """
        end = self.prefix_end(positions[index])
        busy = float(self.cum_busy[end])
        overhead = float(self.cum_overhead[end])
        dynamic = float(self.cum_dynamic[end])
        for position, layer in zip(positions[: index + 1], branch_layers[: index + 1]):
            terms = self.branch_terms(position, layer)
            busy += terms.busy_s
            overhead += terms.overhead_s
            dynamic += terms.core_j
            dynamic += terms.mem_dyn_j
        return PathProfile(
            busy_s=busy,
            overhead_s=overhead,
            dynamic_energy_j=dynamic,
            passive_power_w=self.passive_power_w,
        )

    def full_path_profile(
        self, positions: Sequence[int], branch_layers: Sequence[LayerCost]
    ) -> PathProfile:
        """Profile of the full network plus every branch (the final path)."""
        busy = float(self.cum_busy[-1])
        overhead = float(self.cum_overhead[-1])
        dynamic = float(self.cum_dynamic[-1])
        for position, layer in zip(positions, branch_layers):
            terms = self.branch_terms(position, layer)
            busy += terms.busy_s
            overhead += terms.overhead_s
            dynamic += terms.core_j
            dynamic += terms.mem_dyn_j
        return PathProfile(
            busy_s=busy,
            overhead_s=overhead,
            dynamic_energy_j=dynamic,
            passive_power_w=self.passive_power_w,
        )

    # --------------------------------------------------------------- reports
    def _report_at(self, index: int) -> tuple[float, float, float, float]:
        """(latency, core, mem, static) accumulator values after ``index``."""
        return (
            float(self.cum_total[index]),
            float(self.cum_core[index]),
            float(self.cum_mem[index]),
            float(self.cum_static[index]),
        )

    def prefix_report(
        self, position: int, exit_layer: LayerCost | None = None
    ) -> EnergyReport:
        """Cumsum-lookup equivalent of :meth:`EnergyModel.prefix_report`.

        Bit-identical to accumulating ``cost.prefix(position)`` (plus the
        optional exit branch) through the reference loop.  The branch terms
        are computed fresh here — ``exit_layer`` need not be the canonical
        branch for ``position``.
        """
        latency, core, mem, static = self._report_at(self.prefix_end(position))
        if exit_layer is not None:
            terms = self._terms(exit_layer)
            latency += terms.total_s
            core += terms.core_j
            mem += terms.mem_dyn_j
            mem += terms.mem_bg_j
            static += terms.static_j
        return EnergyReport(
            latency_s=latency,
            energy_j=core + mem + static,
            core_energy_j=core,
            mem_energy_j=mem,
            static_energy_j=static,
        )

    def network_report(self) -> EnergyReport:
        """Full-network report (all layers, no branches) from the tables."""
        latency, core, mem, static = self._report_at(len(self.cost.layers) - 1)
        return EnergyReport(
            latency_s=latency,
            energy_j=core + mem + static,
            core_energy_j=core,
            mem_energy_j=mem,
            static_energy_j=static,
        )


class CostTableBank:
    """Lazy per-setting :class:`SettingCostTable` store for one network.

    One bank lives for a whole inner run (it hangs off the run's
    :class:`~repro.eval.dynamic.DynamicEvaluator`), so the thousands of
    (placement, setting) evaluations share tables: a seen setting costs one
    dict lookup, and the finite core × EMC grid bounds the bank's size.

    ``branch_items`` (static) or ``branch_provider`` (lazy callable) hands
    every table its exit-branch layers up front, so a fresh setting costs
    exactly one batched kernel pass for the backbone *and* all branches.
    """

    def __init__(
        self,
        model: EnergyModel,
        cost: NetworkCost,
        branch_items: Sequence[tuple[int, LayerCost]] = (),
        branch_provider=None,
    ):
        self.model = model
        self.cost = cost
        self._branch_items = list(branch_items)
        self._branch_provider = branch_provider
        self._layer_arrays: tuple[np.ndarray, np.ndarray] | None = None
        self._tables: dict[tuple[float, float], SettingCostTable] = {}
        self._lock = threading.Lock()

    def table(self, setting: DvfsSetting) -> SettingCostTable:
        """The (lazily built) table for ``setting``.

        Thread-safe: the hot path is a lock-free dict read (a seen setting
        costs one lookup); misses take a lock with a double-checked read, so
        thread-executor inner runs sharing a bank neither race on the
        branch-provider resolution nor build duplicate tables.
        """
        key = (setting.core_ghz, setting.emc_ghz)
        table = self._tables.get(key)
        if table is None:
            # Timed only on the miss path, so the lock-free hit costs nothing
            # extra; when tracing is off the clock reads are skipped too.
            timing = trace.active() is not None
            wait_start = time.perf_counter() if timing else 0.0
            with self._lock:
                if timing:
                    trace.observe(
                        "cost_table.lock_wait_s", time.perf_counter() - wait_start
                    )
                table = self._tables.get(key)
                if table is None:
                    with trace.span(
                        "cost_table.build", core=key[0], emc=key[1]
                    ):
                        table = self._build_table(setting)
                    trace.count("cost_table.builds")
                    self._tables[key] = table
                else:
                    trace.count("cost_table.build_races")
        return table

    def _build_table(self, setting: DvfsSetting) -> SettingCostTable:
        """Materialise one table (caller holds the lock)."""
        if self._branch_provider is not None:
            self._branch_items = list(self._branch_provider())
            self._branch_provider = None
        if self._layer_arrays is None:
            layers = self.cost.layers + [layer for _, layer in self._branch_items]
            self._layer_arrays = (
                np.fromiter(
                    (layer.macs for layer in layers),
                    dtype=np.float64,
                    count=len(layers),
                ),
                np.fromiter(
                    (layer.traffic_bytes for layer in layers),
                    dtype=np.float64,
                    count=len(layers),
                ),
            )
        return SettingCostTable(
            self.model,
            self.cost,
            setting,
            branch_items=self._branch_items,
            layer_arrays=self._layer_arrays,
        )

    def __len__(self) -> int:
        """Number of settings materialised so far."""
        return len(self._tables)
