"""Edge hardware models: platforms, DVFS space F, latency, power, energy.

The paper measures four NVIDIA Jetson compute settings hardware-in-the-loop:
AGX Volta GPU, Carmel ARM v8.2 CPU (both on the AGX SoC), TX2 Pascal GPU and
Denver CPU (both on the TX2 SoC).  This package replaces the physical devices
with first-principles analytical models:

* **Latency** — a per-layer roofline: a layer is compute-bound
  (MACs / effective throughput at the core clock) or memory-bound
  (DRAM traffic / bandwidth at the EMC clock), plus a per-layer dispatch
  overhead.
* **Power** — CMOS scaling: ``P = P_idle + P_leak(V) + C_eff · V² · f · a``
  with a device V–f curve, evaluated separately for the compute unit and the
  external memory controller (EMC).
* **Energy** — per-layer power × time, summed; convex in frequency, so DVFS
  has a genuine per-workload sweet spot.
* **Measurement** — :class:`~repro.hardware.measurement.HardwareInTheLoop`
  wraps the models with warm-up, repetition and multiplicative noise to
  emulate the paper's measurement setup, with a lookup-table cache.

DVFS frequency grids follow paper Table II exactly (count and range).
"""

from repro.hardware.cost_table import CostTableBank, SettingCostTable
from repro.hardware.dvfs import DvfsSetting, DvfsSpace
from repro.hardware.energy import EnergyModel, EnergyReport
from repro.hardware.latency import BatchTiming, LatencyModel, LayerTiming
from repro.hardware.measurement import HardwareInTheLoop, Measurement
from repro.hardware.platform import (
    PLATFORM_BUILDERS,
    HardwarePlatform,
    agx_carmel_cpu,
    agx_volta_gpu,
    get_platform,
    list_platforms,
    tx2_denver_cpu,
    tx2_pascal_gpu,
)
from repro.hardware.power import PowerModel

__all__ = [
    "HardwarePlatform",
    "get_platform",
    "list_platforms",
    "PLATFORM_BUILDERS",
    "agx_volta_gpu",
    "agx_carmel_cpu",
    "tx2_pascal_gpu",
    "tx2_denver_cpu",
    "DvfsSetting",
    "DvfsSpace",
    "PowerModel",
    "LatencyModel",
    "LayerTiming",
    "BatchTiming",
    "EnergyModel",
    "EnergyReport",
    "CostTableBank",
    "SettingCostTable",
    "HardwareInTheLoop",
    "Measurement",
]
