"""Simulated hardware-in-the-loop measurement.

The paper obtains latency/energy estimates "based on hardware measurements —
as through a HW-in-the-loop setup (adopted here), lookup tables, or
prediction models".  This module emulates that setup on top of the analytical
models: warm-up runs, repeated timed runs with multiplicative lognormal
noise, and a lookup-table cache keyed by (network, setting) so repeated
queries are free — mirroring how a real measurement harness amortises cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.cost import NetworkCost
from repro.hardware.dvfs import DvfsSetting
from repro.hardware.energy import EnergyModel
from repro.hardware.platform import HardwarePlatform
from repro.utils.rng import child_rng
from repro.utils.validation import check_nonneg, check_positive


@dataclass(frozen=True)
class Measurement:
    """Aggregated repeated measurement of one (network, setting) pair."""

    latency_s_mean: float
    latency_s_std: float
    energy_j_mean: float
    energy_j_std: float
    repeats: int


class HardwareInTheLoop:
    """Noisy measurement wrapper with warm-up and LUT caching.

    Parameters
    ----------
    platform:
        The device model to "measure".
    noise_cv:
        Coefficient of variation of the multiplicative measurement noise
        (2 % by default — typical of Jetson power-rail sampling).
    repeats, warmup:
        Timed and discarded runs per query.
    seed:
        Root seed; noise streams are keyed per (network, setting) so a
        re-measurement of the same point reproduces exactly.
    """

    def __init__(
        self,
        platform: HardwarePlatform,
        noise_cv: float = 0.02,
        repeats: int = 5,
        warmup: int = 2,
        seed: int = 0,
    ):
        check_nonneg("noise_cv", noise_cv)
        check_positive("repeats", repeats)
        self.platform = platform
        self.model = EnergyModel(platform)
        self.noise_cv = noise_cv
        self.repeats = repeats
        self.warmup = warmup
        self.seed = seed
        self._cache: dict[tuple[str, float, float], Measurement] = {}
        self.query_count = 0
        self.cache_hits = 0

    def _noise(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.noise_cv == 0:
            return np.ones(n)
        sigma = np.sqrt(np.log1p(self.noise_cv**2))
        return rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=n)

    def measure(self, cost: NetworkCost, setting: DvfsSetting) -> Measurement:
        """Measure latency/energy of a network at a DVFS setting."""
        key = (cost.config_key, setting.core_ghz, setting.emc_ghz)
        self.query_count += 1
        if key in self._cache:
            self.cache_hits += 1
            return self._cache[key]

        report = self.model.network_report(cost, setting)
        rng = child_rng(self.seed, "hwil", *key)
        # Warm-up draws are consumed and discarded, like discarded runs.
        self._noise(rng, self.warmup)
        lat = report.latency_s * self._noise(rng, self.repeats)
        erg = report.energy_j * self._noise(rng, self.repeats)
        measurement = Measurement(
            latency_s_mean=float(lat.mean()),
            latency_s_std=float(lat.std()),
            energy_j_mean=float(erg.mean()),
            energy_j_std=float(erg.std()),
            repeats=self.repeats,
        )
        self._cache[key] = measurement
        return measurement

    @property
    def cache_size(self) -> int:
        return len(self._cache)
