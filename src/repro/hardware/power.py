"""CMOS power model for the compute rail and the memory rail.

Dynamic power follows the classic switched-capacitance law
``P_dyn = C_eff · V² · f · activity`` with the platform's linear V–f curve;
static power is rail idle plus voltage-proportional leakage.  The *activity*
factors come from the roofline timing: a layer that is memory-bound leaves
the compute rail partially idle and vice versa, which is what gives each
workload its own optimal DVFS point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.dvfs import DvfsSetting
from repro.hardware.platform import HardwarePlatform
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class PowerBreakdown:
    """Average power (W) split by rail."""

    core_dynamic_w: float
    mem_dynamic_w: float
    mem_background_w: float
    static_w: float

    @property
    def total_w(self) -> float:
        return (
            self.core_dynamic_w + self.mem_dynamic_w
            + self.mem_background_w + self.static_w
        )


class PowerModel:
    """Evaluates rail power for a platform at a DVFS setting."""

    def __init__(self, platform: HardwarePlatform):
        self.platform = platform

    def core_voltage(self, setting: DvfsSetting) -> float:
        """Core supply voltage at the setting."""
        return self.platform.core_voltage.voltage(setting.core_ghz)

    def mem_voltage(self, setting: DvfsSetting) -> float:
        """Memory rail voltage at the setting."""
        return self.platform.mem_voltage.voltage(setting.emc_ghz)

    def static_power(self, setting: DvfsSetting) -> float:
        """Idle plus leakage power (W); leakage scales with core voltage."""
        return self.platform.p_idle_w + self.platform.p_leak_w_per_v * self.core_voltage(setting)

    def mem_background_power(self, setting: DvfsSetting) -> float:
        """DRAM refresh/controller power at the EMC clock (always on)."""
        v = self.mem_voltage(setting)
        return self.platform.c_eff_mem_idle * v * v * setting.emc_ghz

    def core_dynamic_power(self, setting: DvfsSetting, activity: float = 1.0) -> float:
        """Compute-rail dynamic power at a given activity factor."""
        check_probability("activity", activity)
        v = self.core_voltage(setting)
        return self.platform.c_eff_core * v * v * setting.core_ghz * activity

    def mem_dynamic_power(self, setting: DvfsSetting, activity: float = 1.0) -> float:
        """Memory-rail dynamic power at a given activity factor."""
        check_probability("activity", activity)
        v = self.mem_voltage(setting)
        return self.platform.c_eff_mem * v * v * setting.emc_ghz * activity

    def breakdown(
        self, setting: DvfsSetting, core_activity: float = 1.0, mem_activity: float = 1.0
    ) -> PowerBreakdown:
        """Full rail breakdown at the given activity factors."""
        return PowerBreakdown(
            core_dynamic_w=self.core_dynamic_power(setting, core_activity),
            mem_dynamic_w=self.mem_dynamic_power(setting, mem_activity),
            mem_background_w=self.mem_background_power(setting),
            static_w=self.static_power(setting),
        )
