"""Per-inference energy from roofline timing and rail power.

Each layer contributes ``(P_static + P_core·a_core + P_mem·a_mem) · t_layer``
where the activity factors come from its roofline occupancy.  Dispatch
overhead burns static power only.  The resulting energy-vs-frequency surface
is convex with a workload-dependent minimum: at low clocks static energy
dominates (run-to-idle argument), at high clocks the V²f term dominates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.cost import LayerCost, NetworkCost
from repro.hardware.dvfs import DvfsSetting
from repro.hardware.latency import LatencyModel
from repro.hardware.platform import HardwarePlatform
from repro.hardware.power import PowerModel


@dataclass(frozen=True)
class EnergyReport:
    """Latency and energy of one network execution at one DVFS setting."""

    latency_s: float
    energy_j: float
    core_energy_j: float
    mem_energy_j: float
    static_energy_j: float

    @property
    def average_power_w(self) -> float:
        if self.latency_s <= 0:
            return 0.0
        return self.energy_j / self.latency_s


class EnergyModel:
    """Evaluates latency + energy jointly for one platform."""

    def __init__(self, platform: HardwarePlatform):
        self.platform = platform
        self.latency = LatencyModel(platform)
        self.power = PowerModel(platform)

    def layer_energy_j(self, layer: LayerCost, setting: DvfsSetting) -> float:
        """Energy of a single layer (J)."""
        return self._accumulate([layer], setting).energy_j

    def _accumulate(self, layers: list[LayerCost], setting: DvfsSetting) -> EnergyReport:
        p_static = self.power.static_power(setting)
        p_mem_bg = self.power.mem_background_power(setting)
        core_j = mem_j = static_j = 0.0
        latency_s = 0.0
        for layer in layers:
            timing = self.latency.layer_timing(layer, setting)
            busy = timing.total_s - timing.overhead_s
            core_j += self.power.core_dynamic_power(setting, 1.0) * busy * timing.core_activity
            mem_j += self.power.mem_dynamic_power(setting, 1.0) * busy * timing.mem_activity
            mem_j += p_mem_bg * timing.total_s
            static_j += p_static * timing.total_s
            latency_s += timing.total_s
        return EnergyReport(
            latency_s=latency_s,
            energy_j=core_j + mem_j + static_j,
            core_energy_j=core_j,
            mem_energy_j=mem_j,
            static_energy_j=static_j,
        )

    def composite_report(self, layers: list[LayerCost], setting: DvfsSetting) -> EnergyReport:
        """Latency/energy of an arbitrary layer sequence (e.g. prefix +
        several exit branches — the early-exit execution paths)."""
        return self._accumulate(layers, setting)

    def network_report(self, cost: NetworkCost, setting: DvfsSetting) -> EnergyReport:
        """Latency/energy of the full network."""
        return self._accumulate(cost.layers, setting)

    def network_energy_j(self, cost: NetworkCost, setting: DvfsSetting) -> float:
        """Full-network energy (J)."""
        return self.network_report(cost, setting).energy_j

    def prefix_report(
        self,
        cost: NetworkCost,
        position: int,
        setting: DvfsSetting,
        exit_layer: LayerCost | None = None,
    ) -> EnergyReport:
        """Latency/energy of the backbone prefix up to MBConv ``position``
        plus an optional exit branch — E_{x_i, f} and L_{x_i, f} of eq. 6."""
        layers = list(cost.prefix(position))
        if exit_layer is not None:
            layers.append(exit_layer)
        return self._accumulate(layers, setting)
