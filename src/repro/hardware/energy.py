"""Per-inference energy from roofline timing and rail power.

Each layer contributes ``(P_static + P_core·a_core + P_mem·a_mem) · t_layer``
where the activity factors come from its roofline occupancy.  Dispatch
overhead burns static power only.  The resulting energy-vs-frequency surface
is convex with a workload-dependent minimum: at low clocks static energy
dominates (run-to-idle argument), at high clocks the V²f term dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.arch.cost import LayerCost, NetworkCost
from repro.hardware.dvfs import DvfsSetting
from repro.hardware.latency import BatchTiming, LatencyModel
from repro.hardware.platform import HardwarePlatform
from repro.hardware.power import PowerModel


def interleaved_cumsum(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Running totals of the alternating sequence ``first_0, second_0,
    first_1, second_1, ...``, reported after each pair.

    Element ``i`` is the float64 result of adding ``first_0, second_0, ..,
    first_i, second_i`` strictly left to right — exactly what a Python loop
    doing ``acc += first[i]; acc += second[i]`` produces.  The memory-rail
    accumulator adds two terms per layer in that order, and float addition
    is not associative, so a plain cumsum of ``first + second`` would drift
    by ULPs; the interleave preserves the reference association.
    """
    interleaved = np.empty(2 * len(first))
    interleaved[0::2] = first
    interleaved[1::2] = second
    return np.cumsum(interleaved)[1::2]


@dataclass(frozen=True)
class PathProfile:
    """Execution profile of one request path, split for batch accounting.

    ``busy_s`` is roofline compute/memory time (serialised across a batch),
    ``overhead_s`` is per-layer dispatch overhead (shared across a batch —
    co-scheduled requests reuse the same kernel launches), ``dynamic_energy_j``
    is the activity-scaled rail energy and ``passive_power_w`` the always-on
    power (static + DRAM background) that burns for as long as the device is
    occupied.
    """

    busy_s: float
    overhead_s: float
    dynamic_energy_j: float
    passive_power_w: float

    @property
    def latency_s(self) -> float:
        """Stand-alone (batch-of-one) latency."""
        return self.busy_s + self.overhead_s

    @property
    def energy_j(self) -> float:
        """Stand-alone (batch-of-one) energy."""
        return self.dynamic_energy_j + self.passive_power_w * self.latency_s


def batched_execution(profiles: Sequence[PathProfile]) -> tuple[float, float]:
    """(latency, energy) of running several request paths as one micro-batch.

    Busy time serialises (a single edge accelerator), but dispatch overhead
    is paid once — by the path with the most of it, since shallower paths'
    kernel launches are a prefix of the deepest path's.  Passive power burns
    for the whole occupancy.  A batch of one reduces exactly to the path's
    stand-alone latency/energy, so serving at batch size 1 matches the
    offline :class:`EnergyModel` numbers.
    """
    if not profiles:
        return 0.0, 0.0
    longest = max(profiles, key=lambda p: p.overhead_s)
    latency = sum(p.busy_s for p in profiles) + longest.overhead_s
    energy = (
        sum(p.dynamic_energy_j + p.passive_power_w * p.busy_s for p in profiles)
        + longest.passive_power_w * longest.overhead_s
    )
    return latency, energy


@dataclass(frozen=True)
class EnergyReport:
    """Latency and energy of one network execution at one DVFS setting."""

    latency_s: float
    energy_j: float
    core_energy_j: float
    mem_energy_j: float
    static_energy_j: float

    @property
    def average_power_w(self) -> float:
        if self.latency_s <= 0:
            return 0.0
        return self.energy_j / self.latency_s


class EnergyModel:
    """Evaluates latency + energy jointly for one platform."""

    def __init__(self, platform: HardwarePlatform):
        self.platform = platform
        self.latency = LatencyModel(platform)
        self.power = PowerModel(platform)

    def layer_energy_j(self, layer: LayerCost, setting: DvfsSetting) -> float:
        """Energy of a single layer (J)."""
        return self._accumulate([layer], setting).energy_j

    def layer_energy_terms(
        self, timing: BatchTiming, setting: DvfsSetting
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-layer ``(core, mem_dynamic, mem_background, static)`` energy
        vectors for one batch timing — the operands both the vectorized
        accumulators and the cost tables sum.

        Each element is the exact term the reference loop adds for that
        layer (``(P · busy) · activity`` and ``P · total`` in the same
        association), so any left-to-right cumulative sum of these vectors
        is bit-identical to the loop's running accumulators.
        """
        busy = timing.busy_s
        core = self.power.core_dynamic_power(setting, 1.0) * busy * timing.core_activity
        mem_dyn = self.power.mem_dynamic_power(setting, 1.0) * busy * timing.mem_activity
        mem_bg = self.power.mem_background_power(setting) * timing.total_s
        static = self.power.static_power(setting) * timing.total_s
        return core, mem_dyn, mem_bg, static

    def _accumulate(self, layers: list[LayerCost], setting: DvfsSetting) -> EnergyReport:
        """Vectorized accumulation — one :meth:`LatencyModel.batch_timing`
        pass instead of a per-layer Python loop; bit-identical to
        :meth:`_accumulate_reference` (cumsum preserves the loop's
        left-to-right addition order, the memory rail's two per-layer terms
        are interleaved before summing)."""
        if not layers:
            return EnergyReport(0.0, 0.0, 0.0, 0.0, 0.0)
        timing = self.latency.batch_timing(layers, setting)
        core, mem_dyn, mem_bg, static = self.layer_energy_terms(timing, setting)
        core_j = float(np.cumsum(core)[-1])
        mem_j = float(interleaved_cumsum(mem_dyn, mem_bg)[-1])
        static_j = float(np.cumsum(static)[-1])
        latency_s = float(np.cumsum(timing.total_s)[-1])
        return EnergyReport(
            latency_s=latency_s,
            energy_j=core_j + mem_j + static_j,
            core_energy_j=core_j,
            mem_energy_j=mem_j,
            static_energy_j=static_j,
        )

    def _accumulate_reference(
        self, layers: list[LayerCost], setting: DvfsSetting
    ) -> EnergyReport:
        """The pre-cost-table per-layer Python loop, kept verbatim.

        This is the bit-identity oracle: the vectorized kernel
        (:meth:`_accumulate`, the cost tables) must reproduce it exactly.
        The dynamic-eval bench times it as the "before" baseline, and the
        hypothesis property tests diff the two paths bit for bit.
        """
        p_static = self.power.static_power(setting)
        p_mem_bg = self.power.mem_background_power(setting)
        core_j = mem_j = static_j = 0.0
        latency_s = 0.0
        for layer in layers:
            timing = self.latency.layer_timing(layer, setting)
            busy = timing.total_s - timing.overhead_s
            core_j += self.power.core_dynamic_power(setting, 1.0) * busy * timing.core_activity
            mem_j += self.power.mem_dynamic_power(setting, 1.0) * busy * timing.mem_activity
            mem_j += p_mem_bg * timing.total_s
            static_j += p_static * timing.total_s
            latency_s += timing.total_s
        return EnergyReport(
            latency_s=latency_s,
            energy_j=core_j + mem_j + static_j,
            core_energy_j=core_j,
            mem_energy_j=mem_j,
            static_energy_j=static_j,
        )

    def path_profile(self, layers: list[LayerCost], setting: DvfsSetting) -> PathProfile:
        """Batch-decomposable profile of a layer sequence at one setting.

        Consistent with :meth:`composite_report`: the profile's stand-alone
        ``latency_s``/``energy_j`` equal the report's.  Routed through the
        same vectorized batch-timing kernel (bit-identical to the original
        per-layer loop; the dynamic-rail accumulator's two per-layer terms
        are interleaved to preserve its addition order).
        """
        p_passive = self.power.static_power(setting) + self.power.mem_background_power(setting)
        if not layers:
            return PathProfile(0.0, 0.0, 0.0, p_passive)
        timing = self.latency.batch_timing(layers, setting)
        core, mem_dyn, _, _ = self.layer_energy_terms(timing, setting)
        return PathProfile(
            busy_s=float(np.cumsum(timing.busy_s)[-1]),
            overhead_s=float(np.cumsum(timing.overhead_s)[-1]),
            dynamic_energy_j=float(interleaved_cumsum(core, mem_dyn)[-1]),
            passive_power_w=p_passive,
        )

    def composite_report(self, layers: list[LayerCost], setting: DvfsSetting) -> EnergyReport:
        """Latency/energy of an arbitrary layer sequence (e.g. prefix +
        several exit branches — the early-exit execution paths)."""
        return self._accumulate(layers, setting)

    def composite_report_reference(
        self, layers: list[LayerCost], setting: DvfsSetting
    ) -> EnergyReport:
        """:meth:`composite_report` via the reference per-layer loop (bench
        baseline and bit-identity oracle; not for production paths)."""
        return self._accumulate_reference(layers, setting)

    def network_report(self, cost: NetworkCost, setting: DvfsSetting) -> EnergyReport:
        """Latency/energy of the full network."""
        return self._accumulate(cost.layers, setting)

    def network_energy_j(self, cost: NetworkCost, setting: DvfsSetting) -> float:
        """Full-network energy (J)."""
        return self.network_report(cost, setting).energy_j

    def prefix_report(
        self,
        cost: NetworkCost,
        position: int,
        setting: DvfsSetting,
        exit_layer: LayerCost | None = None,
    ) -> EnergyReport:
        """Latency/energy of the backbone prefix up to MBConv ``position``
        plus an optional exit branch — E_{x_i, f} and L_{x_i, f} of eq. 6."""
        layers = list(cost.prefix(position))
        if exit_layer is not None:
            layers.append(exit_layer)
        return self._accumulate(layers, setting)
