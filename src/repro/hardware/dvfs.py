"""The DVFS search space F (paper Table II).

A :class:`DvfsSetting` is one (core clock, EMC clock) operating point; a
:class:`DvfsSpace` is the grid of such points a platform supports.  The inner
engine searches this space jointly with the exit configuration, encoding a
setting as two integer genes (core index, EMC index).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.platform import HardwarePlatform
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class DvfsSetting:
    """One operating point: core and memory-controller clocks in GHz."""

    core_ghz: float
    emc_ghz: float

    def __str__(self) -> str:
        return f"core={self.core_ghz:.3f}GHz emc={self.emc_ghz:.3f}GHz"


class DvfsSpace:
    """The frequency grid of a platform, indexable for genome encoding."""

    def __init__(self, platform: HardwarePlatform):
        self.platform = platform
        self.core_freqs = platform.core_freqs_ghz
        self.emc_freqs = platform.emc_freqs_ghz

    @property
    def cardinality(self) -> int:
        """Number of distinct (core, emc) settings."""
        return len(self.core_freqs) * len(self.emc_freqs)

    def gene_bounds(self) -> np.ndarray:
        """Exclusive upper bounds of the two DVFS genes."""
        return np.asarray([len(self.core_freqs), len(self.emc_freqs)], dtype=np.int64)

    def decode(self, core_idx: int, emc_idx: int) -> DvfsSetting:
        """Indices -> concrete setting."""
        return DvfsSetting(self.core_freqs[int(core_idx)], self.emc_freqs[int(emc_idx)])

    def encode(self, setting: DvfsSetting) -> tuple[int, int]:
        """Concrete setting -> indices (must be on the grid)."""
        return self.core_freqs.index(setting.core_ghz), self.emc_freqs.index(setting.emc_ghz)

    def default_setting(self) -> DvfsSetting:
        """The platform default: maximum performance clocks.

        The paper's static (OOE) evaluations use default hardware settings,
        leaving DVFS exploration to the IOE; Jetson boards under `nvpmodel
        MAXN` run at maximum clocks, which we adopt as the default.
        """
        return DvfsSetting(self.core_freqs[-1], self.emc_freqs[-1])

    def sample(self, rng=None) -> DvfsSetting:
        """Uniform random setting."""
        rng = make_rng(rng)
        return self.decode(
            rng.integers(0, len(self.core_freqs)), rng.integers(0, len(self.emc_freqs))
        )

    def all_settings(self) -> list[DvfsSetting]:
        """Enumerate the full grid (used by exhaustive sweeps)."""
        return [
            DvfsSetting(core, emc) for core in self.core_freqs for emc in self.emc_freqs
        ]
