"""Population-batched path costs: one stacked gather per (population, setting).

The PR-5 cost tables made a *single* dynamic evaluation an O(exits) cumsum
gather, but an NSGA-II generation (or an exhaustive DVFS sweep) still pays
full Python per-call overhead per individual: index arrays, branch-scalar
loops and small-array arithmetic are re-dispatched N times per setting.
:class:`PopulationKernel` amortises that across a whole population — N exit
placements evaluated at one :class:`~repro.hardware.dvfs.DvfsSetting` become
one padded ``(N, E_max)`` gather over the setting's
:class:`~repro.hardware.cost_table.SettingCostTable` plus ``E_max`` broadcast
column additions, independent of N.

Bit-identity contract (same as every kernel in this repo): the stacked path
costs equal :meth:`SettingCostTable.exit_path_costs` /
:meth:`~SettingCostTable.full_path_cost` — and therefore the reference
per-layer loop — bit for bit, for every row:

* Row ``n``'s gathered prefix values are the same cumulative-array elements
  the per-placement kernel reads.
* Branch scalars are added as broadcast *column* operations in ascending
  exit order (``M[:, j:] += B[:, j:j+1]``): each matrix element receives
  exactly the per-placement sequence of scalar float64 additions, in the
  same left-to-right association — elementwise ops carry no cross-element
  reduction, so stacking cannot reorder anything.
* Rows are padded to ``E_max`` with a sentinel position whose branch terms
  are ``0.0``; for the full-path accumulators the pad contributes trailing
  ``x + 0.0`` no-ops (bitwise identity for the strictly positive costs
  involved), and padded exit columns are never read.

Reductions (usage-weighted dots, score means) deliberately stay *per-row* in
the evaluator: a matrix reduction would change BLAS/pairwise summation order
and drift by ULPs.  What gets stacked is exactly the elementwise work.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.arch.cost import LayerCost
from repro.exits.evaluation import PopulationExitStats
from repro.hardware.cost_table import CostTableBank, SettingCostTable
from repro.hardware.dvfs import DvfsSetting


@dataclass(frozen=True)
class PopulationPathCosts:
    """Stacked path costs of N placements at one DVFS setting.

    ``exit_energy_j`` / ``exit_latency_s`` are ``(N, E_max)`` matrices; row
    ``n`` is valid through ``widths[n]`` columns (the rest is padding and
    must not be read).  ``full_energy_j`` / ``full_latency_s`` are ``(N,)``
    full-path (every-branch) costs.
    """

    widths: np.ndarray
    exit_energy_j: np.ndarray
    exit_latency_s: np.ndarray
    full_energy_j: np.ndarray
    full_latency_s: np.ndarray

    def row(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """(energy, latency) views of row ``n``'s valid exit-path costs."""
        w = int(self.widths[n])
        return self.exit_energy_j[n, :w], self.exit_latency_s[n, :w]


@dataclass(frozen=True)
class FusedPopulationBatch:
    """Accuracy and cost matrices of one population at one DVFS setting.

    The fusion of the two population kernels: ``stats`` is the oracle's
    stacked accuracy side (N_i, usage, dissimilarity, union accuracies) and
    ``costs`` the cost-table side (exit/full path energies and latencies),
    aligned row for row and padded to the same ``E_max`` — widths are
    asserted equal at construction.  One :meth:`PopulationKernel.fused_batch`
    call produces everything eq. 5–7 needs for a whole population.
    """

    stats: PopulationExitStats
    costs: PopulationPathCosts

    def __post_init__(self):
        if not np.array_equal(self.stats.widths, self.costs.widths):
            raise ValueError("accuracy and cost batches disagree on exit widths")

    @property
    def widths(self) -> np.ndarray:
        return self.costs.widths

    def __len__(self) -> int:
        return len(self.costs.widths)


class _SettingArrays:
    """Per-position gather operands of one setting's cost table.

    Arrays are indexed by MBConv position (``0`` is the padding sentinel:
    prefix index 0 with all-zero branch terms).  Branch terms are filled
    lazily per requested position from the table's cached scalars, so the
    kernel handles any placement without knowing the legal exit range.
    """

    __slots__ = (
        "prefix_index",
        "total_s",
        "core_j",
        "mem_dyn_j",
        "mem_bg_j",
        "static_j",
        "_filled",
    )

    def __init__(self, table: SettingCostTable, max_position: int):
        size = max_position + 1
        self.prefix_index = np.zeros(size, dtype=np.intp)
        for position in range(1, size):
            self.prefix_index[position] = table.prefix_end(position)
        self.total_s = np.zeros(size)
        self.core_j = np.zeros(size)
        self.mem_dyn_j = np.zeros(size)
        self.mem_bg_j = np.zeros(size)
        self.static_j = np.zeros(size)
        self._filled = np.zeros(size, dtype=bool)
        self._filled[0] = True  # the padding sentinel stays all-zero

    def ensure(
        self,
        table: SettingCostTable,
        branch_cost: Callable[[int], LayerCost],
        positions: np.ndarray,
    ) -> None:
        """Fill branch-term slots for every position present in ``positions``."""
        for position in np.unique(positions).tolist():
            if self._filled[position]:
                continue
            terms = table.branch_terms(position, branch_cost(position))
            self.total_s[position] = terms.total_s
            self.core_j[position] = terms.core_j
            self.mem_dyn_j[position] = terms.mem_dyn_j
            self.mem_bg_j[position] = terms.mem_bg_j
            self.static_j[position] = terms.static_j
            self._filled[position] = True


class PopulationKernel:
    """Batched analysis surface over a :class:`CostTableBank`.

    One kernel hangs off a :class:`~repro.eval.dynamic.DynamicEvaluator`
    (same lifetime as its bank); :meth:`path_costs` is the stable entry
    point the evaluator, the IOE batch hook and the exhaustive-grid sweeps
    all call.
    """

    def __init__(
        self,
        bank: CostTableBank,
        branch_cost: Callable[[int], LayerCost],
        max_position: int,
    ):
        self._bank = bank
        self._branch_cost = branch_cost
        self._max_position = max_position
        self._arrays: dict[tuple[float, float], _SettingArrays] = {}
        self._lock = threading.Lock()

    def _setting_arrays(self, table: SettingCostTable) -> _SettingArrays:
        key = (table.setting.core_ghz, table.setting.emc_ghz)
        arrays = self._arrays.get(key)
        if arrays is None:
            with self._lock:
                arrays = self._arrays.get(key)
                if arrays is None:
                    arrays = _SettingArrays(table, self._max_position)
                    self._arrays[key] = arrays
        return arrays

    def path_costs(
        self, position_lists: Sequence[Sequence[int]], setting: DvfsSetting
    ) -> PopulationPathCosts:
        """Exit-path and full-path costs of N placements at ``setting``.

        One ``(N, E_max)`` fancy gather over the setting's cumulative
        arrays, then one broadcast column addition per exit slot — total
        work O(N · E_max) array elements with no per-placement Python loop
        over branches.
        """
        count = len(position_lists)
        widths = np.fromiter(
            (len(positions) for positions in position_lists),
            dtype=np.intp,
            count=count,
        )
        table = self._bank.table(setting)
        arrays = self._setting_arrays(table)
        e_max = int(widths.max()) if count else 0
        positions = np.zeros((count, e_max), dtype=np.intp)
        for row, row_positions in enumerate(position_lists):
            positions[row, : len(row_positions)] = row_positions
        with self._lock:
            arrays.ensure(table, self._branch_cost, positions)

        index = arrays.prefix_index[positions]
        latency = table.cum_total[index]
        core = table.cum_core[index]
        mem = table.cum_mem[index]
        static = table.cum_static[index]
        branch_total = arrays.total_s[positions]
        branch_core = arrays.core_j[positions]
        branch_mem_dyn = arrays.mem_dyn_j[positions]
        branch_mem_bg = arrays.mem_bg_j[positions]
        branch_static = arrays.static_j[positions]

        full_latency = np.full(count, table.cum_total[-1])
        full_core = np.full(count, table.cum_core[-1])
        full_mem = np.full(count, table.cum_mem[-1])
        full_static = np.full(count, table.cum_static[-1])

        # Ascending exit order mirrors the per-placement kernel: branch j
        # lands on every exit i >= j before branch j+1 does, and the memory
        # rail adds its two terms per branch in the reference order.
        for j in range(e_max):
            latency[:, j:] += branch_total[:, j : j + 1]
            core[:, j:] += branch_core[:, j : j + 1]
            mem[:, j:] += branch_mem_dyn[:, j : j + 1]
            mem[:, j:] += branch_mem_bg[:, j : j + 1]
            static[:, j:] += branch_static[:, j : j + 1]
            full_latency += branch_total[:, j]
            full_core += branch_core[:, j]
            full_mem += branch_mem_dyn[:, j]
            full_mem += branch_mem_bg[:, j]
            full_static += branch_static[:, j]

        return PopulationPathCosts(
            widths=widths,
            exit_energy_j=core + mem + static,
            exit_latency_s=latency,
            full_energy_j=(full_core + full_mem) + full_static,
            full_latency_s=full_latency,
        )

    def fused_batch(self, placements, setting: DvfsSetting, oracle) -> FusedPopulationBatch:
        """Accuracy + cost matrices of N placements in one fused call.

        ``oracle`` is any provider exposing ``population_stats(placements)``
        (a :class:`~repro.accuracy.exit_model.BackboneExitOracle`); its
        stacked statistics and this kernel's path costs come back aligned
        and width-checked.  This is the surface
        :meth:`DynamicEvaluator.evaluate_population` drives.
        """
        stats = oracle.population_stats(placements)
        costs = self.path_costs([p.positions for p in placements], setting)
        return FusedPopulationBatch(stats=stats, costs=costs)
