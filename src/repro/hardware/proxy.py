"""Learned latency/energy proxy replacing HW-in-the-loop measurement.

The paper: "HADAS's search overhead can be reduced to 1 GPU day if a proxy
model replaced the HW-in-the-loop setup".  This module implements that
extension: a ridge-regression predictor over cheap architecture/DVFS
features, trained on a small set of measured (network, setting) pairs, that
then answers latency/energy queries without touching the device.

Features are physically motivated (so the model extrapolates):

* total MACs / total DRAM traffic / layer count,
* reciprocal core and EMC clocks (roofline terms are ~linear in 1/f),
* MACs/f_core and traffic/f_emc interaction terms,
* the V²f products of both rails (dynamic-energy terms).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.cost import NetworkCost
from repro.hardware.dvfs import DvfsSetting, DvfsSpace
from repro.hardware.measurement import HardwareInTheLoop
from repro.hardware.platform import HardwarePlatform
from repro.utils.rng import child_rng
from repro.utils.validation import check_nonneg, check_positive


def _features(cost: NetworkCost, setting: DvfsSetting, platform: HardwarePlatform) -> np.ndarray:
    """Physically-motivated feature map.

    Energy is a latency x power product, so the map carries the cross terms
    (e.g. 1/f_core x V²f_emc); targets are fitted in log space, which turns
    those products into sums the ridge model can capture.
    """
    macs = cost.total_macs
    traffic = cost.total_traffic
    layers = float(len(cost.layers))
    inv_core = 1.0 / setting.core_ghz
    inv_emc = 1.0 / setting.emc_ghz
    v_core = platform.core_voltage.voltage(setting.core_ghz)
    v_mem = platform.mem_voltage.voltage(setting.emc_ghz)
    p_core = v_core * v_core * setting.core_ghz
    p_mem = v_mem * v_mem * setting.emc_ghz
    return np.asarray(
        [
            1.0,
            macs * 1e-9,
            traffic * 1e-9,
            layers * 1e-2,
            inv_core,
            inv_emc,
            macs * 1e-9 * inv_core,
            traffic * 1e-9 * inv_emc,
            layers * 1e-2 * inv_core,
            layers * 1e-2 * inv_emc,
            p_core,
            p_mem,
            macs * 1e-9 * p_core,
            inv_core * p_mem,
            inv_emc * p_core,
            inv_core * inv_emc,
            np.log(setting.core_ghz),
            np.log(setting.emc_ghz),
            np.log(max(macs, 1.0)) * 0.1,
        ]
    )


@dataclass(frozen=True)
class ProxyAccuracy:
    """Held-out relative errors of a fitted proxy."""

    latency_mape: float
    energy_mape: float


class HardwareProxy:
    """Ridge-regression latency/energy predictor for one platform.

    Parameters
    ----------
    platform:
        The device being proxied.
    ridge:
        L2 regularisation strength on the (standardised) design matrix.
    """

    def __init__(self, platform: HardwarePlatform, ridge: float = 1e-6):
        check_nonneg("ridge", ridge)
        self.platform = platform
        self.ridge = ridge
        self._w_latency: np.ndarray | None = None
        self._w_energy: np.ndarray | None = None
        self.num_training_points = 0

    @property
    def fitted(self) -> bool:
        return self._w_latency is not None

    def fit(
        self,
        costs: list[NetworkCost],
        hwil: HardwareInTheLoop,
        settings_per_network: int = 8,
        seed: int = 0,
    ) -> "HardwareProxy":
        """Measure a training set through ``hwil`` and fit the proxy.

        For each network a few DVFS points are sampled (corners always
        included) — the measurement budget the paper trades against
        HW-in-the-loop fidelity.
        """
        check_positive("settings_per_network", settings_per_network)
        dvfs = DvfsSpace(self.platform)
        rng = child_rng(seed, "proxy-fit")
        rows, lat, erg = [], [], []
        corners = [
            dvfs.decode(0, 0),
            dvfs.decode(len(dvfs.core_freqs) - 1, len(dvfs.emc_freqs) - 1),
            dvfs.decode(0, len(dvfs.emc_freqs) - 1),
            dvfs.decode(len(dvfs.core_freqs) - 1, 0),
        ]
        for cost in costs:
            settings = corners[: min(4, settings_per_network)]
            settings += [dvfs.sample(rng) for _ in range(max(0, settings_per_network - 4))]
            for setting in settings:
                measurement = hwil.measure(cost, setting)
                rows.append(_features(cost, setting, self.platform))
                lat.append(measurement.latency_s_mean)
                erg.append(measurement.energy_j_mean)
        design = np.stack(rows)
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        # Log-space targets: latency/energy are products of workload and
        # frequency terms, which logs turn into learnable sums.
        self._w_latency = np.linalg.solve(gram, design.T @ np.log(np.asarray(lat)))
        self._w_energy = np.linalg.solve(gram, design.T @ np.log(np.asarray(erg)))
        self.num_training_points = len(rows)
        return self

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError("proxy must be fitted before prediction")

    def predict_latency_s(self, cost: NetworkCost, setting: DvfsSetting) -> float:
        """Predicted end-to-end latency (seconds)."""
        self._require_fitted()
        return float(np.exp(_features(cost, setting, self.platform) @ self._w_latency))

    def predict_energy_j(self, cost: NetworkCost, setting: DvfsSetting) -> float:
        """Predicted per-inference energy (joules)."""
        self._require_fitted()
        return float(np.exp(_features(cost, setting, self.platform) @ self._w_energy))

    def validate(
        self,
        costs: list[NetworkCost],
        hwil: HardwareInTheLoop,
        settings_per_network: int = 4,
        seed: int = 1,
    ) -> ProxyAccuracy:
        """Mean absolute percentage error on held-out (network, setting)s."""
        self._require_fitted()
        dvfs = DvfsSpace(self.platform)
        rng = child_rng(seed, "proxy-validate")
        lat_err, erg_err = [], []
        for cost in costs:
            for _ in range(settings_per_network):
                setting = dvfs.sample(rng)
                truth = hwil.measure(cost, setting)
                lat_err.append(
                    abs(self.predict_latency_s(cost, setting) - truth.latency_s_mean)
                    / truth.latency_s_mean
                )
                erg_err.append(
                    abs(self.predict_energy_j(cost, setting) - truth.energy_j_mean)
                    / truth.energy_j_mean
                )
        return ProxyAccuracy(
            latency_mape=float(np.mean(lat_err)),
            energy_mape=float(np.mean(erg_err)),
        )
