"""Deployed-design plumbing: searched HADAS output → serving mount.

A :class:`DeployedDesign` is the deployable (B, X, F) triple a HADAS run
hands to the serving stack: the concrete backbone, the searched exit
positions, the searched DVFS operating point, and the search-time accuracy
numbers the oracle/synthesizer should reproduce.  It is plain frozen data,
so it rides inside a :class:`~repro.serving.harness.ServingSpec` (and its
cache key) unchanged, and round-trips through JSON — ``repro search --out
design.json`` writes one, ``repro serve --from-result design.json`` mounts
it instead of the default AttentiveNAS backbone + spread exits.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.arch.config import BackboneConfig
from repro.exits.placement import ExitPlacement
from repro.search.individual import Individual
from repro.utils.serialization import from_jsonable, load_json, save_json, to_jsonable


@dataclass(frozen=True)
class DeployedDesign:
    """One searched (B, X, F) design, ready to mount in the serving stack.

    ``backbone_accuracy`` is the search surrogate's accuracy fraction for
    the backbone — carried along so serving synthesises logits against the
    *searched* model's capability, not a re-derived one.  ``core_ghz`` /
    ``emc_ghz`` record the searched static DVFS point F; the serving
    runtime re-plans its own DVFS ladder around the deployed network, so F
    is provenance (and the offline operating point), not a runtime pin.
    """

    backbone: BackboneConfig
    positions: tuple[int, ...]
    core_ghz: float
    emc_ghz: float
    backbone_accuracy: float
    label: str = "searched"
    platform: str = "?"
    seed: int = 0
    d_score: float = 0.0
    dynamic_accuracy: float = 0.0
    dynamic_energy_j: float = 0.0

    def __post_init__(self):
        # Positions must decode to a valid placement for this backbone —
        # fail at construction, not deep inside a serving run.
        self.placement()
        if not 0.0 < self.backbone_accuracy <= 1.0:
            raise ValueError(
                f"backbone_accuracy must be a fraction in (0, 1], got "
                f"{self.backbone_accuracy}"
            )

    def placement(self) -> ExitPlacement:
        """The searched exit configuration X."""
        return ExitPlacement(self.backbone.total_mbconv_layers, self.positions)

    @property
    def num_exits(self) -> int:
        return len(self.positions)

    def describe(self) -> str:
        """One-line summary for CLI output."""
        return (
            f"{self.label}: {self.backbone.key} exits@{list(self.positions)} "
            f"F=({self.core_ghz:.2f}, {self.emc_ghz:.2f}) GHz "
            f"[searched on {self.platform}, seed {self.seed}]"
        )


def design_from_individual(
    individual: Individual,
    platform: str = "?",
    seed: int = 0,
    backbone_accuracy: float | None = None,
    label: str = "searched",
) -> DeployedDesign:
    """Lower one dynamic-archive member to a :class:`DeployedDesign`.

    The individual must carry the outer loop's payload: ``config`` (the
    backbone) and ``evaluation`` (the inner engine's dynamic evaluation,
    which holds the decoded placement and DVFS setting).
    """
    config: BackboneConfig = individual.payload["config"]
    evaluation = individual.payload["evaluation"]
    if backbone_accuracy is None:
        # Static accuracy is reported in percent; the design carries fractions.
        backbone_accuracy = individual.payload["static"].accuracy / 100.0
    return DeployedDesign(
        backbone=config,
        positions=tuple(int(p) for p in evaluation.placement.positions),
        core_ghz=float(evaluation.setting.core_ghz),
        emc_ghz=float(evaluation.setting.emc_ghz),
        backbone_accuracy=float(backbone_accuracy),
        label=label,
        platform=platform,
        seed=seed,
        d_score=float(evaluation.d_score),
        dynamic_accuracy=float(evaluation.dynamic_accuracy),
        dynamic_energy_j=float(evaluation.dynamic_energy_j),
    )


def save_design(design: DeployedDesign, path: str | Path, extra: dict | None = None) -> Path:
    """Write a design artifact (``{"design": ..., **extra}``) as JSON."""
    payload = {"design": to_jsonable(design)}
    if extra:
        payload.update(to_jsonable(extra))
    return save_json(payload, path)


def load_design(path: str | Path) -> DeployedDesign:
    """Read a design back from ``save_design`` output (or a bare design)."""
    data = load_json(path)
    if isinstance(data, dict) and "design" in data:
        data = data["design"]
    design = from_jsonable(data, DeployedDesign)
    if not isinstance(design, DeployedDesign):
        raise ValueError(f"{path} does not contain a deployed design")
    return design
