"""Heterogeneous multi-device fleet serving behind one shared queue.

A fleet is N simulated edge devices from the platform registry — a TX2
GPU next to an AGX Xavier next to a Denver CPU — all mounting the *same*
dynamic network (default spread or a searched
:class:`~repro.serving.deploy.DeployedDesign`), each with its own runtime
config ladder, micro-batcher, governor and thermal state (all reused from
the single-device stack).  One trace arrives at a shared front door; a
pluggable :class:`~repro.serving.router.FleetRouter` assigns every request
to a device lane at arrival time (latency-critical requests spill off
backlogged lanes earlier than best-effort ones), and each lane then
batches and serves its share exactly like the single-device simulator
would.  Lanes carry request *indices*, not objects, and price batches
through the same compiled per-config executor as the indexed single-device
engine (:class:`~repro.serving.simulator._CompiledConfig`) — bit-identical
to the per-batch reference path.

With an :class:`~repro.serving.batcher.AdmissionPolicy` the fleet applies
queue-depth admission at the lane door: a request routed to a full lane is
dropped (fleet admission is drop-only — "defer" would amount to
re-routing, which the router spill guard already does at arrival time).
Dropped requests never complete (NaN completion); latency statistics cover
served requests only.

Dispatch is deterministic: requests are routed in arrival order, and a
lane only forms a batch once no future arrival could still join it (the
same two-trigger + opportunistic-fill semantics as
:class:`~repro.serving.batcher.MicroBatcher`, re-derived for a queue that
grows one routed request at a time).

:func:`run_fleet_cell` is the pure cell function; :func:`fleet_sweep` fans
grids through the :class:`~repro.engine.service.EvaluationService` with
results persisted under the ``fleet`` cache namespace.
"""

from __future__ import annotations

import dataclasses
from bisect import bisect_left, bisect_right
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.engine.cache import ResultCache
from repro.engine.service import EvaluationService
from repro.engine.tasks import spec_task, task_spec
from repro.hardware.energy import PathProfile
from repro.hardware.platform import resolve_platform_keys
from repro.obs import trace as tracing
from repro.serving.batcher import AdmissionPolicy, BatchPolicy
from repro.serving.deploy import DeployedDesign
from repro.serving.governor import (
    AdaptiveGovernor,
    GovernorObservation,
    RuntimeConfig,
    ServingPolicy,
    StaticPolicy,
    _profiles_for,
    static_config_for,
)
from repro.serving.harness import (
    POLICY_NAMES,
    ServingSpec,
    ServingStack,
    build_serving_stack,
    reference_config,
)
from repro.serving.router import ROUTER_NAMES, FleetRouter, make_router
from repro.serving.scenarios import Scenario, ThermalState, get_scenario
from repro.serving.simulator import CompiledStream, _CompiledConfig, compile_stream
from repro.serving.stream import ServingStream
from repro.serving.telemetry import class_latency_stats, percentile_ms
from repro.serving.workload import (
    LATENCY_CRITICAL,
    LOAD_PATTERNS,
    SLO_CLASSES,
    Trace,
    make_trace,
)
from repro.utils.validation import check_positive

#: Bump when fleet-cell semantics change; orphans persisted fleet entries.
FLEET_CELL_VERSION = "2"


@dataclass(frozen=True)
class FleetSpec:
    """Everything one fleet serving run depends on, as plain data.

    ``platforms`` accepts registry keys or aliases ("tx2", "xavier"); they
    are canonicalised at construction so cache keys do not fork on
    spelling.  The same model (named AttentiveNAS mount or searched
    ``design``) is deployed on every device — the paper's premise is one
    dynamic network scaling across heterogeneous hardware.
    """

    platforms: tuple[str, ...] = ("tx2-gpu", "agx-gpu")
    model: str = "a3"
    pattern: str = "poisson"
    scenario: str = "nominal"
    policy: str = "adaptive"
    router: str = "difficulty_aware"
    slo_ms: float = 75.0
    utilization: float = 0.7  # offered load relative to fleet reference capacity
    rate_hz: float | None = None  # explicit fleet arrival rate overrides utilization
    duration_s: float = 20.0
    num_exits: int = 3
    seed: int = 7
    max_batch: int = 6
    batch_timeout_ms: float = 4.0
    window_ms: float = 400.0
    num_classes: int = 10
    calibration_samples: int = 512
    design: DeployedDesign | None = None
    critical_fraction: float = 0.0  # share of latency-critical arrivals
    admission_max_queue: int | None = None  # per-lane cap; None = unbounded
    admission_critical_bypass: bool = True

    def __post_init__(self):
        if not self.platforms:
            raise ValueError("a fleet needs at least one platform")
        object.__setattr__(
            self, "platforms", tuple(resolve_platform_keys(self.platforms))
        )
        if self.router not in ROUTER_NAMES:
            raise ValueError(f"unknown router {self.router!r}; valid: {ROUTER_NAMES}")
        if self.policy not in POLICY_NAMES:
            raise ValueError(f"unknown policy {self.policy!r}; valid: {POLICY_NAMES}")
        get_scenario(self.scenario)
        if self.pattern not in LOAD_PATTERNS:
            raise ValueError(
                f"unknown load pattern {self.pattern!r}; valid: {LOAD_PATTERNS}"
            )
        check_positive("slo_ms", self.slo_ms)
        check_positive("duration_s", self.duration_s)
        check_positive("utilization", self.utilization)
        if self.rate_hz is not None:
            check_positive("rate_hz", self.rate_hz)
        if not 0.0 <= self.critical_fraction <= 1.0:
            raise ValueError("critical_fraction must lie in [0, 1]")
        if self.admission_max_queue is not None:
            check_positive("admission_max_queue", self.admission_max_queue)

    def device_spec(self, platform: str, rate_hz: float | None = None) -> ServingSpec:
        """The single-device spec a fleet member is built from."""
        return ServingSpec(
            platform=platform,
            model=self.model,
            pattern=self.pattern,
            scenario=self.scenario,
            policy=self.policy,
            slo_ms=self.slo_ms,
            utilization=self.utilization,
            rate_hz=rate_hz,
            duration_s=self.duration_s,
            num_exits=self.num_exits,
            seed=self.seed,
            max_batch=self.max_batch,
            batch_timeout_ms=self.batch_timeout_ms,
            window_ms=self.window_ms,
            num_classes=self.num_classes,
            calibration_samples=self.calibration_samples,
            design=self.design,
        )

    def admission_policy(self) -> AdmissionPolicy | None:
        if self.admission_max_queue is None:
            return None
        return AdmissionPolicy(
            max_queue=self.admission_max_queue,
            mode="drop",
            critical_bypass=self.admission_critical_bypass,
        )

    @property
    def model_label(self) -> str:
        if self.design is not None:
            return f"{self.design.label}:{self.design.backbone.key}"
        return self.model


@dataclass(frozen=True)
class DeviceTelemetry:
    """Per-device slice of a fleet run (plain data, cache-safe)."""

    platform: str
    requests: int
    share: float  # fraction of fleet requests routed here
    batches: int
    mean_batch_size: float
    utilization: float  # busy seconds / fleet makespan
    latency_ms_p50: float
    latency_ms_p95: float
    latency_ms_p99: float
    deadline_miss_rate: float
    energy_j: float
    energy_per_request_j: float
    switching_energy_j: float
    accuracy: float
    exit_usage: list[float] = field(default_factory=list)
    config_usage: dict[str, int] = field(default_factory=dict)
    governor_decisions: int = 0
    throttled_batches: int = 0
    peak_temperature_c: float = 0.0
    critical_requests: int = 0  # latency-critical requests served here
    num_dropped: int = 0  # admission drops at this lane's door


@dataclass(frozen=True)
class FleetReport:
    """Aggregate outcome of one fleet run (one trace × one router)."""

    # Identity
    pattern: str
    scenario: str
    policy: str
    router: str
    model: str
    seed: int
    slo_ms: float
    platforms: list[str] = field(default_factory=list)
    # Traffic
    num_requests: int = 0
    duration_s: float = 0.0
    offered_rate_rps: float = 0.0
    throughput_rps: float = 0.0
    # Latency / SLO (cross-device, served requests only)
    latency_ms_mean: float = 0.0
    latency_ms_p50: float = 0.0
    latency_ms_p95: float = 0.0
    latency_ms_p99: float = 0.0
    deadline_miss_rate: float = 0.0
    # Energy / accuracy (fleet totals)
    energy_per_request_j: float = 0.0
    total_energy_j: float = 0.0
    switching_energy_j: float = 0.0
    accuracy: float = 0.0
    exit_usage: list[float] = field(default_factory=list)
    governor_decisions: int = 0
    peak_temperature_c: float = 0.0
    battery_budget_j: float = 0.0
    battery_spent_j: float = 0.0
    battery_exhausted: bool = False
    # Per-device split
    devices: list[DeviceTelemetry] = field(default_factory=list)
    # Admission control / SLO classes (PR 8)
    num_served: int = 0
    num_dropped: int = 0
    num_deferred: int = 0  # always 0: fleet admission is drop-only
    drop_rate: float = 0.0
    class_stats: dict[str, dict] = field(default_factory=dict)  # per SLO class

    @property
    def met_slo_rate(self) -> float:
        return 1.0 - self.deadline_miss_rate


class DeviceLane:
    """One fleet member: a serving stack plus its live queue and meters.

    The lane exposes the read-only :class:`~repro.serving.router.LaneState`
    surface routers observe (queue depth, estimated wait, reference
    capacity/energy) and owns the per-device governor state the simulator
    drives (current config, decision clock, thermal, compiled-config
    caches).  The queue holds request *indices*; arrival bookkeeping is an
    append-only sorted list plus pop counters, so :meth:`backlog_at` is a
    bisect instead of the former O(queue) copy per call.
    """

    def __init__(self, index: int, stack: ServingStack, policy: ServingPolicy):
        self.index = index
        self.stack = stack
        self.policy = policy
        self.reference = reference_config(stack.ladder)
        self.coolest = min(stack.ladder, key=lambda c: c.expected_power_w)
        self.max_power_w = max(c.expected_power_w for c in stack.ladder)
        # Live queue: routed-but-undispatched request indices, FIFO by arrival.
        self._queue: deque[int] = deque()
        self._queue_arrivals: deque[float] = deque()
        # Append-only arrival books (sorted: requests route in arrival order).
        self._admitted_times: list[float] = []  # admitted arrivals ever
        self._crit_times: list[float] = []  # admitted latency-critical arrivals
        self._popped = 0  # dispatched prefix of _admitted_times
        self._crit_popped = 0  # dispatched prefix of _crit_times
        self._routed_times: list[float] = []  # every routed arrival (rate window)
        # Device clocks.
        self.t_free = 0.0
        self.clock = 0.0
        self.next_decision = 0.0
        self.config: RuntimeConfig | None = None
        self.thermal: ThermalState | None = None
        # Caches shared across batches.
        self._profiles: dict[str, list[PathProfile]] = {}
        self._compiled: dict[str, _CompiledConfig] = {}
        # Meters.
        self.request_indices: list[int] = []
        self.busy_s = 0.0
        self.energy_j = 0.0
        self.switching_energy_j = 0.0
        self.num_batches = 0
        self.throttled = 0
        self.governor_decisions = 0
        self.critical_requests = 0
        self.num_dropped = 0
        self.config_usage: dict[str, int] = {}
        self.exit_counts = np.zeros(stack.placement.num_exits + 1, dtype=np.int64)

    # -------------------------------------------------------- router surface
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def reference_capacity_rps(self) -> float:
        return self.reference.capacity_rps(self.stack.batch_policy)

    @property
    def reference_energy_j(self) -> float:
        return self.reference.expected_energy_j

    def estimated_wait_s(self, now_s: float) -> float:
        """Residual busy time plus queued work at reference capacity."""
        residual = max(self.t_free - now_s, 0.0)
        return residual + self.queue_depth / self.reference_capacity_rps

    # ------------------------------------------------------------- the queue
    def push(self, index: int, arrival_s: float, critical: bool) -> None:
        self._queue.append(index)
        self._queue_arrivals.append(arrival_s)
        self._admitted_times.append(arrival_s)
        self._routed_times.append(arrival_s)
        self.request_indices.append(index)
        if critical:
            self._crit_times.append(arrival_s)
            self.critical_requests += 1

    def reject(self, arrival_s: float) -> None:
        """Record an admission drop at this lane's door.

        The offered arrival still counts toward the governor's rate window —
        demand the lane sheds is still demand it saw.
        """
        self._routed_times.append(arrival_s)
        self.num_dropped += 1

    def backlog_at(self, now_s: float) -> int:
        """Routed requests that have arrived but not dispatched by ``now_s``.

        Dispatch pops arrival-ordered prefixes and only pops arrivals ≤ the
        dispatch instant, so at any observation time the simulator uses
        (a batch start or later) the count is exactly (admitted arrivals ≤
        now) − (popped); querying an earlier instant clamps at zero.
        """
        return max(bisect_right(self._admitted_times, now_s) - self._popped, 0)

    def critical_backlog_at(self, now_s: float) -> int:
        """Latency-critical share of :meth:`backlog_at`."""
        if not self._crit_times:
            return 0
        return max(bisect_right(self._crit_times, now_s) - self._crit_popped, 0)

    def arrival_rate_hz(self, now_s: float, window_s: float, fallback: float) -> float:
        """Routed arrivals/second (admitted or dropped) over the trailing window."""
        if now_s <= 0:
            return fallback
        window_start = max(0.0, now_s - window_s)
        lo = bisect_left(self._routed_times, window_start)
        hi = bisect_right(self._routed_times, now_s)
        return (hi - lo) / max(now_s - window_start, 1e-9)

    def pending_start_s(self) -> float | None:
        """Dispatch instant of the next batch, were it formed now.

        Re-derives the :class:`~repro.serving.batcher.MicroBatcher`
        trigger (full-batch fill or head-of-line timeout, whichever comes
        first, floored by the device-free time) for a queue that only
        knows arrivals routed so far.  ``None`` when the queue is empty.
        """
        if not self._queue:
            return None
        policy = self.stack.batch_policy
        expiry = self._queue_arrivals[0] + policy.timeout_s
        if (
            len(self._queue) >= policy.max_batch
            and self._queue_arrivals[policy.max_batch - 1] <= expiry
        ):
            trigger = self._queue_arrivals[policy.max_batch - 1]
        else:
            trigger = expiry
        return max(self.t_free, trigger)

    def next_ready_batch(self, until_s: float) -> tuple[float, list[int]] | None:
        """Form the next batch, but only once the fleet clock reaches it.

        A batch is returned only when it dispatches before the next fleet
        arrival (``until_s``), so no future arrival could still join it
        (opportunistic fill up to the dispatch instant, as in the
        single-device batcher) and — just as important — the governor
        observations made at dispatch see every arrival up to the dispatch
        instant, exactly like the single-device simulator's.
        """
        start = self.pending_start_s()
        if start is None or start >= until_s:
            return None  # empty, or the fleet clock has not reached it yet
        policy = self.stack.batch_policy
        size = 0
        for arrival in self._queue_arrivals:
            if size >= policy.max_batch or arrival > start:
                break
            size += 1
        batch = [self._queue.popleft() for _ in range(size)]
        crit_times = self._crit_times
        crit_popped = self._crit_popped
        for _ in range(size):
            arrival = self._queue_arrivals.popleft()
            if crit_popped < len(crit_times) and crit_times[crit_popped] <= arrival:
                crit_popped += 1
        self._popped += size
        self._crit_popped = crit_popped
        return start, batch

    # ---------------------------------------------------------- config state
    def profiles_of(self, config: RuntimeConfig) -> list[PathProfile]:
        if config.name not in self._profiles:
            self._profiles[config.name] = _profiles_for(
                self.stack.evaluator, self.stack.placement, config.dvfs_governor()
            )
        return self._profiles[config.name]

    def compiled_of(
        self, config: RuntimeConfig, cstream: CompiledStream, switch_cost_j: float
    ) -> _CompiledConfig:
        if config.name not in self._compiled:
            self._compiled[config.name] = _CompiledConfig(
                config, self.profiles_of(config), cstream, switch_cost_j
            )
        return self._compiled[config.name]


def build_fleet_stacks(spec: FleetSpec) -> list[ServingStack]:
    """One serving stack per platform, provisioned for its share of load.

    With ``rate_hz`` unset every device is loaded at ``utilization`` × its
    own reference capacity (the fleet rate is the sum); with an explicit
    fleet rate, load splits proportionally to reference capacity and each
    static config is re-provisioned for its share.
    """
    stacks = [build_serving_stack(spec.device_spec(p)) for p in spec.platforms]
    if spec.rate_hz is not None:
        capacities = [reference_config(s.ladder).capacity_rps(s.batch_policy) for s in stacks]
        total = sum(capacities)
        for stack, capacity in zip(stacks, capacities):
            share = spec.rate_hz * capacity / total
            stack.rate_hz = share
            stack.static_config = static_config_for(
                stack.ladder, share, spec.slo_ms / 1e3, stack.batch_policy
            )
    return stacks


def build_fleet_trace_and_stream(
    spec: FleetSpec, stacks: list[ServingStack]
) -> tuple[Trace, ServingStream]:
    """The shared (trace, logits) inputs every router is compared on.

    Every stack mounts the same model, so the synthesizers are identical;
    the stream comes from the first and is valid for all lanes.
    """
    fleet_rate = sum(stack.rate_hz for stack in stacks)
    trace = make_trace(
        spec.pattern,
        fleet_rate,
        spec.duration_s,
        seed=spec.seed,
        critical_fraction=spec.critical_fraction,
    )
    stream = stacks[0].synthesizer.synthesize(trace.difficulties())
    return trace, stream


class FleetSimulator:
    """Replays one trace through a router onto N heterogeneous lanes."""

    def __init__(
        self,
        spec: FleetSpec,
        stacks: list[ServingStack],
        switch_cost_j: float = 0.0,
        emergency_backlog_batches: float = 2.0,
        admission: AdmissionPolicy | None = None,
    ):
        self.spec = spec
        self.scenario: Scenario = get_scenario(spec.scenario)
        self.slo_s = spec.slo_ms / 1e3
        self.window_s = spec.window_ms / 1e3
        self.switch_cost_j = switch_cost_j
        self.emergency_backlog = emergency_backlog_batches * spec.max_batch
        if admission is None:
            admission = spec.admission_policy()
        if admission is not None and admission.mode != "drop":
            raise ValueError(
                "fleet admission is drop-only: deferral at the fleet door is "
                "re-routing, which the router spill guard already performs"
            )
        self.admission = admission
        self.lanes = [
            DeviceLane(i, stack, self._policy_for(stack)) for i, stack in enumerate(stacks)
        ]

    def _policy_for(self, stack: ServingStack) -> ServingPolicy:
        if self.spec.policy == "static":
            return StaticPolicy(stack.static_config)
        return AdaptiveGovernor(stack.ladder, stack.batch_policy)

    def _battery_budget_j(self, trace: Trace) -> float | None:
        """Fleet allowance: scenario scale × capacity-weighted static spend."""
        if self.scenario.battery_scale is None:
            return None
        capacities = [lane.reference_capacity_rps for lane in self.lanes]
        total = sum(capacities)
        per_request = sum(
            lane.stack.static_config.expected_energy_j * capacity / total
            for lane, capacity in zip(self.lanes, capacities)
        )
        return self.scenario.battery_scale * per_request * max(trace.num_requests, 1)

    def _observe(
        self,
        lane: DeviceLane,
        now_s: float,
        trace: Trace,
        battery_budget_j: float | None,
        battery_spent_j: float,
    ) -> GovernorObservation:
        share = lane.reference_capacity_rps / sum(
            l.reference_capacity_rps for l in self.lanes
        )
        rate = lane.arrival_rate_hz(
            now_s, self.window_s, fallback=trace.mean_rate_hz * share
        )
        power_cap = (
            lane.thermal.power_cap_w(lane.max_power_w) if lane.thermal else None
        )
        energy_cap = None
        if battery_budget_j is not None:
            remaining_j = max(battery_budget_j - battery_spent_j, 0.0)
            remaining_requests = max(
                trace.mean_rate_hz * max(trace.duration_s - now_s, 0.0), 1.0
            )
            energy_cap = remaining_j / remaining_requests
        return GovernorObservation(
            now_s=now_s,
            window_s=self.window_s,
            arrival_rate_hz=rate,
            backlog=lane.backlog_at(now_s),
            slo_s=self.slo_s,
            temperature_c=lane.thermal.temperature_c if lane.thermal else 0.0,
            power_cap_w=power_cap,
            energy_cap_j=energy_cap,
            critical_backlog=lane.critical_backlog_at(now_s),
        )

    # -------------------------------------------------------------- main loop
    def run(self, trace: Trace, stream: ServingStream) -> FleetReport:
        n = trace.num_requests
        if stream.final_logits.shape[0] != n:
            raise ValueError(
                f"stream carries {stream.final_logits.shape[0]} requests, trace has {n}"
            )
        placement = self.lanes[0].stack.placement
        if stream.num_exits != placement.num_exits:
            raise ValueError(
                f"stream carries {stream.num_exits} exit heads but the deployed "
                f"placement expects {placement.num_exits}; the mounted logits "
                "stream and exit placement must describe the same DyNN"
            )
        router: FleetRouter = make_router(self.spec.router, self.lanes, self.slo_s)
        cstream = compile_stream(stream)

        completion = np.full(n, np.nan)
        correct = np.zeros(n, dtype=bool)
        battery_budget = self._battery_budget_j(trace)
        battery_spent = 0.0
        battery_exhausted = False

        fleet_capacity = sum(lane.reference_capacity_rps for lane in self.lanes)
        for lane in self.lanes:
            lane.thermal = (
                ThermalState(self.scenario.thermal, lane.max_power_w)
                if self.scenario.thermal is not None
                else None
            )
            # The t=0 observation is the same minimal one the single-device
            # simulator hand-builds (no caps, no backlog) at the lane's
            # capacity share of the mean rate — keeping a fleet of one
            # bit-identical to ServingSimulator in *every* scenario.
            lane.config = lane.policy.select(
                GovernorObservation(
                    now_s=0.0,
                    window_s=self.window_s,
                    arrival_rate_hz=trace.mean_rate_hz
                    * lane.reference_capacity_rps / fleet_capacity,
                    backlog=0,
                    slo_s=self.slo_s,
                )
            )
            lane.governor_decisions += 1
            lane.next_decision = self.window_s

        def dispatch(lane: DeviceLane, start: float, batch: list[int]) -> None:
            nonlocal battery_spent, battery_exhausted
            if lane.thermal is not None and start > lane.clock:
                lane.thermal.advance(0.0, start - lane.clock)  # idle: device cools
            # Spike check counts the in-flight batch: next_ready_batch
            # already popped it, but it is still unserved work.
            spike = lane.backlog_at(start) + len(batch) > self.emergency_backlog
            if start >= lane.next_decision or spike:
                obs = self._observe(lane, start, trace, battery_budget, battery_spent)
                lane.config = lane.policy.select(obs)
                lane.governor_decisions += 1
                tracing.count("fleet.governor_decisions")
                lane.next_decision = start + self.window_s
            active = lane.config
            if lane.thermal is not None and lane.thermal.throttled:
                active = lane.coolest  # hardware throttle overrides the policy
                lane.throttled += 1
            lane.config_usage[active.name] = lane.config_usage.get(active.name, 0) + 1
            tracing.count("fleet.batches")
            tracing.count(f"fleet.lane.{lane.stack.spec.platform}.batches")
            tracing.observe("fleet.batch_size", len(batch))

            indices = np.asarray(batch, dtype=np.int64)
            compiled = lane.compiled_of(active, cstream, self.switch_cost_j)
            decisions = compiled.decisions[indices]
            latency, energy, switch = compiled.price(decisions)
            lane.switching_energy_j += switch

            end = start + latency
            completion[indices] = end
            correct[indices] = compiled.correct[indices]
            lane.exit_counts += np.bincount(decisions, minlength=len(lane.exit_counts))

            lane.energy_j += energy
            lane.busy_s += latency
            battery_spent += energy
            if battery_budget is not None and battery_spent > battery_budget:
                battery_exhausted = True
            if lane.thermal is not None and latency > 0:
                lane.thermal.advance(energy / latency, latency)
            lane.clock = end
            lane.t_free = end
            lane.num_batches += 1

        def drain(until: float) -> None:
            # Dispatch ready batches across lanes in ascending start time
            # (ties break on lane index): governors observing shared fleet
            # state (the battery meter) always see it as of a simulated
            # instant no later than their own decision time.
            while True:
                best: DeviceLane | None = None
                best_start = float("inf")
                for lane in self.lanes:
                    start = lane.pending_start_s()
                    if start is not None and start < until and start < best_start:
                        best, best_start = lane, start
                if best is None:
                    break
                formed = best.next_ready_batch(until)
                dispatch(best, *formed)

        admission = self.admission
        times = trace.arrival_s.tolist()
        difficulties = trace.difficulty.tolist()
        classes = trace.slo_class.tolist()
        lanes = self.lanes
        for i in range(n):
            arrival = times[i]
            slo_class = classes[i]
            lane = lanes[router.route(difficulties[i], slo_class, arrival, lanes)]
            critical = slo_class == LATENCY_CRITICAL
            if (
                admission is not None
                and lane.queue_depth >= admission.max_queue
                and not (critical and admission.critical_bypass)
            ):
                lane.reject(arrival)
            else:
                lane.push(i, arrival, critical)
            drain(times[i + 1] if i + 1 < n else float("inf"))
        drain(float("inf"))

        return self._report(trace, completion, correct, battery_budget,
                            battery_spent, battery_exhausted)

    # -------------------------------------------------------------- telemetry
    def _report(
        self,
        trace: Trace,
        completion: np.ndarray,
        correct: np.ndarray,
        battery_budget: float | None,
        battery_spent: float,
        battery_exhausted: bool,
    ) -> FleetReport:
        n = trace.num_requests
        arrivals = trace.arrival_s
        served = ~np.isnan(completion)
        num_served = int(served.sum())
        num_dropped = n - num_served
        latencies = completion[served] - arrivals[served]
        makespan = max(
            float(np.max(completion[served])) if num_served else 0.0, trace.duration_s
        )

        devices = []
        for lane in self.lanes:
            idx = np.asarray(lane.request_indices, dtype=np.int64)
            lane_lat = (completion[idx] - arrivals[idx]) if len(idx) else np.zeros(0)
            lane_served = len(idx)
            devices.append(
                DeviceTelemetry(
                    platform=lane.stack.spec.platform,
                    requests=lane_served,
                    share=lane_served / n if n else 0.0,
                    batches=lane.num_batches,
                    mean_batch_size=lane_served / lane.num_batches if lane.num_batches else 0.0,
                    utilization=lane.busy_s / makespan if makespan > 0 else 0.0,
                    latency_ms_p50=percentile_ms(lane_lat, 50),
                    latency_ms_p95=percentile_ms(lane_lat, 95),
                    latency_ms_p99=percentile_ms(lane_lat, 99),
                    deadline_miss_rate=float((lane_lat > self.slo_s).mean()) if lane_served else 0.0,
                    energy_j=lane.energy_j,
                    energy_per_request_j=lane.energy_j / lane_served if lane_served else 0.0,
                    switching_energy_j=lane.switching_energy_j,
                    accuracy=float(correct[idx].mean()) if lane_served else 0.0,
                    exit_usage=[float(c) / lane_served if lane_served else 0.0 for c in lane.exit_counts],
                    config_usage=dict(lane.config_usage),
                    governor_decisions=lane.governor_decisions,
                    throttled_batches=lane.throttled,
                    peak_temperature_c=lane.thermal.peak_c if lane.thermal is not None else 0.0,
                    critical_requests=lane.critical_requests,
                    num_dropped=lane.num_dropped,
                )
            )

        exit_counts = np.sum([lane.exit_counts for lane in self.lanes], axis=0)
        total_energy = sum(lane.energy_j for lane in self.lanes)
        return FleetReport(
            pattern=trace.pattern,
            scenario=self.scenario.name,
            policy=self.spec.policy,
            router=self.spec.router,
            model=self.spec.model_label,
            seed=self.spec.seed,
            slo_ms=self.slo_s * 1e3,
            platforms=list(self.spec.platforms),
            num_requests=n,
            duration_s=trace.duration_s,
            offered_rate_rps=trace.mean_rate_hz,
            throughput_rps=num_served / makespan if makespan > 0 else 0.0,
            latency_ms_mean=float(latencies.mean() * 1e3) if num_served else 0.0,
            latency_ms_p50=percentile_ms(latencies, 50),
            latency_ms_p95=percentile_ms(latencies, 95),
            latency_ms_p99=percentile_ms(latencies, 99),
            deadline_miss_rate=float((latencies > self.slo_s).mean())
            if num_served
            else 0.0,
            energy_per_request_j=total_energy / num_served if num_served else 0.0,
            total_energy_j=total_energy,
            switching_energy_j=sum(lane.switching_energy_j for lane in self.lanes),
            accuracy=float(correct[served].mean()) if num_served else 0.0,
            exit_usage=[
                float(c) / num_served if num_served else 0.0 for c in exit_counts
            ],
            governor_decisions=sum(lane.governor_decisions for lane in self.lanes),
            peak_temperature_c=max(
                (lane.thermal.peak_c for lane in self.lanes if lane.thermal is not None),
                default=0.0,
            ),
            battery_budget_j=battery_budget or 0.0,
            battery_spent_j=battery_spent if battery_budget is not None else 0.0,
            battery_exhausted=battery_exhausted,
            devices=devices,
            num_served=num_served,
            num_dropped=num_dropped,
            num_deferred=0,
            drop_rate=num_dropped / n if n else 0.0,
            class_stats=class_latency_stats(
                trace.slo_class, SLO_CLASSES, arrivals, completion, self.slo_s
            ),
        )


def run_fleet_cell(spec: FleetSpec) -> FleetReport:
    """Evaluate one fleet grid cell: pure function of the spec (cache-safe)."""
    stacks = build_fleet_stacks(spec)
    trace, stream = build_fleet_trace_and_stream(spec, stacks)
    return FleetSimulator(spec, stacks).run(trace, stream)


def fleet_cache_key(cache: ResultCache, spec: FleetSpec):
    """Content address of one fleet cell in the persistent cache."""
    return cache.key(
        "fleet",
        version=FLEET_CELL_VERSION,
        spec=dataclasses.asdict(spec),
    )


def fleet_sweep(
    specs: list[FleetSpec],
    service: EvaluationService | None = None,
    workers: int = 1,
    executor: str = "auto",
    cache_dir: str | None = None,
) -> list[FleetReport]:
    """Run a grid of fleet cells concurrently through the engine.

    Results come back in submission order; cells sharing a spec are
    deduplicated within the batch and, with ``cache_dir`` set, persist
    across runs under the ``fleet`` cache namespace.
    """
    owned = service is None
    if service is None:
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        service = EvaluationService(executor=executor, workers=workers, cache=cache)
    try:
        # Codec-backed: a FleetSpec *is* the slim task payload, so the
        # multi-worker ``auto`` executor runs the grid on its process pool.
        tasks = [
            spec_task(
                task_spec("fleet-cell", spec=spec),
                key=fleet_cache_key(service.cache, spec)
                if service.cache is not None
                else None,
                cls=FleetReport,
            )
            for spec in specs
        ]
        return service.evaluate_batch(tasks)
    except BaseException:
        if owned:
            service.close(cancel=True)  # drop queued cells; leak no workers
        raise
    finally:
        if owned:
            service.close()
