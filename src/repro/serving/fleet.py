"""Heterogeneous multi-device fleet serving behind one shared queue.

A fleet is N simulated edge devices from the platform registry — a TX2
GPU next to an AGX Xavier next to a Denver CPU — all mounting the *same*
dynamic network (default spread or a searched
:class:`~repro.serving.deploy.DeployedDesign`), each with its own runtime
config ladder, micro-batcher, governor and thermal state (all reused from
the single-device stack).  One trace arrives at a shared front door; a
pluggable :class:`~repro.serving.router.FleetRouter` assigns every request
to a device lane at arrival time (latency-critical requests spill off
backlogged lanes earlier than best-effort ones), and each lane then
batches and serves its share exactly like the single-device simulator
would.  Lanes carry request *indices*, not objects, and price batches
through the same compiled per-config executor as the indexed single-device
engine (:class:`~repro.serving.simulator._CompiledConfig`) — bit-identical
to the per-batch reference path.

With an :class:`~repro.serving.batcher.AdmissionPolicy` the fleet applies
queue-depth admission at the lane door: a request routed to a full lane is
dropped (fleet admission is drop-only — "defer" would amount to
re-routing, which the router spill guard already does at arrival time).
Dropped requests never complete (NaN completion); latency statistics cover
served requests only.

Dispatch is deterministic: requests are routed in arrival order, and a
lane only forms a batch once no future arrival could still join it (the
same two-trigger + opportunistic-fill semantics as
:class:`~repro.serving.batcher.MicroBatcher`, re-derived for a queue that
grows one routed request at a time).

:func:`run_fleet_cell` is the pure cell function; :func:`fleet_sweep` fans
grids through the :class:`~repro.engine.service.EvaluationService` with
results persisted under the ``fleet`` cache namespace.
"""

from __future__ import annotations

import dataclasses
import gc
from bisect import bisect_left, bisect_right
from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush

import numpy as np

from repro.engine.cache import ResultCache
from repro.engine.service import EvaluationService
from repro.engine.tasks import spec_task, task_spec
from repro.hardware.energy import PathProfile
from repro.hardware.platform import resolve_platform_keys
from repro.obs import trace as tracing
from repro.serving.batcher import AdmissionPolicy, BatchPolicy
from repro.serving.deploy import DeployedDesign
from repro.serving.governor import (
    AdaptiveGovernor,
    GovernorObservation,
    RuntimeConfig,
    ServingPolicy,
    StaticPolicy,
    _profiles_for,
    static_config_for,
)
from repro.serving.harness import (
    POLICY_NAMES,
    ServingSpec,
    ServingStack,
    build_serving_stack,
    reference_config,
)
from repro.serving.router import (
    ROUTER_NAMES,
    BlockLaneState,
    FleetRouter,
    make_router,
)
from repro.serving.scenarios import Scenario, ThermalState, get_scenario
from repro.serving.simulator import (
    ENGINE_NAMES,
    CompiledStream,
    _CompiledConfig,
    compile_stream,
)
from repro.serving.stream import ServingStream
from repro.serving.telemetry import class_latency_stats, percentile_ms
from repro.serving.workload import (
    LATENCY_CRITICAL,
    LOAD_PATTERNS,
    SLO_CLASSES,
    Trace,
    make_trace,
)
from repro.utils.validation import check_positive

#: Bump when fleet-cell semantics change; orphans persisted fleet entries.
FLEET_CELL_VERSION = "3"


@dataclass(frozen=True)
class FleetSpec:
    """Everything one fleet serving run depends on, as plain data.

    ``platforms`` accepts registry keys or aliases ("tx2", "xavier"); they
    are canonicalised at construction so cache keys do not fork on
    spelling.  The same model (named AttentiveNAS mount or searched
    ``design``) is deployed on every device — the paper's premise is one
    dynamic network scaling across heterogeneous hardware.
    """

    platforms: tuple[str, ...] = ("tx2-gpu", "agx-gpu")
    model: str = "a3"
    pattern: str = "poisson"
    scenario: str = "nominal"
    policy: str = "adaptive"
    router: str = "difficulty_aware"
    slo_ms: float = 75.0
    utilization: float = 0.7  # offered load relative to fleet reference capacity
    rate_hz: float | None = None  # explicit fleet arrival rate overrides utilization
    duration_s: float = 20.0
    num_exits: int = 3
    seed: int = 7
    max_batch: int = 6
    batch_timeout_ms: float = 4.0
    window_ms: float = 400.0
    num_classes: int = 10
    calibration_samples: int = 512
    design: DeployedDesign | None = None
    critical_fraction: float = 0.0  # share of latency-critical arrivals
    admission_max_queue: int | None = None  # per-lane cap; None = unbounded
    admission_critical_bypass: bool = True
    engine: str = "indexed"  # "indexed" (block-routed) or "reference"
    steal: bool = False  # work-stealing re-routing (indexed engine only)

    def __post_init__(self):
        if not self.platforms:
            raise ValueError("a fleet needs at least one platform")
        object.__setattr__(
            self, "platforms", tuple(resolve_platform_keys(self.platforms))
        )
        if self.router not in ROUTER_NAMES:
            raise ValueError(f"unknown router {self.router!r}; valid: {ROUTER_NAMES}")
        if self.policy not in POLICY_NAMES:
            raise ValueError(f"unknown policy {self.policy!r}; valid: {POLICY_NAMES}")
        get_scenario(self.scenario)
        if self.pattern not in LOAD_PATTERNS:
            raise ValueError(
                f"unknown load pattern {self.pattern!r}; valid: {LOAD_PATTERNS}"
            )
        check_positive("slo_ms", self.slo_ms)
        check_positive("duration_s", self.duration_s)
        check_positive("utilization", self.utilization)
        if self.rate_hz is not None:
            check_positive("rate_hz", self.rate_hz)
        if not 0.0 <= self.critical_fraction <= 1.0:
            raise ValueError("critical_fraction must lie in [0, 1]")
        if self.admission_max_queue is not None:
            check_positive("admission_max_queue", self.admission_max_queue)
        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {self.engine!r}; valid: {ENGINE_NAMES}"
            )
        if self.steal and self.engine != "indexed":
            raise ValueError(
                "work stealing needs the indexed engine: the reference loop "
                "is the executable specification and takes no extensions"
            )

    def device_spec(self, platform: str, rate_hz: float | None = None) -> ServingSpec:
        """The single-device spec a fleet member is built from."""
        return ServingSpec(
            platform=platform,
            model=self.model,
            pattern=self.pattern,
            scenario=self.scenario,
            policy=self.policy,
            slo_ms=self.slo_ms,
            utilization=self.utilization,
            rate_hz=rate_hz,
            duration_s=self.duration_s,
            num_exits=self.num_exits,
            seed=self.seed,
            max_batch=self.max_batch,
            batch_timeout_ms=self.batch_timeout_ms,
            window_ms=self.window_ms,
            num_classes=self.num_classes,
            calibration_samples=self.calibration_samples,
            design=self.design,
        )

    def admission_policy(self) -> AdmissionPolicy | None:
        if self.admission_max_queue is None:
            return None
        return AdmissionPolicy(
            max_queue=self.admission_max_queue,
            mode="drop",
            critical_bypass=self.admission_critical_bypass,
        )

    @property
    def model_label(self) -> str:
        if self.design is not None:
            return f"{self.design.label}:{self.design.backbone.key}"
        return self.model


@dataclass(frozen=True)
class DeviceTelemetry:
    """Per-device slice of a fleet run (plain data, cache-safe)."""

    platform: str
    requests: int
    share: float  # fraction of fleet requests routed here
    batches: int
    mean_batch_size: float
    utilization: float  # busy seconds / fleet makespan
    latency_ms_p50: float
    latency_ms_p95: float
    latency_ms_p99: float
    deadline_miss_rate: float
    energy_j: float
    energy_per_request_j: float
    switching_energy_j: float
    accuracy: float
    exit_usage: list[float] = field(default_factory=list)
    config_usage: dict[str, int] = field(default_factory=dict)
    governor_decisions: int = 0
    throttled_batches: int = 0
    peak_temperature_c: float = 0.0
    critical_requests: int = 0  # latency-critical requests served here
    num_dropped: int = 0  # admission drops at this lane's door
    stolen_in: int = 0  # queued requests migrated onto this lane (steal)
    stolen_out: int = 0  # queued requests migrated off this lane (steal)


@dataclass(frozen=True)
class FleetReport:
    """Aggregate outcome of one fleet run (one trace × one router)."""

    # Identity
    pattern: str
    scenario: str
    policy: str
    router: str
    model: str
    seed: int
    slo_ms: float
    platforms: list[str] = field(default_factory=list)
    # Traffic
    num_requests: int = 0
    duration_s: float = 0.0
    offered_rate_rps: float = 0.0
    throughput_rps: float = 0.0
    # Latency / SLO (cross-device, served requests only)
    latency_ms_mean: float = 0.0
    latency_ms_p50: float = 0.0
    latency_ms_p95: float = 0.0
    latency_ms_p99: float = 0.0
    deadline_miss_rate: float = 0.0
    # Energy / accuracy (fleet totals)
    energy_per_request_j: float = 0.0
    total_energy_j: float = 0.0
    switching_energy_j: float = 0.0
    accuracy: float = 0.0
    exit_usage: list[float] = field(default_factory=list)
    governor_decisions: int = 0
    peak_temperature_c: float = 0.0
    battery_budget_j: float = 0.0
    battery_spent_j: float = 0.0
    battery_exhausted: bool = False
    # Per-device split
    devices: list[DeviceTelemetry] = field(default_factory=list)
    # Admission control / SLO classes (PR 8)
    num_served: int = 0
    num_dropped: int = 0
    num_deferred: int = 0  # always 0: fleet admission is drop-only
    drop_rate: float = 0.0
    class_stats: dict[str, dict] = field(default_factory=dict)  # per SLO class
    num_stolen: int = 0  # queued requests migrated between lanes (steal)

    @property
    def met_slo_rate(self) -> float:
        return 1.0 - self.deadline_miss_rate


class DeviceLane:
    """One fleet member: a serving stack plus its live queue and meters.

    The lane exposes the read-only :class:`~repro.serving.router.LaneState`
    surface routers observe (queue depth, estimated wait, reference
    capacity/energy) and owns the per-device governor state the simulator
    drives (current config, decision clock, thermal, compiled-config
    caches).  The queue holds request *indices*; arrival bookkeeping is an
    append-only sorted list plus pop counters, so :meth:`backlog_at` is a
    bisect instead of the former O(queue) copy per call.
    """

    def __init__(self, index: int, stack: ServingStack, policy: ServingPolicy):
        self.index = index
        self.stack = stack
        self.policy = policy
        self.reference = reference_config(stack.ladder)
        self.coolest = min(stack.ladder, key=lambda c: c.expected_power_w)
        self.max_power_w = max(c.expected_power_w for c in stack.ladder)
        # The reference capacity is a pure function of the (frozen) reference
        # config and batch policy; routers read it per decision, so it is
        # computed once instead of chasing the config property chain per call.
        self.reference_capacity_rps = self.reference.capacity_rps(stack.batch_policy)
        # Live queue: routed-but-undispatched request indices, FIFO by arrival.
        self._queue: deque[int] = deque()
        self._queue_arrivals: deque[float] = deque()
        # Append-only arrival books (sorted: requests route in arrival order).
        self._admitted_times: list[float] = []  # admitted arrivals ever
        self._crit_times: list[float] = []  # admitted latency-critical arrivals
        self._popped = 0  # dispatched prefix of _admitted_times
        self._crit_popped = 0  # dispatched prefix of _crit_times
        self._routed_times: list[float] = []  # every routed arrival (rate window)
        self._rate_cursor = 0  # left bisect bound for the trailing rate window
        # Device clocks.
        self.t_free = 0.0
        self.clock = 0.0
        self.next_decision = 0.0
        self.config: RuntimeConfig | None = None
        self.thermal: ThermalState | None = None
        # Caches shared across batches.
        self._profiles: dict[str, list[PathProfile]] = {}
        self._compiled: dict[str, _CompiledConfig] = {}
        # Meters.
        self.request_indices: list[int] = []
        self.busy_s = 0.0
        self.energy_j = 0.0
        self.switching_energy_j = 0.0
        self.num_batches = 0
        self.throttled = 0
        self.governor_decisions = 0
        self.critical_requests = 0
        self.num_dropped = 0
        self.stolen_in = 0
        self.stolen_out = 0
        self.config_usage: dict[str, int] = {}
        self.exit_counts = np.zeros(stack.placement.num_exits + 1, dtype=np.int64)

    # -------------------------------------------------------- router surface
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def reference_energy_j(self) -> float:
        return self.reference.expected_energy_j

    def estimated_wait_s(self, now_s: float) -> float:
        """Residual busy time plus queued work at reference capacity."""
        residual = max(self.t_free - now_s, 0.0)
        return residual + self.queue_depth / self.reference_capacity_rps

    # ------------------------------------------------------------- the queue
    def push(self, index: int, arrival_s: float, critical: bool) -> None:
        self._queue.append(index)
        self._queue_arrivals.append(arrival_s)
        self._admitted_times.append(arrival_s)
        self._routed_times.append(arrival_s)
        self.request_indices.append(index)
        if critical:
            self._crit_times.append(arrival_s)
            self.critical_requests += 1

    def reject(self, arrival_s: float) -> None:
        """Record an admission drop at this lane's door.

        The offered arrival still counts toward the governor's rate window —
        demand the lane sheds is still demand it saw.
        """
        self._routed_times.append(arrival_s)
        self.num_dropped += 1

    def backlog_at(self, now_s: float) -> int:
        """Routed requests that have arrived but not dispatched by ``now_s``.

        Dispatch pops arrival-ordered prefixes and only pops arrivals ≤ the
        dispatch instant, so at any observation time the simulator uses
        (a batch start or later) the count is exactly (admitted arrivals ≤
        now) − (popped); querying an earlier instant clamps at zero.
        """
        # Starting the search at the popped prefix keeps the bisect inside
        # the (short, cache-warm) backlog region instead of the whole book.
        # Exact on sorted input: if the prefix itself reaches past ``now_s``
        # both forms clamp to zero.
        popped = self._popped
        return max(bisect_right(self._admitted_times, now_s, popped) - popped, 0)

    def critical_backlog_at(self, now_s: float) -> int:
        """Latency-critical share of :meth:`backlog_at`."""
        if not self._crit_times:
            return 0
        popped = self._crit_popped
        return max(bisect_right(self._crit_times, now_s, popped) - popped, 0)

    def arrival_rate_hz(self, now_s: float, window_s: float, fallback: float) -> float:
        """Routed arrivals/second (admitted or dropped) over the trailing window."""
        if now_s <= 0:
            return fallback
        window_start = max(0.0, now_s - window_s)
        routed = self._routed_times
        n = len(routed)
        # Observation instants are monotone per lane, so the window's left
        # edge only moves right: resume the bisect at the last cursor.  A
        # tail rollback can strand the cursor past valid ground — the sorted
        # book makes that a single comparison to detect, then redo in full.
        lo = self._rate_cursor
        if lo > n:
            lo = n
        if lo > 0 and routed[lo - 1] >= window_start:
            lo = 0
        lo = bisect_left(routed, window_start, lo)
        self._rate_cursor = lo
        if n and routed[n - 1] <= now_s:
            hi = n
        else:
            hi = bisect_right(routed, now_s)
        return (hi - lo) / max(now_s - window_start, 1e-9)

    def pending_start_s(self) -> float | None:
        """Dispatch instant of the next batch, were it formed now.

        Re-derives the :class:`~repro.serving.batcher.MicroBatcher`
        trigger (full-batch fill or head-of-line timeout, whichever comes
        first, floored by the device-free time) for a queue that only
        knows arrivals routed so far.  ``None`` when the queue is empty.
        """
        if not self._queue:
            return None
        policy = self.stack.batch_policy
        expiry = self._queue_arrivals[0] + policy.timeout_s
        if (
            len(self._queue) >= policy.max_batch
            and self._queue_arrivals[policy.max_batch - 1] <= expiry
        ):
            trigger = self._queue_arrivals[policy.max_batch - 1]
        else:
            trigger = expiry
        return max(self.t_free, trigger)

    def next_ready_batch(self, until_s: float) -> tuple[float, list[int]] | None:
        """Form the next batch, but only once the fleet clock reaches it.

        A batch is returned only when it dispatches before the next fleet
        arrival (``until_s``), so no future arrival could still join it
        (opportunistic fill up to the dispatch instant, as in the
        single-device batcher) and — just as important — the governor
        observations made at dispatch see every arrival up to the dispatch
        instant, exactly like the single-device simulator's.
        """
        start = self.pending_start_s()
        if start is None or start >= until_s:
            return None  # empty, or the fleet clock has not reached it yet
        policy = self.stack.batch_policy
        size = 0
        for arrival in self._queue_arrivals:
            if size >= policy.max_batch or arrival > start:
                break
            size += 1
        batch = [self._queue.popleft() for _ in range(size)]
        crit_times = self._crit_times
        crit_popped = self._crit_popped
        for _ in range(size):
            arrival = self._queue_arrivals.popleft()
            if crit_popped < len(crit_times) and crit_times[crit_popped] <= arrival:
                crit_popped += 1
        self._popped += size
        self._crit_popped = crit_popped
        return start, batch

    # ------------------------------------------------------- work stealing
    def steal_tail(self, limit: int, slo_class) -> list[int]:
        """Pop up to ``limit`` best-effort requests off the queue tail.

        The queue tail is the only place all four parallel per-lane books
        (``_queue``, ``_queue_arrivals``, ``_admitted_times``,
        ``request_indices``) stay aligned, so tail pops keep every sorted
        invariant and the dispatched-prefix counters untouched.  Stops at
        the first latency-critical entry from the tail — criticals stay
        where admission placed them.  Returns the stolen request indices in
        their original FIFO order.
        """
        stolen: list[int] = []
        queue = self._queue
        while len(stolen) < limit and queue:
            index = queue[-1]
            if slo_class is not None and slo_class[index] == LATENCY_CRITICAL:
                break
            queue.pop()
            self._queue_arrivals.pop()
            self._admitted_times.pop()
            self.request_indices.pop()
            stolen.append(index)
        stolen.reverse()
        self.stolen_out += len(stolen)
        return stolen

    def receive_stolen(self, indices: list[int], now_s: float) -> None:
        """Adopt stolen requests, re-stamped as arriving at the steal instant.

        Re-stamping keeps every arrival book sorted (``now_s`` is the
        current simulated time, ≥ every recorded arrival) and makes the
        batcher treat migrations like fresh arrivals; latency telemetry
        still measures from the original trace arrival.
        """
        for index in indices:
            self._queue.append(index)
            self._queue_arrivals.append(now_s)
            self._admitted_times.append(now_s)
            self.request_indices.append(index)
        self.stolen_in += len(indices)

    # ---------------------------------------------------------- config state
    def profiles_of(self, config: RuntimeConfig) -> list[PathProfile]:
        if config.name not in self._profiles:
            self._profiles[config.name] = _profiles_for(
                self.stack.evaluator, self.stack.placement, config.dvfs_governor()
            )
        return self._profiles[config.name]

    def compiled_of(
        self, config: RuntimeConfig, cstream: CompiledStream, switch_cost_j: float
    ) -> _CompiledConfig:
        if config.name not in self._compiled:
            self._compiled[config.name] = _CompiledConfig(
                config, self.profiles_of(config), cstream, switch_cost_j
            )
        return self._compiled[config.name]


def build_fleet_stacks(spec: FleetSpec) -> list[ServingStack]:
    """One serving stack per platform, provisioned for its share of load.

    With ``rate_hz`` unset every device is loaded at ``utilization`` × its
    own reference capacity (the fleet rate is the sum); with an explicit
    fleet rate, load splits proportionally to reference capacity and each
    static config is re-provisioned for its share.
    """
    stacks = [build_serving_stack(spec.device_spec(p)) for p in spec.platforms]
    if spec.rate_hz is not None:
        capacities = [reference_config(s.ladder).capacity_rps(s.batch_policy) for s in stacks]
        total = sum(capacities)
        for stack, capacity in zip(stacks, capacities):
            share = spec.rate_hz * capacity / total
            stack.rate_hz = share
            stack.static_config = static_config_for(
                stack.ladder, share, spec.slo_ms / 1e3, stack.batch_policy
            )
    return stacks


def build_fleet_trace_and_stream(
    spec: FleetSpec, stacks: list[ServingStack]
) -> tuple[Trace, ServingStream]:
    """The shared (trace, logits) inputs every router is compared on.

    Every stack mounts the same model, so the synthesizers are identical;
    the stream comes from the first and is valid for all lanes.
    """
    fleet_rate = sum(stack.rate_hz for stack in stacks)
    trace = make_trace(
        spec.pattern,
        fleet_rate,
        spec.duration_s,
        seed=spec.seed,
        critical_fraction=spec.critical_fraction,
    )
    stream = stacks[0].synthesizer.synthesize(trace.difficulties())
    return trace, stream


class FleetSimulator:
    """Replays one trace through a router onto N heterogeneous lanes."""

    def __init__(
        self,
        spec: FleetSpec,
        stacks: list[ServingStack],
        switch_cost_j: float = 0.0,
        emergency_backlog_batches: float = 2.0,
        admission: AdmissionPolicy | None = None,
    ):
        self.spec = spec
        self.scenario: Scenario = get_scenario(spec.scenario)
        self.slo_s = spec.slo_ms / 1e3
        self.window_s = spec.window_ms / 1e3
        self.switch_cost_j = switch_cost_j
        self.emergency_backlog = emergency_backlog_batches * spec.max_batch
        if admission is None:
            admission = spec.admission_policy()
        if admission is not None and admission.mode != "drop":
            raise ValueError(
                "fleet admission is drop-only: deferral at the fleet door is "
                "re-routing, which the router spill guard already performs"
            )
        self.admission = admission
        self.lanes = [
            DeviceLane(i, stack, self._policy_for(stack)) for i, stack in enumerate(stacks)
        ]
        self._total_capacity_rps = sum(
            lane.reference_capacity_rps for lane in self.lanes
        )

    def _policy_for(self, stack: ServingStack) -> ServingPolicy:
        if self.spec.policy == "static":
            return StaticPolicy(stack.static_config)
        return AdaptiveGovernor(stack.ladder, stack.batch_policy)

    def _battery_budget_j(self, trace: Trace) -> float | None:
        """Fleet allowance: scenario scale × capacity-weighted static spend."""
        if self.scenario.battery_scale is None:
            return None
        capacities = [lane.reference_capacity_rps for lane in self.lanes]
        total = sum(capacities)
        per_request = sum(
            lane.stack.static_config.expected_energy_j * capacity / total
            for lane, capacity in zip(self.lanes, capacities)
        )
        return self.scenario.battery_scale * per_request * max(trace.num_requests, 1)

    def _observe(
        self,
        lane: DeviceLane,
        now_s: float,
        trace: Trace,
        battery_budget_j: float | None,
        battery_spent_j: float,
    ) -> GovernorObservation:
        share = lane.reference_capacity_rps / self._total_capacity_rps
        rate = lane.arrival_rate_hz(
            now_s, self.window_s, fallback=trace.mean_rate_hz * share
        )
        power_cap = (
            lane.thermal.power_cap_w(lane.max_power_w) if lane.thermal else None
        )
        energy_cap = None
        if battery_budget_j is not None:
            remaining_j = max(battery_budget_j - battery_spent_j, 0.0)
            remaining_requests = max(
                trace.mean_rate_hz * max(trace.duration_s - now_s, 0.0), 1.0
            )
            energy_cap = remaining_j / remaining_requests
        return GovernorObservation(
            now_s=now_s,
            window_s=self.window_s,
            arrival_rate_hz=rate,
            backlog=lane.backlog_at(now_s),
            slo_s=self.slo_s,
            temperature_c=lane.thermal.temperature_c if lane.thermal else 0.0,
            power_cap_w=power_cap,
            energy_cap_j=energy_cap,
            critical_backlog=lane.critical_backlog_at(now_s),
        )

    # -------------------------------------------------------------- main loop
    def run(self, trace: Trace, stream: ServingStream) -> FleetReport:
        n = trace.num_requests
        if stream.final_logits.shape[0] != n:
            raise ValueError(
                f"stream carries {stream.final_logits.shape[0]} requests, trace has {n}"
            )
        placement = self.lanes[0].stack.placement
        if stream.num_exits != placement.num_exits:
            raise ValueError(
                f"stream carries {stream.num_exits} exit heads but the deployed "
                f"placement expects {placement.num_exits}; the mounted logits "
                "stream and exit placement must describe the same DyNN"
            )
        router: FleetRouter = make_router(self.spec.router, self.lanes, self.slo_s)
        cstream = compile_stream(stream)

        completion = np.full(n, np.nan)
        correct = np.zeros(n, dtype=bool)
        battery_budget = self._battery_budget_j(trace)

        fleet_capacity = sum(lane.reference_capacity_rps for lane in self.lanes)
        for lane in self.lanes:
            lane.thermal = (
                ThermalState(self.scenario.thermal, lane.max_power_w)
                if self.scenario.thermal is not None
                else None
            )
            # The t=0 observation is the same minimal one the single-device
            # simulator hand-builds (no caps, no backlog) at the lane's
            # capacity share of the mean rate — keeping a fleet of one
            # bit-identical to ServingSimulator in *every* scenario.
            lane.config = lane.policy.select(
                GovernorObservation(
                    now_s=0.0,
                    window_s=self.window_s,
                    arrival_rate_hz=trace.mean_rate_hz
                    * lane.reference_capacity_rps / fleet_capacity,
                    backlog=0,
                    slo_s=self.slo_s,
                )
            )
            lane.governor_decisions += 1
            lane.next_decision = self.window_s

        if self.spec.engine == "reference":
            return self._run_reference(
                trace, router, cstream, completion, correct, battery_budget
            )
        # The indexed engine allocates acyclically (flat books, batch lists
        # freed as they are priced), so cycle collection has nothing to find
        # — but generational collections still traverse the ever-growing
        # books, costing seconds per million requests.  Pause the collector
        # for the run.
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            return self._run_indexed(
                trace, router, cstream, completion, correct, battery_budget
            )
        finally:
            if was_enabled:
                gc.enable()

    def _run_reference(
        self,
        trace: Trace,
        router: FleetRouter,
        cstream: CompiledStream,
        completion: np.ndarray,
        correct: np.ndarray,
        battery_budget: float | None,
    ) -> FleetReport:
        """The original per-request loop — the executable specification.

        Every routing, admission, batching and governor decision here is
        the contract the indexed engine must reproduce bit-for-bit (with
        stealing off).  Arrival columns convert to Python floats lazily,
        one chunk at a time, instead of materialising three full
        million-entry lists upfront.
        """
        n = trace.num_requests
        battery_spent = 0.0
        battery_exhausted = False

        def dispatch(lane: DeviceLane, start: float, batch: list[int]) -> None:
            nonlocal battery_spent, battery_exhausted
            if lane.thermal is not None and start > lane.clock:
                lane.thermal.advance(0.0, start - lane.clock)  # idle: device cools
            # Spike check counts the in-flight batch: next_ready_batch
            # already popped it, but it is still unserved work.
            spike = lane.backlog_at(start) + len(batch) > self.emergency_backlog
            if start >= lane.next_decision or spike:
                obs = self._observe(lane, start, trace, battery_budget, battery_spent)
                lane.config = lane.policy.select(obs)
                lane.governor_decisions += 1
                tracing.count("fleet.governor_decisions")
                lane.next_decision = start + self.window_s
            active = lane.config
            if lane.thermal is not None and lane.thermal.throttled:
                active = lane.coolest  # hardware throttle overrides the policy
                lane.throttled += 1
            lane.config_usage[active.name] = lane.config_usage.get(active.name, 0) + 1
            tracing.count("fleet.batches")
            tracing.count(f"fleet.lane.{lane.stack.spec.platform}.batches")
            tracing.observe("fleet.batch_size", len(batch))

            indices = np.asarray(batch, dtype=np.int64)
            compiled = lane.compiled_of(active, cstream, self.switch_cost_j)
            decisions = compiled.decisions[indices]
            latency, energy, switch = compiled.price(decisions)
            lane.switching_energy_j += switch

            end = start + latency
            completion[indices] = end
            correct[indices] = compiled.correct[indices]
            lane.exit_counts += np.bincount(decisions, minlength=len(lane.exit_counts))

            lane.energy_j += energy
            lane.busy_s += latency
            battery_spent += energy
            if battery_budget is not None and battery_spent > battery_budget:
                battery_exhausted = True
            if lane.thermal is not None and latency > 0:
                lane.thermal.advance(energy / latency, latency)
            lane.clock = end
            lane.t_free = end
            lane.num_batches += 1

        def drain(until: float) -> None:
            # Dispatch ready batches across lanes in ascending start time
            # (ties break on lane index): governors observing shared fleet
            # state (the battery meter) always see it as of a simulated
            # instant no later than their own decision time.
            while True:
                best: DeviceLane | None = None
                best_start = float("inf")
                for lane in self.lanes:
                    start = lane.pending_start_s()
                    if start is not None and start < until and start < best_start:
                        best, best_start = lane, start
                if best is None:
                    break
                formed = best.next_ready_batch(until)
                dispatch(best, *formed)

        admission = self.admission
        lanes = self.lanes
        # Arrival columns convert lazily per chunk: same Python floats as a
        # full .tolist(), without ~24 MB of boxed floats resident at 10⁶.
        chunk = 65536
        for lo in range(0, n, chunk):
            hi = min(lo + chunk, n)
            times = trace.arrival_s[lo:hi].tolist()
            difficulties = trace.difficulty[lo:hi].tolist()
            classes = trace.slo_class[lo:hi].tolist()
            for k in range(hi - lo):
                i = lo + k
                arrival = times[k]
                slo_class = classes[k]
                lane = lanes[router.route(difficulties[k], slo_class, arrival, lanes)]
                critical = slo_class == LATENCY_CRITICAL
                if (
                    admission is not None
                    and lane.queue_depth >= admission.max_queue
                    and not (critical and admission.critical_bypass)
                ):
                    lane.reject(arrival)
                else:
                    lane.push(i, arrival, critical)
                if k + 1 < hi - lo:
                    drain(times[k + 1])
                elif hi < n:
                    drain(float(trace.arrival_s[hi]))
                else:
                    drain(float("inf"))
        drain(float("inf"))

        return self._report(trace, completion, correct, battery_budget,
                            battery_spent, battery_exhausted)

    def _run_indexed(
        self,
        trace: Trace,
        router: FleetRouter,
        cstream: CompiledStream,
        completion: np.ndarray,
        correct: np.ndarray,
        battery_budget: float | None,
    ) -> FleetReport:
        """Block-routed fleet loop: bit-identical reports, one block at a time.

        Between two fleet dispatch horizons no lane's queue drains, so
        every routing decision in that window sees lane state that only
        changes through the block's own pushes — which is exactly what the
        router block kernels model.  The loop therefore:

        * takes the next **arrival block** — all arrivals up to the
          earliest pending batch start (the horizon) — and routes it in one
          :meth:`~repro.serving.router.FleetRouter.route_block` call;
        * applies the routed pushes while watching for a **mid-block
          violation**: a push that creates a batch trigger earlier than a
          later in-block arrival (only a *new* trigger can do that — old
          pendings sit at or past the horizon).  The block truncates at the
          violating arrival, the tail is re-routed after the dispatch it
          conflicted with, and the scalar dispatch order is preserved
          exactly;
        * drains through a **lazy min-heap** of (pending start, lane)
          entries instead of scanning every lane per request: every pending
          change pushes an entry, stale entries are skipped on pop.

        Dispatch pricing goes through
        :meth:`~repro.serving.simulator._CompiledConfig.price_indices` (the
        same Python-float tables as the single-device span engine), and
        completion/correctness scatters happen once at the end.  With
        ``spec.steal`` set, governor decisions on an unloaded lane may
        migrate queued best-effort requests off a stalled lane — the one
        intentional (opt-in) departure from reference behavior.
        """
        n = trace.num_requests
        lanes = self.lanes
        num_lanes = len(lanes)
        admission = self.admission
        state = BlockLaneState(
            lanes,
            max_queue=admission.max_queue if admission is not None else None,
            critical_bypass=admission.critical_bypass if admission is not None else True,
        )
        bounded = admission is not None
        t_free = state.t_free
        depth = state.depth
        route_block = router.route_block
        rollback = router.rollback
        begin_block = state.begin_block

        times_np = trace.arrival_s
        difficulty_np = trace.difficulty
        any_crit = trace.num_critical > 0
        slo_class_arr = trace.slo_class if any_crit else None

        recorder = tracing.active()
        observe = self._observe
        window_s = self.window_s
        emergency = self.emergency_backlog
        switch_cost = self.switch_cost_j
        steal_on = self.spec.steal
        battery_spent = 0.0
        battery_exhausted = False
        has_battery = battery_budget is not None
        num_stolen = 0

        heap: list[tuple[float, int]] = []
        heap_push = heappush
        heap_pop = heappop
        br = bisect_right
        inf = float("inf")

        # Per-lane hot state as parallel lists indexed by lane: one list
        # lookup replaces two attribute hops everywhere the per-request
        # loop touches a lane, and pure-accumulator meters fold back into
        # the lane objects once at the end (same per-lane accumulation
        # order, hence bit-identical sums).
        queues = [lane._queue for lane in lanes]
        qarrs = [lane._queue_arrivals for lane in lanes]
        q_append = [lane._queue.append for lane in lanes]
        qa_append = [lane._queue_arrivals.append for lane in lanes]
        adm_lists = [lane._admitted_times for lane in lanes]
        adm_append = [lane._admitted_times.append for lane in lanes]
        routed_append = [lane._routed_times.append for lane in lanes]
        ridx_append = [lane.request_indices.append for lane in lanes]
        max_batch = [lane.stack.batch_policy.max_batch for lane in lanes]
        timeout = [lane.stack.batch_policy.timeout_s for lane in lanes]
        policies = [lane.policy for lane in lanes]
        thermals = [lane.thermal for lane in lanes]
        usages = [lane.config_usage for lane in lanes]
        compiled_maps = [lane._compiled for lane in lanes]
        configs = [lane.config for lane in lanes]
        last_active: list[RuntimeConfig | None] = [None] * num_lanes
        last_compiled: list[_CompiledConfig | None] = [None] * num_lanes
        last_count = [0] * num_lanes
        next_decision = [lane.next_decision for lane in lanes]
        clocks = [lane.clock for lane in lanes]
        popped = [lane._popped for lane in lanes]
        energy_acc = [lane.energy_j for lane in lanes]
        busy_acc = [lane.busy_s for lane in lanes]
        switch_acc = [lane.switching_energy_j for lane in lanes]
        nbatch_acc = [lane.num_batches for lane in lanes]
        ndecision_acc = [lane.governor_decisions for lane in lanes]
        nthrottle_acc = [lane.throttled for lane in lanes]
        lane_counter = [
            f"fleet.lane.{lane.stack.spec.platform}.batches" for lane in lanes
        ]

        # Dispatch log: per-batch index lists and completion times, scattered
        # into the report arrays once at the end (a numpy fancy write per
        # two-request batch costs more than the batch itself).
        # Served requests accumulate *flat* (indices + per-batch sizes), not
        # as retained batch lists: a million retained small lists keeps the
        # GC-tracked heap growing all run and generational collections go
        # quadratic.  Flat int/float lists are opaque to the GC.
        served_flat: list[int] = []
        served_sizes: list[int] = []
        served_ends: list[float] = []
        sf_extend = served_flat.extend
        ss_append = served_sizes.append
        se_append = served_ends.append
        # Correctness groups by compiled config (correct[i] depends on which
        # config served request i).
        correct_groups: dict[int, tuple[_CompiledConfig, list[list[int]]]] = {}
        # Exit tallies as plain int lists; folded into the numpy meters once.
        exit_lists = [[0] * len(lane.exit_counts) for lane in lanes]

        # Per-block violation tracking, epoch-stamped so nothing is reset
        # between blocks: count/expiry/filled only mean something for lanes
        # whose epoch matches the current block.
        lane_epoch = [0] * num_lanes
        blk_count = [0] * num_lanes
        blk_expiry = [0.0] * num_lanes
        blk_filled = [False] * num_lanes
        epoch = 0

        def dispatch(li: int, start: float, batch: list[int]) -> None:
            nonlocal battery_spent, battery_exhausted, num_stolen
            lane = lanes[li]
            thermal = thermals[li]
            if thermal is not None and start > clocks[li]:
                thermal.advance(0.0, start - clocks[li])  # idle: device cools
            size = len(batch)
            # Spike check counts the in-flight batch: it was popped already
            # but it is still unserved work.  The queue length bounds the
            # backlog from above (it ignores the arrival cutoff), so a short
            # queue rules a spike out without the bisect.
            if len(queues[li]) + size <= emergency:
                spike = False
            else:
                backlog = br(adm_lists[li], start, popped[li]) - popped[li]
                spike = backlog + size > emergency
            if start >= next_decision[li] or spike:
                lane._popped = popped[li]  # the observation reads the meter
                obs = observe(lane, start, trace, battery_budget, battery_spent)
                configs[li] = policies[li].select(obs)
                ndecision_acc[li] += 1
                if recorder is not None:
                    recorder.count("fleet.governor_decisions")
                next_decision[li] = start + window_s
                if steal_on:
                    num_stolen += self._try_steal(
                        lane, start, state, heap, slo_class_arr, recorder
                    )
            active = configs[li]
            if thermal is not None and thermal.throttled:
                active = lane.coolest  # hardware throttle overrides the policy
                nthrottle_acc[li] += 1
            if recorder is not None:
                recorder.count("fleet.batches")
                recorder.count(lane_counter[li])
                recorder.observe("fleet.batch_size", size)

            # The active config changes only at governor decisions, so the
            # usage tally and compiled lookup run cached between changes and
            # flush on switch (and once at fold-back).
            if active is last_active[li]:
                last_count[li] += 1
                compiled = last_compiled[li]
            else:
                prev = last_active[li]
                if prev is not None:
                    usage = usages[li]
                    usage[prev.name] = usage.get(prev.name, 0) + last_count[li]
                last_active[li] = active
                last_count[li] = 1
                compiled = compiled_maps[li].get(active.name)
                if compiled is None:
                    compiled = lane.compiled_of(active, cstream, switch_cost)
                if compiled._dec_req is None:
                    compiled.ensure_span_tables()
                last_compiled[li] = compiled
            latency, energy, switch = compiled.price_indices(batch, exit_lists[li])
            switch_acc[li] += switch

            end = start + latency
            sf_extend(batch)
            ss_append(size)
            se_append(end)
            group = correct_groups.get(id(compiled))
            if group is None:
                correct_groups[id(compiled)] = (compiled, list(batch))
            else:
                group[1].extend(batch)

            energy_acc[li] += energy
            busy_acc[li] += latency
            battery_spent += energy
            if has_battery and battery_spent > battery_budget:
                battery_exhausted = True
            if thermal is not None and latency > 0:
                thermal.advance(energy / latency, latency)
            clocks[li] = end
            t_free[li] = end
            depth[li] = len(queues[li])
            nbatch_acc[li] += 1
            qa = qarrs[li]
            if qa:
                expiry = qa[0] + timeout[li]
                mb = max_batch[li]
                if len(qa) >= mb:
                    t = qa[mb - 1]
                    trigger = t if t <= expiry else expiry
                else:
                    trigger = expiry
                heap_push(heap, (end if end > trigger else trigger, li))

        # Speculative block cap.  Routing past a mid-block violation is wasted
        # work that gets rolled back, so the cap tracks the accepted block
        # size actually observed: it halves toward what survives and doubles
        # when a full block goes through clean.  Without it, an empty heap
        # (horizon = inf) would route the entire remaining chunk only to
        # truncate at the first push's timeout trigger — quadratic.
        cap = 16
        chunk = 65536
        chunk_lo = 0
        chunk_hi = 0
        a_chunk: list[float] = []
        d_chunk: list[float] = []
        c_chunk: list[int] | None = None
        i = 0
        while i < n:
            if i >= chunk_hi:
                chunk_lo = i
                chunk_hi = min(i + chunk, n)
                a_chunk = times_np[chunk_lo:chunk_hi].tolist()
                d_chunk = difficulty_np[chunk_lo:chunk_hi].tolist()
                if any_crit:
                    c_chunk = slo_class_arr[chunk_lo:chunk_hi].tolist()
            # The horizon: earliest pending batch start across lanes.  The
            # unvalidated heap top is a *lower bound* on the true horizon
            # (every pending change pushed its then-true start; pendings
            # only move later afterwards), and ending a block early is
            # always exact — the extra drain in between is a no-op — so the
            # bound serves without the validation walk.
            horizon = heap[0][0] if heap else inf
            rel = i - chunk_lo
            if horizon == inf:
                j = chunk_hi
            else:
                j = chunk_lo + br(a_chunk, horizon, rel, chunk_hi - chunk_lo)
                if j <= i:
                    j = i + 1  # unreachable: pendings sit at/past arrival[i]
            if j - i > cap:
                j = i + cap
            jrel = j - chunk_lo
            a_blk = a_chunk[rel:jrel]
            d_blk = d_chunk[rel:jrel]
            c_blk = c_chunk[rel:jrel] if any_crit else None

            if bounded:
                begin_block()
            assignments, admitted = route_block(d_blk, c_blk, a_blk, state)

            size = len(a_blk)
            accepted = size
            if size == 1:
                # Single-request block: no later in-block arrival exists, so
                # no violation is possible — push and refresh the lane's
                # pending without the block-tracking machinery.
                arrival = a_blk[0]
                li = assignments[0]
                if admitted[0]:
                    q_append[li](i)
                    qa_append[li](arrival)
                    adm_append[li](arrival)
                    routed_append[li](arrival)
                    ridx_append[li](i)
                    if any_crit and c_blk[0] == LATENCY_CRITICAL:
                        lane = lanes[li]
                        lane._crit_times.append(arrival)
                        lane.critical_requests += 1
                    qa = qarrs[li]
                    expiry = qa[0] + timeout[li]
                    mb = max_batch[li]
                    if len(qa) >= mb:
                        t = qa[mb - 1]
                        trigger = t if t <= expiry else expiry
                    else:
                        trigger = expiry
                    tf = t_free[li]
                    heap_push(heap, (tf if tf > trigger else trigger, li))
                else:
                    routed_append[li](arrival)
                    lanes[li].num_dropped += 1
            elif min(t_free) >= a_blk[size - 1]:
                # Violation-free block: every lane is busy past the last
                # arrival, so every pending — max(t_free, trigger) — lands
                # at or after every in-block arrival.  No mid-block dispatch
                # is possible and the pushes are pure appends.
                epoch += 1
                touched = []
                t_append = touched.append
                for m in range(size):
                    arrival = a_blk[m]
                    li = assignments[m]
                    if admitted[m]:
                        q_append[li](i + m)
                        qa_append[li](arrival)
                        adm_append[li](arrival)
                        routed_append[li](arrival)
                        ridx_append[li](i + m)
                        if any_crit and c_blk[m] == LATENCY_CRITICAL:
                            lane = lanes[li]
                            lane._crit_times.append(arrival)
                            lane.critical_requests += 1
                        if lane_epoch[li] != epoch:
                            lane_epoch[li] = epoch
                            t_append(li)
                    else:
                        routed_append[li](arrival)
                        lanes[li].num_dropped += 1
                if size == cap and cap < chunk:
                    cap <<= 1
                for lx in touched:
                    qa = qarrs[lx]
                    if qa:
                        expiry = qa[0] + timeout[lx]
                        mb = max_batch[lx]
                        if len(qa) >= mb:
                            t = qa[mb - 1]
                            trigger = t if t <= expiry else expiry
                        else:
                            trigger = expiry
                        tf = t_free[lx]
                        heap_push(heap, (tf if tf > trigger else trigger, lx))
            else:
                min_pend = inf
                epoch += 1
                touched: list[int] = []
                for m in range(size):
                    arrival = a_blk[m]
                    li = assignments[m]
                    if admitted[m]:
                        # Track whether this push creates a batch trigger that
                        # lands before a later in-block arrival (a violation).
                        # Runs before the appends: the live queue length at a
                        # lane's first touch IS its depth at the block start.
                        if lane_epoch[li] != epoch:
                            lane_epoch[li] = epoch
                            touched.append(li)
                            q0 = len(queues[li])
                            mb = max_batch[li]
                            if q0 >= mb:
                                blk_filled[li] = True  # trigger set by old queue
                            else:
                                blk_filled[li] = False
                                blk_count[li] = q0 + 1
                                expiry = (
                                    qarrs[li][0] if q0 else arrival
                                ) + timeout[li]
                                blk_expiry[li] = expiry
                                if q0 == 0:
                                    # Empty lane: this push *sets* the timeout
                                    # trigger (was None before).
                                    tf = t_free[li]
                                    pend = tf if tf > expiry else expiry
                                    if pend < min_pend:
                                        min_pend = pend
                                if q0 + 1 >= mb and arrival <= expiry:
                                    blk_filled[li] = True
                                    tf = t_free[li]
                                    pend = tf if tf > arrival else arrival
                                    if pend < min_pend:
                                        min_pend = pend
                        elif not blk_filled[li]:
                            count = blk_count[li] + 1
                            blk_count[li] = count
                            if count >= max_batch[li]:
                                blk_filled[li] = True
                                if arrival <= blk_expiry[li]:
                                    # Full-batch trigger moved up to this fill.
                                    tf = t_free[li]
                                    pend = tf if tf > arrival else arrival
                                    if pend < min_pend:
                                        min_pend = pend
                        q_append[li](i + m)
                        qa_append[li](arrival)
                        adm_append[li](arrival)
                        routed_append[li](arrival)
                        ridx_append[li](i + m)
                        if any_crit and c_blk[m] == LATENCY_CRITICAL:
                            lane = lanes[li]
                            lane._crit_times.append(arrival)
                            lane.critical_requests += 1
                    else:
                        routed_append[li](arrival)
                        lanes[li].num_dropped += 1
                    if m + 1 < size and min_pend < a_blk[m + 1]:
                        accepted = m + 1  # a dispatch lands mid-block: truncate
                        break

                if accepted < size:
                    rollback(size - accepted)
                    for lx in range(num_lanes):
                        depth[lx] = len(queues[lx])
                    cap = accepted + (accepted >> 1) + 1
                elif size == cap and cap < chunk:
                    cap <<= 1
                for lx in touched:
                    qa = qarrs[lx]
                    if qa:
                        expiry = qa[0] + timeout[lx]
                        mb = max_batch[lx]
                        if len(qa) >= mb:
                            t = qa[mb - 1]
                            trigger = t if t <= expiry else expiry
                        else:
                            trigger = expiry
                        tf = t_free[lx]
                        heap_push(heap, (tf if tf > trigger else trigger, lx))
            if recorder is not None:
                recorder.count("fleet.blocks")
                recorder.observe("fleet.block_size", accepted)

            i += accepted
            if i >= n:
                until = inf
            elif i < chunk_hi:
                until = a_chunk[i - chunk_lo]
            else:
                until = float(times_np[i])
            # Drain: pop-validate-dispatch until the next arrival.  Same
            # dispatch order as the reference scan — ascending start, ties on
            # lane index — via the heap's tuple ordering.  Entries validate
            # lazily: every pending change pushed one, so a mismatch with the
            # lane's current pending start means "stale, skip".
            while heap:
                start, li = heap[0]
                if start >= until:
                    break
                heap_pop(heap)
                qa = qarrs[li]
                if not qa:
                    continue
                expiry = qa[0] + timeout[li]
                mb = max_batch[li]
                if len(qa) >= mb:
                    t = qa[mb - 1]
                    trigger = t if t <= expiry else expiry
                else:
                    trigger = expiry
                tf = t_free[li]
                if (tf if tf > trigger else trigger) != start:
                    continue
                # Form the batch at its dispatch instant: arrival-ordered
                # prefix, opportunistic fill up to the start (same two-trigger
                # semantics as DeviceLane.next_ready_batch, inlined).
                bsize = 0
                for arrival in qa:
                    if bsize >= mb or arrival > start:
                        break
                    bsize += 1
                q = queues[li]
                batch = [q.popleft() for _ in range(bsize)]
                if any_crit:
                    lane = lanes[li]
                    crit_times = lane._crit_times
                    crit_popped = lane._crit_popped
                    for _ in range(bsize):
                        arrival = qa.popleft()
                        if (
                            crit_popped < len(crit_times)
                            and crit_times[crit_popped] <= arrival
                        ):
                            crit_popped += 1
                    lane._crit_popped = crit_popped
                else:
                    for _ in range(bsize):
                        qa.popleft()
                popped[li] += bsize
                dispatch(li, start, batch)

        # Fold the hot-state accumulators back into the lane objects.
        for li, lane in enumerate(lanes):
            prev = last_active[li]
            if prev is not None and last_count[li]:
                usage = usages[li]
                usage[prev.name] = usage.get(prev.name, 0) + last_count[li]
            lane.config = configs[li]
            lane.next_decision = next_decision[li]
            lane.clock = clocks[li]
            lane.t_free = t_free[li]
            lane._popped = popped[li]
            lane.energy_j = energy_acc[li]
            lane.busy_s = busy_acc[li]
            lane.switching_energy_j = switch_acc[li]
            lane.num_batches = nbatch_acc[li]
            lane.governor_decisions = ndecision_acc[li]
            lane.throttled = nthrottle_acc[li]
            lane.exit_counts += np.asarray(exit_lists[li], dtype=np.int64)

        # One scatter for completion/correctness instead of per-batch writes.
        if served_ends:
            flat = np.asarray(served_flat, dtype=np.int64)
            sizes = np.asarray(served_sizes, dtype=np.int64)
            completion[flat] = np.repeat(np.asarray(served_ends), sizes)
        for compiled, idx_list in correct_groups.values():
            idx = np.asarray(idx_list, dtype=np.int64)
            correct[idx] = compiled.correct[idx]

        return self._report(trace, completion, correct, battery_budget,
                            battery_spent, battery_exhausted,
                            num_stolen=num_stolen)

    def _try_steal(
        self,
        thief: DeviceLane,
        now_s: float,
        state: BlockLaneState,
        heap: list[tuple[float, int]],
        slo_class,
        recorder,
    ) -> int:
        """Opportunistic work stealing at a governor horizon (indexed only).

        When the lane that just re-decided has comfortable headroom
        (estimated wait under half the SLO) and some other lane is stalled
        past the SLO, up to one batch of queued *best-effort* requests
        migrates from the stalled lane's queue tail to the thief,
        re-stamped as arriving now.  Returns how many requests moved.
        """
        t_free = state.t_free
        depth = state.depth
        capacity = state.capacity
        li = thief.index
        residual = t_free[li] - now_s
        thief_wait = (residual if residual > 0.0 else 0.0) + depth[li] / capacity[li]
        if thief_wait > 0.5 * self.slo_s:
            return 0
        victim = None
        worst = self.slo_s  # a lane must be stalled *past* the SLO to rob
        for lane in self.lanes:
            other = lane.index
            if other == li:
                continue
            residual = t_free[other] - now_s
            wait = (residual if residual > 0.0 else 0.0) + depth[other] / capacity[other]
            if wait > worst:
                worst = wait
                victim = lane
        if victim is None:
            return 0
        limit = min(victim.queue_depth // 2, thief.stack.batch_policy.max_batch)
        if limit <= 0:
            return 0
        stolen = victim.steal_tail(limit, slo_class)
        if not stolen:
            return 0
        thief.receive_stolen(stolen, now_s)
        moved = len(stolen)
        vi = victim.index
        depth[vi] = len(victim._queue)
        depth[li] = len(thief._queue)
        for lane in (victim, thief):
            lx = lane.index
            qa = lane._queue_arrivals
            if qa:
                policy = lane.stack.batch_policy
                expiry = qa[0] + policy.timeout_s
                mb = policy.max_batch
                if len(qa) >= mb and qa[mb - 1] <= expiry:
                    trigger = qa[mb - 1]
                else:
                    trigger = expiry
                tf = t_free[lx]
                heappush(heap, (tf if tf > trigger else trigger, lx))
        if recorder is not None:
            recorder.count("fleet.steals", moved)
        return moved

    # -------------------------------------------------------------- telemetry
    def _report(
        self,
        trace: Trace,
        completion: np.ndarray,
        correct: np.ndarray,
        battery_budget: float | None,
        battery_spent: float,
        battery_exhausted: bool,
        num_stolen: int = 0,
    ) -> FleetReport:
        n = trace.num_requests
        arrivals = trace.arrival_s
        served = ~np.isnan(completion)
        num_served = int(served.sum())
        num_dropped = n - num_served
        latencies = completion[served] - arrivals[served]
        makespan = max(
            float(np.max(completion[served])) if num_served else 0.0, trace.duration_s
        )

        devices = []
        for lane in self.lanes:
            idx = np.asarray(lane.request_indices, dtype=np.int64)
            lane_lat = (completion[idx] - arrivals[idx]) if len(idx) else np.zeros(0)
            lane_served = len(idx)
            devices.append(
                DeviceTelemetry(
                    platform=lane.stack.spec.platform,
                    requests=lane_served,
                    share=lane_served / n if n else 0.0,
                    batches=lane.num_batches,
                    mean_batch_size=lane_served / lane.num_batches if lane.num_batches else 0.0,
                    utilization=lane.busy_s / makespan if makespan > 0 else 0.0,
                    latency_ms_p50=percentile_ms(lane_lat, 50),
                    latency_ms_p95=percentile_ms(lane_lat, 95),
                    latency_ms_p99=percentile_ms(lane_lat, 99),
                    deadline_miss_rate=float((lane_lat > self.slo_s).mean()) if lane_served else 0.0,
                    energy_j=lane.energy_j,
                    energy_per_request_j=lane.energy_j / lane_served if lane_served else 0.0,
                    switching_energy_j=lane.switching_energy_j,
                    accuracy=float(correct[idx].mean()) if lane_served else 0.0,
                    exit_usage=[float(c) / lane_served if lane_served else 0.0 for c in lane.exit_counts],
                    config_usage=dict(lane.config_usage),
                    governor_decisions=lane.governor_decisions,
                    throttled_batches=lane.throttled,
                    peak_temperature_c=lane.thermal.peak_c if lane.thermal is not None else 0.0,
                    critical_requests=lane.critical_requests,
                    num_dropped=lane.num_dropped,
                    stolen_in=lane.stolen_in,
                    stolen_out=lane.stolen_out,
                )
            )

        exit_counts = np.sum([lane.exit_counts for lane in self.lanes], axis=0)
        total_energy = sum(lane.energy_j for lane in self.lanes)
        return FleetReport(
            pattern=trace.pattern,
            scenario=self.scenario.name,
            policy=self.spec.policy,
            router=self.spec.router,
            model=self.spec.model_label,
            seed=self.spec.seed,
            slo_ms=self.slo_s * 1e3,
            platforms=list(self.spec.platforms),
            num_requests=n,
            duration_s=trace.duration_s,
            offered_rate_rps=trace.mean_rate_hz,
            throughput_rps=num_served / makespan if makespan > 0 else 0.0,
            latency_ms_mean=float(latencies.mean() * 1e3) if num_served else 0.0,
            latency_ms_p50=percentile_ms(latencies, 50),
            latency_ms_p95=percentile_ms(latencies, 95),
            latency_ms_p99=percentile_ms(latencies, 99),
            deadline_miss_rate=float((latencies > self.slo_s).mean())
            if num_served
            else 0.0,
            energy_per_request_j=total_energy / num_served if num_served else 0.0,
            total_energy_j=total_energy,
            switching_energy_j=sum(lane.switching_energy_j for lane in self.lanes),
            accuracy=float(correct[served].mean()) if num_served else 0.0,
            exit_usage=[
                float(c) / num_served if num_served else 0.0 for c in exit_counts
            ],
            governor_decisions=sum(lane.governor_decisions for lane in self.lanes),
            peak_temperature_c=max(
                (lane.thermal.peak_c for lane in self.lanes if lane.thermal is not None),
                default=0.0,
            ),
            battery_budget_j=battery_budget or 0.0,
            battery_spent_j=battery_spent if battery_budget is not None else 0.0,
            battery_exhausted=battery_exhausted,
            devices=devices,
            num_served=num_served,
            num_dropped=num_dropped,
            num_deferred=0,
            drop_rate=num_dropped / n if n else 0.0,
            class_stats=class_latency_stats(
                trace.slo_class, SLO_CLASSES, arrivals, completion, self.slo_s
            ),
            num_stolen=num_stolen,
        )


def run_fleet_cell(spec: FleetSpec) -> FleetReport:
    """Evaluate one fleet grid cell: pure function of the spec (cache-safe)."""
    stacks = build_fleet_stacks(spec)
    trace, stream = build_fleet_trace_and_stream(spec, stacks)
    return FleetSimulator(spec, stacks).run(trace, stream)


def fleet_cache_key(cache: ResultCache, spec: FleetSpec):
    """Content address of one fleet cell in the persistent cache."""
    return cache.key(
        "fleet",
        version=FLEET_CELL_VERSION,
        spec=dataclasses.asdict(spec),
    )


def fleet_sweep(
    specs: list[FleetSpec],
    service: EvaluationService | None = None,
    workers: int = 1,
    executor: str = "auto",
    cache_dir: str | None = None,
) -> list[FleetReport]:
    """Run a grid of fleet cells concurrently through the engine.

    Results come back in submission order; cells sharing a spec are
    deduplicated within the batch and, with ``cache_dir`` set, persist
    across runs under the ``fleet`` cache namespace.
    """
    owned = service is None
    if service is None:
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        service = EvaluationService(executor=executor, workers=workers, cache=cache)
    try:
        # Codec-backed: a FleetSpec *is* the slim task payload, so the
        # multi-worker ``auto`` executor runs the grid on its process pool.
        tasks = [
            spec_task(
                task_spec("fleet-cell", spec=spec),
                key=fleet_cache_key(service.cache, spec)
                if service.cache is not None
                else None,
                cls=FleetReport,
            )
            for spec in specs
        ]
        return service.evaluate_batch(tasks)
    except BaseException:
        if owned:
            service.close(cancel=True)  # drop queued cells; leak no workers
        raise
    finally:
        if owned:
            service.close()
