"""Runtime configuration ladder and the adaptive serving governor.

A :class:`RuntimeConfig` is one deployable dynamic configuration — entropy
thresholds at a target exit rate (via :func:`repro.runtime.controller.
tune_thresholds`) plus a DVFS assignment (a single operating point, or the
per-exit table planned by :func:`repro.runtime.planner.plan_per_exit_dvfs`)
— annotated with its expected per-request latency / energy / power under the
calibration stream's exit-usage mix.

:func:`plan_config_ladder` enumerates the grid of exit rates × DVFS tiers
("perf" = max clocks, "balanced" = the planner's best single setting, "eco"
= the planner's per-exit table) — the menu the runtime can switch between.

Two policies consume the ladder:

* :class:`StaticPolicy` — one fixed config for the whole run, chosen by
  :func:`static_config_for` to be the cheapest config that sustains the
  trace's *mean* arrival rate (how a static deployment is provisioned);
* :class:`AdaptiveGovernor` — per decision window, observes arrival rate,
  backlog and the scenario's power/energy caps, and picks the cheapest
  config whose service capacity covers current demand, escalating to the
  highest-capacity config when overloaded (load shedding via early exits
  and clocks, EdgeBERT/Predictive-Exit style).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from repro.eval.dynamic import DynamicEvaluator
from repro.exits.placement import ExitPlacement
from repro.hardware.dvfs import DvfsSetting, DvfsSpace
from repro.hardware.energy import PathProfile
from repro.runtime.controller import EntropyThresholdController, tune_thresholds
from repro.runtime.governor import DvfsGovernor
from repro.runtime.planner import plan_per_exit_dvfs
from repro.serving.batcher import BatchPolicy
from repro.serving.stream import ServingStream

#: Exit-rate rungs of the default ladder (per-exit take rates).
DEFAULT_EXIT_RATES = (0.15, 0.35, 0.55, 0.8)


@dataclass(frozen=True)
class RuntimeConfig:
    """One deployable (thresholds, DVFS) configuration with expectations."""

    name: str
    exit_rate: float
    thresholds: tuple[float, ...]
    setting: DvfsSetting
    per_exit: tuple[tuple[int, DvfsSetting], ...] | None
    expected_usage: tuple[float, ...]  # per exit, last = full network
    expected_accuracy: float  # calibration-stream accuracy under the thresholds
    expected_busy_s: float  # usage-weighted roofline time per request
    expected_latency_s: float  # batch-of-one latency per request
    expected_energy_j: float  # batch-of-one energy per request
    path_overheads_s: tuple[float, ...]  # dispatch overhead per path
    path_latencies_s: tuple[float, ...]  # stand-alone latency per path

    @property
    def expected_power_w(self) -> float:
        if self.expected_latency_s <= 0:
            return 0.0
        return self.expected_energy_j / self.expected_latency_s

    def controller(self) -> EntropyThresholdController:
        return EntropyThresholdController(
            np.asarray(self.thresholds), num_exits=len(self.thresholds)
        )

    def dvfs_governor(self, switch_cost_j: float = 0.0) -> DvfsGovernor:
        per_exit = dict(self.per_exit) if self.per_exit is not None else None
        return DvfsGovernor(self.setting, per_exit=per_exit, switch_cost_j=switch_cost_j)

    def expected_shared_overhead_s(self, batch_size: int) -> float:
        """Expected dispatch overhead paid once by a batch of ``batch_size``.

        The batch pays the overhead of its deepest path; under independent
        exit draws, P(deepest = k) follows from the usage CDF.  Pure in
        ``(self, batch_size)`` and called per governor decision, so the
        result is memoized on the instance (frozen dataclass, hence the
        ``object.__setattr__`` for the lazily created cache dict).
        """
        cache = getattr(self, "_shared_overhead_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_shared_overhead_cache", cache)
        value = cache.get(batch_size)
        if value is None:
            usage = np.asarray(self.expected_usage)
            overheads = np.asarray(self.path_overheads_s)
            cdf = np.cumsum(usage)
            cdf = cdf / max(cdf[-1], 1e-12)
            p_all_leq = cdf**batch_size
            p_max = np.diff(np.concatenate([[0.0], p_all_leq]))
            value = float(p_max @ overheads)
            cache[batch_size] = value
        return value

    def _batch_times(self, max_batch: int) -> tuple[float, ...]:
        """``batch_time(b)`` for b = 1..``max_batch``, memoized.

        ``b * expected_busy_s + expected_shared_overhead_s(b)`` is pure in
        ``(self, b)``; the governor evaluates it for every candidate config
        on every window decision, so precomputing the ladder once turns the
        per-decision cost into float comparisons.
        """
        cache = getattr(self, "_batch_time_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_batch_time_cache", cache)
        times = cache.get(max_batch)
        if times is None:
            times = tuple(
                b * self.expected_busy_s + self.expected_shared_overhead_s(b)
                for b in range(1, max_batch + 1)
            )
            cache[max_batch] = times
        return times

    def capacity_rps(self, batch_policy: BatchPolicy) -> float:
        """Sustainable throughput at full micro-batches (requests/second)."""
        b = batch_policy.max_batch
        batch_time = self._batch_times(b)[b - 1]
        if batch_time <= 0:
            return float("inf")
        return b / batch_time

    def equilibrium_batch(self, demand_rps: float, batch_policy: BatchPolicy) -> int:
        """Smallest batch size whose throughput covers ``demand_rps``.

        Under steady load the backlog grows until batches are big enough to
        keep up — this is the batch size the system settles at (``max_batch``
        when even full batches cannot keep up).
        """
        times = self._batch_times(batch_policy.max_batch)
        for b, batch_time in enumerate(times, start=1):
            if batch_time <= 0 or b / batch_time >= demand_rps:
                return b
        return batch_policy.max_batch

    def expected_sojourn_s(self, demand_rps: float, batch_policy: BatchPolicy) -> float:
        """Per-request latency estimate at the operating point.

        Batch service time at the equilibrium batch size, plus half a batch
        period of queueing/formation wait — the cost that saturation
        capacity alone hides: a config can be stable yet sojourn-miserable.
        """
        b = self.equilibrium_batch(demand_rps, batch_policy)
        return 1.5 * self._batch_times(batch_policy.max_batch)[b - 1]

    def slo_miss_floor(self, slo_s: float, queue_margin: float = 0.7) -> float:
        """Structural deadline-miss fraction: requests routed to paths whose
        *stand-alone* latency already exceeds ``queue_margin``·SLO cannot
        make the deadline once queueing and batch wait are added — no
        capacity fixes that, only a different config.

        Pure in ``(self, slo_s, queue_margin)`` and probed for every
        candidate on every governor decision, so memoized per instance.
        """
        cache = getattr(self, "_miss_floor_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_miss_floor_cache", cache)
        key = (slo_s, queue_margin)
        value = cache.get(key)
        if value is None:
            usage = np.asarray(self.expected_usage)
            latencies = np.asarray(self.path_latencies_s)
            value = float(usage[latencies > slo_s * queue_margin].sum())
            cache[key] = value
        return value


def _profiles_for(
    evaluator: DynamicEvaluator,
    placement: ExitPlacement,
    governor: DvfsGovernor,
) -> list[PathProfile]:
    """Per-path execution profiles under a (possibly per-exit) DVFS map.

    With a table-backed evaluator the profiles come straight from the
    :class:`~repro.hardware.cost_table.CostTableBank` — ladder construction
    stops re-walking layers through the timing kernel (a per-exit map reuses
    one table per distinct setting).  Bit-identical to the
    :meth:`EnergyModel.path_profile` walk, which remains the reference path
    for ``use_tables=False`` evaluators.
    """
    positions = placement.positions
    profiles = []
    if evaluator.use_tables:
        branches = [evaluator.branch_cost(p) for p in positions]
        for index in range(len(positions) + 1):
            table = evaluator.bank.table(governor.setting_for(index))
            if index < len(positions):
                profiles.append(table.exit_path_profile(positions, branches, index))
            else:
                profiles.append(table.full_path_profile(positions, branches))
        return profiles
    for index in range(len(positions) + 1):
        setting = governor.setting_for(index)
        if index < len(positions):
            layers = list(evaluator.cost.prefix(positions[index]))
            layers.extend(evaluator.branch_cost(p) for p in positions[: index + 1])
        else:
            layers = list(evaluator.cost.layers)
            layers.extend(evaluator.branch_cost(p) for p in positions)
        profiles.append(evaluator.energy_model.path_profile(layers, setting))
    return profiles


def _expected_usage(
    calibration: ServingStream, thresholds: np.ndarray
) -> tuple[np.ndarray, float]:
    """(exit-usage fractions, accuracy) of thresholds on the calibration mix."""
    controller = EntropyThresholdController(thresholds, calibration.num_exits)
    decisions = controller.decide(calibration.exit_logits)
    counts = np.bincount(decisions, minlength=calibration.num_exits + 1)
    n = max(len(decisions), 1)
    correct = 0
    for j, d in enumerate(decisions):
        if d < calibration.num_exits:
            predicted = calibration.exit_logits[d, j].argmax()
        else:
            predicted = calibration.final_logits[j].argmax()
        correct += int(predicted == calibration.labels[j])
    return counts / n, correct / n


def build_config(
    name: str,
    exit_rate: float,
    evaluator: DynamicEvaluator,
    placement: ExitPlacement,
    calibration: ServingStream,
    setting: DvfsSetting,
    per_exit: dict[int, DvfsSetting] | None = None,
) -> RuntimeConfig:
    """Materialise one ladder rung and annotate its expectations."""
    thresholds = tune_thresholds(calibration.exit_logits, exit_rate, kind="entropy")
    usage, accuracy = _expected_usage(calibration, thresholds)
    governor = DvfsGovernor(setting, per_exit=per_exit)
    profiles = _profiles_for(evaluator, placement, governor)
    busy = float(usage @ np.asarray([p.busy_s for p in profiles]))
    latency = float(usage @ np.asarray([p.latency_s for p in profiles]))
    energy = float(usage @ np.asarray([p.energy_j for p in profiles]))
    return RuntimeConfig(
        name=name,
        exit_rate=float(exit_rate),
        thresholds=tuple(float(t) for t in thresholds),
        setting=setting,
        per_exit=tuple(sorted(per_exit.items())) if per_exit else None,
        expected_usage=tuple(float(u) for u in usage),
        expected_accuracy=float(accuracy),
        expected_busy_s=busy,
        expected_latency_s=latency,
        expected_energy_j=energy,
        path_overheads_s=tuple(p.overhead_s for p in profiles),
        path_latencies_s=tuple(p.latency_s for p in profiles),
    )


def plan_config_ladder(
    evaluator: DynamicEvaluator,
    placement: ExitPlacement,
    dvfs_space: DvfsSpace,
    calibration: ServingStream,
    exit_rates: tuple[float, ...] = DEFAULT_EXIT_RATES,
    latency_slack: float = 1.5,
    eco_slack: float = 3.0,
) -> list[RuntimeConfig]:
    """The runtime's switchable configuration menu.

    Three DVFS tiers per exit rate: maximum clocks ("perf"), the planner's
    energy-best single setting under ``latency_slack`` ("balanced"), and the
    planner's per-exit table under the deeper ``eco_slack`` ("eco") —
    post-exit frequency scaling trading more latency for energy.
    """
    plan = plan_per_exit_dvfs(evaluator, placement, dvfs_space, latency_slack=latency_slack)
    eco_plan = plan_per_exit_dvfs(evaluator, placement, dvfs_space, latency_slack=eco_slack)
    perf = dvfs_space.default_setting()
    balanced = min(
        plan.settings.values(),
        key=lambda s: evaluator.full_path_cost(placement.positions, s)[0],
    )
    tiers: list[tuple[str, DvfsSetting, dict[int, DvfsSetting] | None]] = [
        ("perf", perf, None),
        ("balanced", balanced, None),
        ("eco", balanced, dict(eco_plan.settings)),
    ]
    ladder = []
    for rate in exit_rates:
        for tier, setting, per_exit in tiers:
            ladder.append(
                build_config(
                    f"x{rate:.2f}-{tier}",
                    rate,
                    evaluator,
                    placement,
                    calibration,
                    setting,
                    per_exit,
                )
            )
    return ladder


@dataclass(frozen=True)
class GovernorObservation:
    """What the runtime can see at a decision point."""

    now_s: float
    window_s: float
    arrival_rate_hz: float  # arrivals/second over the last window
    backlog: int  # requests arrived but not yet dispatched
    slo_s: float
    temperature_c: float = 0.0
    power_cap_w: float | None = None  # thermal constraint, None = unconstrained
    energy_cap_j: float | None = None  # battery allowance per request
    critical_backlog: int = 0  # latency-critical share of ``backlog``


class ServingPolicy:
    """Base: maps an observation to the config for the next window."""

    name = "policy"

    def select(self, obs: GovernorObservation) -> RuntimeConfig:
        raise NotImplementedError


class StaticPolicy(ServingPolicy):
    """The baseline: one fixed configuration, whatever the weather."""

    name = "static"

    def __init__(self, config: RuntimeConfig):
        self.config = config

    def select(self, obs: GovernorObservation) -> RuntimeConfig:
        return self.config


#: Structural-miss fraction a config may carry and still count as SLO-capable.
SLO_MISS_TOLERANCE = 0.05


def _best_sustaining(
    candidates: list[RuntimeConfig],
    capacity_rps: dict[str, float],
    demand_rps: float,
    slo_s: float,
    batch_policy: BatchPolicy,
) -> RuntimeConfig:
    """Quality-first selection under throughput and deadline feasibility.

    1. Among configs that sustain ``demand_rps``, route ≤ 5 % of requests
       onto paths too slow for the SLO, *and* whose expected sojourn at the
       operating point fits the SLO: the most accurate, breaking ties on
       energy.
    2. No SLO-capable sustaining config: the sustaining config with the
       smallest (miss floor, sojourn) — degrade deadlines gracefully.
    3. Nothing sustains the demand: the highest-capacity candidate — shed
       compute to survive the rush.
    """
    sustaining = [c for c in candidates if capacity_rps[c.name] >= demand_rps]
    if sustaining:
        capable = [
            c
            for c in sustaining
            if c.slo_miss_floor(slo_s) <= SLO_MISS_TOLERANCE
            and c.expected_sojourn_s(demand_rps, batch_policy) <= slo_s
        ]
        if capable:
            return max(
                capable, key=lambda c: (c.expected_accuracy, -c.expected_energy_j)
            )
        return min(
            sustaining,
            key=lambda c: (
                c.slo_miss_floor(slo_s),
                c.expected_sojourn_s(demand_rps, batch_policy),
                -c.expected_accuracy,
            ),
        )
    return max(candidates, key=lambda c: capacity_rps[c.name])


class AdaptiveGovernor(ServingPolicy):
    """Per-window config selection under load, thermal and battery state.

    Selection rule (quality-first, EdgeBERT-style): among configs satisfying
    the scenario's power/energy caps, run the *most accurate* one whose
    full-batch capacity covers current demand (recent arrival rate ×
    ``safety`` plus backlog drain), breaking ties on energy; when nothing
    sustains the demand, shed compute with the highest-capacity capped
    config — early exits and clocks absorb the burst.
    """

    name = "adaptive"

    def __init__(
        self,
        ladder: list[RuntimeConfig],
        batch_policy: BatchPolicy,
        safety: float = 1.25,
        rate_smoothing: float = 0.35,
    ):
        if not ladder:
            raise ValueError("adaptive governor needs a non-empty config ladder")
        self.ladder = list(ladder)
        self.batch_policy = batch_policy
        self.safety = safety
        self.rate_smoothing = rate_smoothing
        self._capacity = {c.name: c.capacity_rps(batch_policy) for c in self.ladder}
        self._rate_ewma: float | None = None
        self._demand_tables: dict[float, tuple[list[float], list[RuntimeConfig]]] = {}

    def _allowed(self, obs: GovernorObservation) -> list[RuntimeConfig]:
        allowed = [
            c
            for c in self.ladder
            if (obs.power_cap_w is None or c.expected_power_w <= obs.power_cap_w)
            and (obs.energy_cap_j is None or c.expected_energy_j <= obs.energy_cap_j)
        ]
        if allowed:
            return allowed
        # Nothing satisfies every cap: fall back to the frugal extreme.
        return [min(self.ladder, key=lambda c: c.expected_energy_j)]

    def select(self, obs: GovernorObservation) -> RuntimeConfig:
        # Spikes register immediately (max with the instantaneous rate);
        # dips only lower the estimate through the EWMA, so one quiet window
        # cannot bait the governor into a config the steady load overwhelms.
        if self._rate_ewma is None:
            self._rate_ewma = obs.arrival_rate_hz
        else:
            self._rate_ewma += self.rate_smoothing * (
                obs.arrival_rate_hz - self._rate_ewma
            )
        demand = max(obs.arrival_rate_hz, self._rate_ewma) * self.safety
        if obs.window_s > 0:
            demand += obs.backlog / obs.window_s
            # Latency-critical backlog counts double: it must drain early in
            # the window to leave queueing headroom under the SLO, so the
            # governor provisions as if each critical request were two.
            demand += obs.critical_backlog / obs.window_s
        if obs.power_cap_w is None and obs.energy_cap_j is None:
            # No caps: every ladder config is allowed, and the selection is a
            # piecewise-constant function of demand — one bisect replaces the
            # full feasibility scan (see _demand_table).
            breakpoints, configs = self._demand_table(obs.slo_s)
            return configs[bisect_left(breakpoints, demand)]
        return _best_sustaining(
            self._allowed(obs), self._capacity, demand, obs.slo_s, self.batch_policy
        )

    def _demand_table(self, slo_s: float) -> tuple[list[float], list[RuntimeConfig]]:
        """Uncapped selection as a lookup table over demand intervals.

        With no power/energy caps, ``_best_sustaining`` depends on demand
        only through ``>=`` comparisons against a fixed set of thresholds:
        each config's full-batch capacity (the sustaining test) and each
        ``b / batch_time(b)`` throughput rung (the equilibrium-batch scan
        behind the sojourn estimate).  Between consecutive thresholds every
        comparison is constant, so the selected config is too.  The table
        evaluates the exact ``_best_sustaining`` once per interval — at the
        interval's inclusive right endpoint, since ``thr >= demand`` flips
        as demand crosses *above* a threshold, making intervals
        ``(prev, thr]`` — and ``select`` reduces to one ``bisect_left``.
        Bit-identical to the scan by construction.
        """
        table = self._demand_tables.get(slo_s)
        if table is None:
            inf = float("inf")
            thresholds: set[float] = set()
            for c in self.ladder:
                cap = self._capacity[c.name]
                if cap != inf:
                    thresholds.add(cap)
                for b, bt in enumerate(
                    c._batch_times(self.batch_policy.max_batch), start=1
                ):
                    if bt > 0:
                        rung = b / bt
                        if rung != inf:
                            thresholds.add(rung)
            breakpoints = sorted(thresholds)
            probes = breakpoints + [
                (breakpoints[-1] * 2.0 + 1.0) if breakpoints else 1.0
            ]
            configs = [
                _best_sustaining(
                    self.ladder, self._capacity, demand, slo_s, self.batch_policy
                )
                for demand in probes
            ]
            table = (breakpoints, configs)
            self._demand_tables[slo_s] = table
        return table


def static_config_for(
    ladder: list[RuntimeConfig],
    mean_rate_hz: float,
    slo_s: float,
    batch_policy: BatchPolicy,
    safety: float = 1.25,
) -> RuntimeConfig:
    """Provision a fixed config for the mean arrival rate.

    The same quality-first rule the adaptive governor applies per window,
    evaluated once against the trace mean — a fair static baseline (and
    how a real deployment without runtime adaptation would be sized).
    """
    capacity = {c.name: c.capacity_rps(batch_policy) for c in ladder}
    return _best_sustaining(
        list(ladder), capacity, mean_rate_hz * safety, slo_s, batch_policy
    )
