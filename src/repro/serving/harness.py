"""Serving cells: spec → stack → report, and the concurrent sweep.

A :class:`ServingSpec` fully describes one serving run (platform, model,
load pattern, scenario, policy, SLO, seed ...) as plain JSON-able fields.
:func:`run_serving_cell` is the pure module-level function evaluating one
spec — picklable for the process executor and content-addressable for the
persistent :class:`~repro.engine.cache.ResultCache` — and :func:`sweep`
fans a grid of specs through the PR-1 :class:`~repro.engine.service.
EvaluationService` so a full scenario grid runs concurrently with results
keyed into the cache.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.accuracy.exit_model import BackboneExitOracle
from repro.accuracy.surrogate import AccuracySurrogate
from repro.baselines.attentivenas import ATTENTIVENAS_MODELS, attentivenas_model
from repro.engine.cache import ResultCache
from repro.engine.service import EvaluationService
from repro.engine.tasks import spec_task, task_spec
from repro.eval.dynamic import DynamicEvaluator
from repro.eval.static import StaticEvaluator
from repro.exits.placement import MIN_EXIT_POSITION, ExitPlacement
from repro.hardware.dvfs import DvfsSpace
from repro.hardware.energy import EnergyModel
from repro.hardware.platform import get_platform, validate_platform_keys
from repro.serving.batcher import ADMISSION_MODES, AdmissionPolicy, BatchPolicy
from repro.serving.deploy import DeployedDesign
from repro.serving.governor import (
    RuntimeConfig,
    AdaptiveGovernor,
    StaticPolicy,
    plan_config_ladder,
    static_config_for,
)
from repro.serving.scenarios import Scenario, get_scenario
from repro.serving.simulator import ServingSimulator
from repro.serving.stream import LogitsSynthesizer, ServingStream
from repro.serving.telemetry import ServingReport
from repro.serving.workload import LOAD_PATTERNS, Trace, make_trace
from repro.utils.validation import check_positive

#: Bump when serving-cell semantics change; orphans persisted serving entries.
SERVING_CELL_VERSION = "2"

POLICY_NAMES = ("static", "adaptive")


@dataclass(frozen=True)
class ServingSpec:
    """Everything one serving run depends on, as plain data.

    ``design`` mounts a searched :class:`~repro.serving.deploy.
    DeployedDesign` — the backbone, exit placement and accuracy then come
    from the search output instead of the named AttentiveNAS model with the
    default exit spread (``model``/``num_exits`` are ignored for the mount
    but kept in the cache key via the design itself).
    """

    platform: str = "tx2-gpu"
    model: str = "a3"
    pattern: str = "poisson"
    scenario: str = "nominal"
    policy: str = "adaptive"
    slo_ms: float = 75.0
    utilization: float = 0.7  # offered load relative to reference capacity
    rate_hz: float | None = None  # explicit arrival rate overrides utilization
    duration_s: float = 20.0
    num_exits: int = 3
    seed: int = 7
    max_batch: int = 6
    batch_timeout_ms: float = 4.0
    window_ms: float = 400.0
    num_classes: int = 10
    calibration_samples: int = 512
    design: DeployedDesign | None = None
    critical_fraction: float = 0.0  # share of latency-critical arrivals
    admission_max_queue: int | None = None  # backlog cap; None = unbounded
    admission_mode: str = "drop"  # "drop" | "defer" when a cap is set
    admission_critical_bypass: bool = True  # criticals ignore the cap

    def __post_init__(self):
        validate_platform_keys([self.platform])
        if self.design is None and self.model not in ATTENTIVENAS_MODELS:
            raise ValueError(
                f"unknown model {self.model!r}; valid: {ATTENTIVENAS_MODELS}"
            )
        if self.pattern not in LOAD_PATTERNS:
            raise ValueError(
                f"unknown load pattern {self.pattern!r}; valid: {LOAD_PATTERNS}"
            )
        get_scenario(self.scenario)  # raises with the valid names
        if self.policy not in POLICY_NAMES:
            raise ValueError(f"unknown policy {self.policy!r}; valid: {POLICY_NAMES}")
        check_positive("slo_ms", self.slo_ms)
        check_positive("duration_s", self.duration_s)
        check_positive("num_exits", self.num_exits)
        check_positive("utilization", self.utilization)
        if self.rate_hz is not None:
            check_positive("rate_hz", self.rate_hz)
        if not 0.0 <= self.critical_fraction <= 1.0:
            raise ValueError("critical_fraction must lie in [0, 1]")
        if self.admission_mode not in ADMISSION_MODES:
            raise ValueError(
                f"unknown admission mode {self.admission_mode!r}; "
                f"valid: {ADMISSION_MODES}"
            )
        if self.admission_max_queue is not None:
            check_positive("admission_max_queue", self.admission_max_queue)

    def admission_policy(self) -> AdmissionPolicy | None:
        """The admission gate this spec configures (None = admit everything)."""
        if self.admission_max_queue is None:
            return None
        return AdmissionPolicy(
            max_queue=self.admission_max_queue,
            mode=self.admission_mode,
            critical_bypass=self.admission_critical_bypass,
        )

    @property
    def model_label(self) -> str:
        """What telemetry reports as the served model."""
        if self.design is not None:
            return f"{self.design.label}:{self.design.backbone.key}"
        return self.model


@dataclass
class ServingStack:
    """Everything built once per (platform, model, seed) serving setup."""

    spec: ServingSpec
    evaluator: DynamicEvaluator
    placement: ExitPlacement
    synthesizer: LogitsSynthesizer
    ladder: list[RuntimeConfig]
    static_config: RuntimeConfig
    batch_policy: BatchPolicy
    scenario: Scenario
    rate_hz: float

    def battery_budget_j(self, num_requests: int) -> float | None:
        """Absolute allowance: scenario scale × static-baseline spend."""
        if self.scenario.battery_scale is None:
            return None
        return (
            self.scenario.battery_scale
            * self.static_config.expected_energy_j
            * max(num_requests, 1)
        )


def reference_config(ladder: list[RuntimeConfig]) -> RuntimeConfig:
    """The mid-rate "balanced" rung: the device's comparable-load anchor.

    Used both to size offered load (utilization × its capacity) and, by the
    fleet routers, as each device's capacity/energy reference.
    """
    balanced = [c for c in ladder if c.name.endswith("-balanced")]
    return balanced[len(balanced) // 2]


def default_placement(total_layers: int, num_exits: int) -> ExitPlacement:
    """Exits spread over the backbone's depth (30–80 % of the layers)."""
    fractions = np.linspace(0.3, 0.8, num_exits)
    positions = sorted(
        {
            int(np.clip(round(f * total_layers), MIN_EXIT_POSITION, total_layers - 1))
            for f in fractions
        }
    )
    return ExitPlacement(total_layers, tuple(positions))


def build_serving_stack(spec: ServingSpec) -> ServingStack:
    """Materialise the full serving stack for one spec."""
    platform = get_platform(spec.platform)
    if spec.design is not None:
        backbone = spec.design.backbone
        accuracy = spec.design.backbone_accuracy
    else:
        backbone = attentivenas_model(spec.model)
        accuracy = None
    surrogate = AccuracySurrogate(seed=spec.seed)
    static_eval = StaticEvaluator(platform, surrogate, seed=spec.seed)
    static = static_eval.evaluate(backbone)
    if accuracy is None:
        accuracy = surrogate.accuracy_fraction(backbone)
    oracle = BackboneExitOracle(
        backbone.key, backbone.total_mbconv_layers, accuracy, seed=spec.seed
    )
    evaluator = DynamicEvaluator(
        config=backbone,
        cost=static_eval.cost(backbone),
        oracle=oracle,
        energy_model=EnergyModel(platform),
        baseline_energy_j=static.energy_j,
        baseline_latency_s=static.latency_s,
    )
    if spec.design is not None:
        placement = spec.design.placement()
    else:
        placement = default_placement(backbone.total_mbconv_layers, spec.num_exits)
    synthesizer = LogitsSynthesizer(
        placement=placement,
        backbone_accuracy=accuracy,
        num_classes=spec.num_classes,
        seed=spec.seed,
    )
    calibration = synthesizer.calibration_stream(spec.calibration_samples)
    batch_policy = BatchPolicy(spec.max_batch, spec.batch_timeout_ms / 1e3)
    ladder = plan_config_ladder(evaluator, placement, DvfsSpace(platform), calibration)

    # Offered load is tied to the device: utilization × the capacity of the
    # mid-rate "balanced" rung, so every platform is stressed comparably.
    reference = reference_config(ladder)
    if spec.rate_hz is not None:
        rate_hz = spec.rate_hz
    else:
        rate_hz = spec.utilization * reference.capacity_rps(batch_policy)

    static_config = static_config_for(
        ladder, rate_hz, spec.slo_ms / 1e3, batch_policy
    )
    return ServingStack(
        spec=spec,
        evaluator=evaluator,
        placement=placement,
        synthesizer=synthesizer,
        ladder=ladder,
        static_config=static_config,
        batch_policy=batch_policy,
        scenario=get_scenario(spec.scenario),
        rate_hz=rate_hz,
    )


def build_trace_and_stream(stack: ServingStack) -> tuple[Trace, ServingStream]:
    """The paired (trace, logits) inputs both policies are compared on."""
    spec = stack.spec
    trace = make_trace(
        spec.pattern,
        stack.rate_hz,
        spec.duration_s,
        seed=spec.seed,
        critical_fraction=spec.critical_fraction,
    )
    stream = stack.synthesizer.synthesize(trace.difficulties())
    return trace, stream


def run_serving_cell(spec: ServingSpec) -> ServingReport:
    """Evaluate one grid cell: pure function of the spec (cache-safe)."""
    stack = build_serving_stack(spec)
    trace, stream = build_trace_and_stream(stack)
    if spec.policy == "static":
        policy = StaticPolicy(stack.static_config)
    else:
        policy = AdaptiveGovernor(stack.ladder, stack.batch_policy)
    simulator = ServingSimulator(
        evaluator=stack.evaluator,
        placement=stack.placement,
        policy=policy,
        ladder=stack.ladder,
        scenario=stack.scenario,
        slo_s=spec.slo_ms / 1e3,
        batch_policy=stack.batch_policy,
        window_s=spec.window_ms / 1e3,
        battery_budget_j=stack.battery_budget_j(trace.num_requests),
        admission=spec.admission_policy(),
    )
    return simulator.run(
        trace, stream, platform=spec.platform, model=spec.model_label, seed=spec.seed
    )


def cell_cache_key(cache: ResultCache, spec: ServingSpec):
    """Content address of one serving cell in the persistent cache."""
    return cache.key(
        "serving",
        version=SERVING_CELL_VERSION,
        spec=dataclasses.asdict(spec),
    )


def sweep(
    specs: list[ServingSpec],
    service: EvaluationService | None = None,
    workers: int = 1,
    executor: str = "auto",
    cache_dir: str | None = None,
) -> list[ServingReport]:
    """Run a grid of serving cells concurrently through the engine.

    Results come back in submission order; cells sharing a spec are
    deduplicated within the batch and, with ``cache_dir`` set, persist
    across runs under the ``serving`` cache namespace.
    """
    owned = service is None
    if service is None:
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        service = EvaluationService(executor=executor, workers=workers, cache=cache)
    try:
        # Codec-backed: a ServingSpec *is* the slim task payload, so the
        # multi-worker ``auto`` executor runs the grid on its process pool.
        tasks = [
            spec_task(
                task_spec("serving-cell", spec=spec),
                # `is not None`, not truthiness: an *empty* ResultCache has
                # len() == 0 and would otherwise be skipped on first use.
                key=cell_cache_key(service.cache, spec)
                if service.cache is not None
                else None,
                cls=ServingReport,
            )
            for spec in specs
        ]
        return service.evaluate_batch(tasks)
    except BaseException:
        if owned:
            service.close(cancel=True)  # drop queued cells; leak no workers
        raise
    finally:
        if owned:
            service.close()
