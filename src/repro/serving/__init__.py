"""Online edge-serving: trace-driven simulation with adaptive runtime scaling.

HADAS's output is a *dynamic* model — backbone + early exits + DVFS — whose
value shows at deployment, under real traffic.  This package serves
timestamped request streams through searched designs:

* :mod:`~repro.serving.workload` — load generators (Poisson, bursty MMPP,
  diurnal, replayed flash-crowd traces) with per-request difficulty;
* :mod:`~repro.serving.batcher` — FIFO queue + micro-batcher (size cap /
  head-of-line timeout);
* :mod:`~repro.serving.stream` — difficulty-conditioned logits so the real
  entropy controllers make the exit decisions;
* :mod:`~repro.serving.governor` — the runtime-config ladder (exit-rate ×
  DVFS tier) and the adaptive governor vs the static baseline;
* :mod:`~repro.serving.scenarios` — thermal-cap and battery-budget
  environments;
* :mod:`~repro.serving.simulator` — the discrete-event loop with batched
  hardware pricing and SLO telemetry;
* :mod:`~repro.serving.harness` — spec → report cells, fanned out through
  the engine's :class:`~repro.engine.service.EvaluationService`.

Entry points: ``repro serve ...`` (CLI) and ``benchmarks/bench_serving.py``.
"""

from repro.serving.batcher import BatchPolicy, MicroBatcher
from repro.serving.governor import (
    AdaptiveGovernor,
    GovernorObservation,
    RuntimeConfig,
    ServingPolicy,
    StaticPolicy,
    plan_config_ladder,
    static_config_for,
)
from repro.serving.harness import (
    SERVING_CELL_VERSION,
    ServingSpec,
    ServingStack,
    build_serving_stack,
    build_trace_and_stream,
    run_serving_cell,
    sweep,
)
from repro.serving.scenarios import SCENARIO_NAMES, SCENARIOS, Scenario, get_scenario
from repro.serving.simulator import ServingSimulator
from repro.serving.stream import LogitsSynthesizer, ServingStream
from repro.serving.telemetry import ServingReport, render_comparison, render_report
from repro.serving.workload import (
    LOAD_PATTERNS,
    Request,
    Trace,
    bursty_trace,
    diurnal_trace,
    flash_crowd_trace,
    make_trace,
    poisson_trace,
    replay_trace,
)

__all__ = [
    "AdaptiveGovernor",
    "BatchPolicy",
    "GovernorObservation",
    "LOAD_PATTERNS",
    "LogitsSynthesizer",
    "MicroBatcher",
    "Request",
    "RuntimeConfig",
    "SCENARIO_NAMES",
    "SCENARIOS",
    "SERVING_CELL_VERSION",
    "Scenario",
    "ServingPolicy",
    "ServingReport",
    "ServingSimulator",
    "ServingSpec",
    "ServingStack",
    "ServingStream",
    "StaticPolicy",
    "Trace",
    "build_serving_stack",
    "build_trace_and_stream",
    "bursty_trace",
    "diurnal_trace",
    "flash_crowd_trace",
    "get_scenario",
    "make_trace",
    "plan_config_ladder",
    "poisson_trace",
    "render_comparison",
    "render_report",
    "replay_trace",
    "run_serving_cell",
    "static_config_for",
    "sweep",
]
