"""Online edge-serving: trace-driven simulation with adaptive runtime scaling.

HADAS's output is a *dynamic* model — backbone + early exits + DVFS — whose
value shows at deployment, under real traffic.  This package serves
timestamped request streams through searched designs:

* :mod:`~repro.serving.workload` — load generators (Poisson, bursty MMPP,
  diurnal, replayed flash-crowd traces) with per-request difficulty;
* :mod:`~repro.serving.batcher` — FIFO queue + micro-batcher (size cap /
  head-of-line timeout), the array-backed batcher behind the indexed
  engine, and queue-depth admission control (drop/defer, critical bypass);
* :mod:`~repro.serving.stream` — difficulty-conditioned logits so the real
  entropy controllers make the exit decisions;
* :mod:`~repro.serving.governor` — the runtime-config ladder (exit-rate ×
  DVFS tier) and the adaptive governor vs the static baseline;
* :mod:`~repro.serving.scenarios` — thermal-cap and battery-budget
  environments;
* :mod:`~repro.serving.simulator` — the discrete-event loop with batched
  hardware pricing and SLO telemetry;
* :mod:`~repro.serving.harness` — spec → report cells, fanned out through
  the engine's :class:`~repro.engine.service.EvaluationService`;
* :mod:`~repro.serving.deploy` — the searched-design mount
  (``repro search --out`` → ``repro serve --from-result``);
* :mod:`~repro.serving.router` — fleet request routers (round-robin,
  least-backlog, difficulty-aware);
* :mod:`~repro.serving.fleet` — N heterogeneous devices behind one queue,
  with per-device governors and fleet-level telemetry.

Entry points: ``repro serve ...`` (CLI), ``benchmarks/bench_serving.py``
and ``benchmarks/bench_fleet.py``.
"""

from repro.serving.batcher import (
    ADMISSION_MODES,
    AdmissionPolicy,
    ArrayBatcher,
    BatchPolicy,
    MicroBatcher,
)
from repro.serving.governor import (
    AdaptiveGovernor,
    GovernorObservation,
    RuntimeConfig,
    ServingPolicy,
    StaticPolicy,
    plan_config_ladder,
    static_config_for,
)
from repro.serving.harness import (
    SERVING_CELL_VERSION,
    ServingSpec,
    ServingStack,
    build_serving_stack,
    build_trace_and_stream,
    run_serving_cell,
    sweep,
)
from repro.serving.deploy import (
    DeployedDesign,
    design_from_individual,
    load_design,
    save_design,
)
from repro.serving.fleet import (
    FLEET_CELL_VERSION,
    DeviceTelemetry,
    FleetReport,
    FleetSimulator,
    FleetSpec,
    build_fleet_stacks,
    build_fleet_trace_and_stream,
    fleet_sweep,
    run_fleet_cell,
)
from repro.serving.router import (
    ROUTER_NAMES,
    DifficultyAwareRouter,
    FleetRouter,
    LeastBacklogRouter,
    RoundRobinRouter,
    make_router,
)
from repro.serving.scenarios import SCENARIO_NAMES, SCENARIOS, Scenario, get_scenario
from repro.serving.simulator import (
    ENGINE_NAMES,
    CompiledStream,
    ServingSimulator,
    compile_stream,
)
from repro.serving.stream import LogitsSynthesizer, ServingStream
from repro.serving.telemetry import (
    ServingReport,
    class_latency_stats,
    render_comparison,
    render_fleet_report,
    render_report,
    render_router_comparison,
)
from repro.serving.workload import (
    BEST_EFFORT,
    LATENCY_CRITICAL,
    LOAD_PATTERNS,
    SLO_CLASSES,
    Request,
    Trace,
    bursty_trace,
    diurnal_trace,
    flash_crowd_trace,
    make_trace,
    poisson_trace,
    replay_trace,
)

__all__ = [
    "ADMISSION_MODES",
    "AdaptiveGovernor",
    "AdmissionPolicy",
    "ArrayBatcher",
    "BEST_EFFORT",
    "BatchPolicy",
    "CompiledStream",
    "ENGINE_NAMES",
    "LATENCY_CRITICAL",
    "SLO_CLASSES",
    "DeployedDesign",
    "DeviceTelemetry",
    "DifficultyAwareRouter",
    "FLEET_CELL_VERSION",
    "FleetReport",
    "FleetRouter",
    "FleetSimulator",
    "FleetSpec",
    "GovernorObservation",
    "LOAD_PATTERNS",
    "LeastBacklogRouter",
    "ROUTER_NAMES",
    "RoundRobinRouter",
    "LogitsSynthesizer",
    "MicroBatcher",
    "Request",
    "RuntimeConfig",
    "SCENARIO_NAMES",
    "SCENARIOS",
    "SERVING_CELL_VERSION",
    "Scenario",
    "ServingPolicy",
    "ServingReport",
    "ServingSimulator",
    "ServingSpec",
    "ServingStack",
    "ServingStream",
    "StaticPolicy",
    "Trace",
    "build_fleet_stacks",
    "build_fleet_trace_and_stream",
    "build_serving_stack",
    "build_trace_and_stream",
    "bursty_trace",
    "class_latency_stats",
    "compile_stream",
    "design_from_individual",
    "diurnal_trace",
    "flash_crowd_trace",
    "fleet_sweep",
    "get_scenario",
    "load_design",
    "make_router",
    "make_trace",
    "plan_config_ladder",
    "poisson_trace",
    "render_comparison",
    "render_fleet_report",
    "render_report",
    "render_router_comparison",
    "replay_trace",
    "run_fleet_cell",
    "run_serving_cell",
    "save_design",
    "static_config_for",
    "sweep",
]
