"""FIFO request queue and micro-batcher for the serving simulator.

The batcher implements the standard two-trigger policy used by serving
systems: dispatch a batch when it is *full* (``max_batch`` requests) or when
the oldest queued request has waited ``timeout_s`` — whichever comes first.
While the device is busy, arrivals keep accumulating and may top the next
batch up to ``max_batch`` ("opportunistic fill"), which is what makes
micro-batching pay off exactly when the system is under pressure.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from dataclasses import dataclass

from repro.serving.workload import Request, Trace
from repro.utils.validation import check_nonneg, check_positive


@dataclass(frozen=True)
class BatchPolicy:
    """Micro-batching knobs: size cap and head-of-line timeout."""

    max_batch: int = 8
    timeout_s: float = 0.004

    def __post_init__(self):
        check_positive("max_batch", self.max_batch)
        check_nonneg("timeout_s", self.timeout_s)


class MicroBatcher:
    """Deterministically forms micro-batches from a timestamped trace.

    Drive it with the device's next-free time: each :meth:`next_batch` call
    returns ``(start_s, batch)`` — the dispatch timestamp and the requests in
    it — or ``None`` when the trace is exhausted.
    """

    def __init__(self, trace: Trace, policy: BatchPolicy):
        self.policy = policy
        self._arrivals: tuple[Request, ...] = trace.requests
        self._times: list[float] = [r.arrival_s for r in trace.requests]
        self._next = 0  # index of the next not-yet-queued arrival
        self._queue: deque[Request] = deque()

    @property
    def pending(self) -> int:
        """Requests currently queued (admitted but not dispatched)."""
        return len(self._queue)

    def backlog_at(self, now_s: float) -> int:
        """Requests that have *arrived* but not been dispatched by ``now_s``."""
        arrived = bisect_right(self._times, now_s)
        return len(self._queue) + max(arrived - self._next, 0)

    def _admit_until(self, cutoff_s: float) -> None:
        while (
            len(self._queue) < self.policy.max_batch
            and self._next < len(self._arrivals)
            and self._arrivals[self._next].arrival_s <= cutoff_s
        ):
            self._queue.append(self._arrivals[self._next])
            self._next += 1

    def next_batch(self, device_free_s: float) -> tuple[float, list[Request]] | None:
        """Form the next batch given when the device frees up.

        Dispatch time is ``max(device_free_s, trigger)`` where the trigger is
        either the arrival of the batch-filling request or the head-of-line
        timeout expiry.  Requests arriving while the batch waits for the
        device join it up to ``max_batch``.
        """
        if not self._queue:
            if self._next >= len(self._arrivals):
                return None
            self._queue.append(self._arrivals[self._next])
            self._next += 1
        head = self._queue[0]
        expiry = head.arrival_s + self.policy.timeout_s
        self._admit_until(expiry)
        if len(self._queue) >= self.policy.max_batch:
            trigger = self._queue[self.policy.max_batch - 1].arrival_s
        else:
            trigger = expiry
        start = max(device_free_s, trigger)
        self._admit_until(start)  # opportunistic fill while waiting for the device
        size = min(self.policy.max_batch, len(self._queue))
        batch = [self._queue.popleft() for _ in range(size)]
        return start, batch
