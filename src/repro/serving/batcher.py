"""Request queues and micro-batchers for the serving simulator.

The batcher implements the standard two-trigger policy used by serving
systems: dispatch a batch when it is *full* (``max_batch`` requests) or when
the oldest queued request has waited ``timeout_s`` — whichever comes first.
While the device is busy, arrivals keep accumulating and may top the next
batch up to ``max_batch`` ("opportunistic fill"), which is what makes
micro-batching pay off exactly when the system is under pressure.

Two implementations share those semantics:

* :class:`MicroBatcher` — the original object/deque batcher, kept as the
  *reference* engine (every batch pops Request objects off a deque);
* :class:`ArrayBatcher` — the indexed batcher behind the vectorized event
  core.  On the default path (no admission control, one SLO class) batches
  are contiguous index ranges over the sorted arrival array, so
  ``next_batch`` is a couple of ``searchsorted`` calls and a pointer bump —
  bit-identical dispatch decisions to :class:`MicroBatcher` at a fraction
  of the cost.  With an :class:`AdmissionPolicy` or latency-critical
  requests present it switches to explicit per-class integer queues:
  critical-first dispatch, and arrivals beyond the queue cap are dropped
  (or deferred) instead of ballooning the backlog.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.serving.workload import LATENCY_CRITICAL, Request, Trace
from repro.utils.validation import check_nonneg, check_positive

#: Admission modes: ``drop`` rejects over-cap arrivals outright, ``defer``
#: parks them and re-admits (FIFO) as soon as dispatches free queue space.
ADMISSION_MODES = ("drop", "defer")


@dataclass(frozen=True)
class BatchPolicy:
    """Micro-batching knobs: size cap and head-of-line timeout."""

    max_batch: int = 8
    timeout_s: float = 0.004

    def __post_init__(self):
        check_positive("max_batch", self.max_batch)
        check_nonneg("timeout_s", self.timeout_s)


@dataclass(frozen=True)
class AdmissionPolicy:
    """Queue-depth admission control: backpressure for the serving queue.

    ``max_queue`` caps the number of admitted-but-undispatched requests.
    Arrivals beyond it are *dropped* (never served, tracked first-class in
    telemetry) or *deferred* (parked in a side queue and re-admitted FIFO as
    dispatches free space — they serve late rather than never).  With
    ``critical_bypass`` latency-critical requests are always admitted; the
    cap sheds best-effort traffic first.
    """

    max_queue: int
    mode: str = "drop"
    critical_bypass: bool = True

    def __post_init__(self):
        check_positive("max_queue", self.max_queue)
        if self.mode not in ADMISSION_MODES:
            raise ValueError(
                f"unknown admission mode {self.mode!r}; valid: {ADMISSION_MODES}"
            )


def admit_prefix(
    position: np.ndarray, critical: np.ndarray, space: int, critical_bypass: bool
) -> np.ndarray:
    """Closed form of the per-arrival queue-depth cap over a no-dispatch stretch.

    Between two dispatches the queue only grows, so evaluating the cap at
    each arrival instant collapses to a prefix rule: an arrival is admitted
    iff its position among the stretch's arrivals is below the ``space``
    the queue had when the stretch began, or it is latency-critical under
    ``critical_bypass``.  (Criticals admitted past the cap still occupy
    queue space, but any later best-effort arrival then sits at a position
    ≥ ``space`` anyway, so the two formulations decide identically.)

    Shared by :class:`ArrayBatcher` (one queue, arrivals gated in cutoff
    order) and the fleet's block admission (per-lane positions within one
    routed arrival block).
    """
    admit = position < space
    if critical_bypass:
        admit = admit | critical
    return admit


class MicroBatcher:
    """Deterministically forms micro-batches from a timestamped trace.

    Drive it with the device's next-free time: each :meth:`next_batch` call
    returns ``(start_s, batch)`` — the dispatch timestamp and the requests in
    it — or ``None`` when the trace is exhausted.  This is the retained
    reference implementation; :class:`ArrayBatcher` must stay bit-identical
    to it on the default (no admission, single class) path.
    """

    def __init__(self, trace: Trace, policy: BatchPolicy):
        self.policy = policy
        self._arrivals: tuple[Request, ...] = trace.requests
        self._times: list[float] = trace.arrival_s.tolist()
        self._next = 0  # index of the next not-yet-queued arrival
        self._queue: deque[Request] = deque()

    @property
    def pending(self) -> int:
        """Requests currently queued (admitted but not dispatched)."""
        return len(self._queue)

    def backlog_at(self, now_s: float) -> int:
        """Requests that have *arrived* but not been dispatched by ``now_s``."""
        arrived = bisect_right(self._times, now_s)
        return len(self._queue) + max(arrived - self._next, 0)

    def critical_backlog_at(self, now_s: float) -> int:
        """The reference batcher is class-agnostic: no critical accounting."""
        return 0

    def _admit_until(self, cutoff_s: float) -> None:
        while (
            len(self._queue) < self.policy.max_batch
            and self._next < len(self._arrivals)
            and self._arrivals[self._next].arrival_s <= cutoff_s
        ):
            self._queue.append(self._arrivals[self._next])
            self._next += 1

    def next_batch(self, device_free_s: float) -> tuple[float, list[Request]] | None:
        """Form the next batch given when the device frees up.

        Dispatch time is ``max(device_free_s, trigger)`` where the trigger is
        either the arrival of the batch-filling request or the head-of-line
        timeout expiry.  Requests arriving while the batch waits for the
        device join it up to ``max_batch``.
        """
        if not self._queue:
            if self._next >= len(self._arrivals):
                return None
            self._queue.append(self._arrivals[self._next])
            self._next += 1
        head = self._queue[0]
        expiry = head.arrival_s + self.policy.timeout_s
        self._admit_until(expiry)
        if len(self._queue) >= self.policy.max_batch:
            trigger = self._queue[self.policy.max_batch - 1].arrival_s
        else:
            trigger = expiry
        start = max(device_free_s, trigger)
        self._admit_until(start)  # opportunistic fill while waiting for the device
        size = min(self.policy.max_batch, len(self._queue))
        batch = [self._queue.popleft() for _ in range(size)]
        return start, batch


class ArrayBatcher:
    """Index-arithmetic micro-batcher over a trace's arrival array.

    Two modes, chosen at construction:

    * **span mode** (``contiguous`` is True; no admission policy and no
      latency-critical requests): the queue is implicit — a head pointer
      into the sorted arrival array.  The deque batcher provably drains its
      queue completely on every dispatch (admission is capped at
      ``max_batch`` and every pop takes ``min(max_batch, len)``), so batches
      are always contiguous index ranges; :meth:`next_batch` reduces to two
      ``searchsorted`` calls.  Bit-identical to :class:`MicroBatcher`.
    * **queue mode** (admission control and/or SLO classes): explicit
      per-class integer deques.  Latency-critical requests dispatch first
      within each batch window; arrivals beyond the admission cap are
      dropped or deferred at their (lazily evaluated) arrival instants.

    ``next_batch`` returns ``(start_s, indices)`` with ``indices`` an int64
    array; span mode callers can use :meth:`next_span` instead to get the
    ``(start_s, lo, hi)`` range without materialising the array.
    """

    def __init__(
        self,
        trace: Trace,
        policy: BatchPolicy,
        admission: AdmissionPolicy | None = None,
    ):
        self.policy = policy
        self.admission = admission
        self._times = np.ascontiguousarray(trace.arrival_s, dtype=float)
        # Python-float mirror of the arrival array: the per-batch lookups
        # (``next_span``/``backlog_at``) are a few elements each, where
        # ``bisect_right`` over a list beats an ndarray ``searchsorted``
        # call by its fixed per-call overhead.  Same doubles, same
        # ``side="right"`` semantics.
        self._times_list: list[float] = self._times.tolist()
        self._classes = trace.slo_class
        self._n = len(self._times)
        self._has_critical = bool(np.any(self._classes == LATENCY_CRITICAL))
        self.contiguous = admission is None and not self._has_critical
        # Span mode: head pointer over the arrival array.
        self._head = 0
        # Queue mode: gate cursor + per-class admitted queues + reject books.
        self._cursor = 0  # next arrival not yet gated through admission
        self._crit: deque[int] = deque()
        self._be: deque[int] = deque()
        self._deferred: deque[int] = deque()
        self._dropped: list[int] = []
        self._ever_deferred = 0
        self._dispatched = 0
        if self._has_critical:
            flags = (np.asarray(self._classes) == LATENCY_CRITICAL).astype(np.int64)
            self._crit_cum = np.concatenate([[0], np.cumsum(flags)])
        else:
            self._crit_cum = None

    # ------------------------------------------------------------ telemetry
    @property
    def pending(self) -> int:
        """Requests currently admitted but not dispatched."""
        if self.contiguous:
            return 0
        return len(self._crit) + len(self._be)

    @property
    def num_dispatched(self) -> int:
        return self._dispatched

    @property
    def num_dropped(self) -> int:
        return len(self._dropped)

    @property
    def num_deferred(self) -> int:
        """Requests that were parked in the deferred queue at least once."""
        return self._ever_deferred

    def dropped_indices(self) -> np.ndarray:
        return np.asarray(self._dropped, dtype=np.int64)

    def backlog_at(self, now_s: float) -> int:
        """Arrived-but-undispatched (and not dropped) requests at ``now_s``."""
        arrived = bisect_right(self._times_list, now_s)
        if self.contiguous:
            return max(arrived - self._head, 0)
        ungated = max(arrived - self._cursor, 0)
        return len(self._crit) + len(self._be) + len(self._deferred) + ungated

    def critical_backlog_at(self, now_s: float) -> int:
        """Latency-critical share of :meth:`backlog_at` (0 when untagged)."""
        if not self._has_critical:
            return 0
        arrived = bisect_right(self._times_list, now_s)
        hi = max(arrived, self._cursor)
        ungated = int(self._crit_cum[hi] - self._crit_cum[self._cursor])
        return len(self._crit) + ungated

    # ------------------------------------------------------------ span mode
    def next_span(self, device_free_s: float) -> tuple[float, int, int] | None:
        """Form the next batch as a contiguous ``[lo, hi)`` index range.

        Only valid in span mode.  The two-trigger policy collapses to index
        arithmetic: the head-of-line expiry and full-batch fill are both
        ``searchsorted`` lookups over the sorted arrival array.
        """
        head = self._head
        if head >= self._n:
            return None
        times = self._times_list
        max_batch = self.policy.max_batch
        cap = head + max_batch
        if cap > self._n:
            cap = self._n
        expiry = times[head] + self.policy.timeout_s
        # Both lookups only matter within [head, head + max_batch): bounding
        # the bisection there makes each one a couple of comparisons.
        admitted = bisect_right(times, expiry, head, cap) - head
        if admitted >= max_batch:
            trigger = times[head + max_batch - 1]
        else:
            trigger = expiry
        start = device_free_s if device_free_s > trigger else trigger
        hi = bisect_right(times, start, head, cap)
        self._head = hi
        self._dispatched += hi - head
        return float(start), head, hi

    # ----------------------------------------------------------- queue mode
    def _gate(self, cutoff_s: float) -> None:
        """Admit arrivals with ``arrival <= cutoff`` through the policy.

        Backlog only grows between dispatches, so evaluating the cap lazily
        at gate time is equivalent to evaluating it at each arrival instant:
        within one gate the queue never shrinks, which makes admission a
        prefix rule — best-effort newcomers are admitted while
        ``depth + position < max_queue`` and rejected from then on
        (criticals bypass the cap when ``critical_bypass`` is set, but still
        occupy queue space).  Deferred requests re-enter first, FIFO.
        """
        admission = self.admission
        if admission is not None and self._deferred:
            space = admission.max_queue - len(self._crit) - len(self._be)
            while space > 0 and self._deferred:
                index = self._deferred.popleft()
                if self._classes[index] == LATENCY_CRITICAL:
                    self._crit.append(index)
                else:
                    self._be.append(index)
                space -= 1
        k = int(np.searchsorted(self._times, cutoff_s, side="right"))
        if k <= self._cursor:
            return
        new = np.arange(self._cursor, k)
        self._cursor = k
        critical = np.asarray(self._classes[new]) == LATENCY_CRITICAL
        if admission is None:
            admit = np.ones(len(new), dtype=bool)
        else:
            space = admission.max_queue - len(self._crit) - len(self._be)
            admit = admit_prefix(
                np.arange(len(new)), critical, space, admission.critical_bypass
            )
        for index, crit, ok in zip(new.tolist(), critical.tolist(), admit.tolist()):
            if ok:
                (self._crit if crit else self._be).append(index)
            elif admission.mode == "defer":
                self._deferred.append(index)
                self._ever_deferred += 1
            else:
                self._dropped.append(index)

    def _head_arrival(self) -> float:
        times = self._times
        if self._crit and self._be:
            a, b = times[self._crit[0]], times[self._be[0]]
            return float(a if a <= b else b)
        if self._crit:
            return float(times[self._crit[0]])
        return float(times[self._be[0]])

    def _fill_arrival(self) -> float:
        """Arrival instant of the batch-completing request.

        The ``max_batch``-th smallest arrival among the first ``max_batch``
        entries of each class queue (exact when queues are arrival-sorted,
        which holds in every mode except after defer re-admission).
        """
        mb = self.policy.max_batch
        times = self._times
        arrivals = [times[i] for _, i in zip(range(mb), self._crit)]
        arrivals += [times[i] for _, i in zip(range(mb), self._be)]
        arrivals.sort()
        return float(arrivals[mb - 1])

    def _select(self, start: float) -> list[int]:
        """Pop up to ``max_batch`` dispatchable members, critical first.

        Within each class, requests leave in admission order; a member must
        have arrived by ``start``.  Arrival-sorted queues make this a prefix
        scan per class.
        """
        times = self._times
        mb = self.policy.max_batch
        batch: list[int] = []
        for queue in (self._crit, self._be):
            while queue and len(batch) < mb and times[queue[0]] <= start:
                batch.append(queue.popleft())
        return batch

    def _next_batch_queued(self, device_free_s: float) -> tuple[float, np.ndarray] | None:
        while not (self._crit or self._be):
            if self._deferred:
                index = self._deferred.popleft()
                if self._classes[index] == LATENCY_CRITICAL:
                    self._crit.append(index)
                else:
                    self._be.append(index)
            elif self._cursor < self._n:
                # Seed the queue by gating at the next arrival instant
                # (ties gate together, subject to the admission cap).
                self._gate(float(self._times[self._cursor]))
            else:
                return None
        expiry = self._head_arrival() + self.policy.timeout_s
        self._gate(expiry)
        if len(self._crit) + len(self._be) >= self.policy.max_batch:
            trigger = self._fill_arrival()
            if trigger < self._head_arrival():
                trigger = self._head_arrival()
        else:
            trigger = expiry
        start = max(device_free_s, trigger)
        self._gate(start)  # opportunistic fill + admission of interval arrivals
        batch = self._select(start)
        self._dispatched += len(batch)
        return start, np.asarray(batch, dtype=np.int64)

    def next_batch(self, device_free_s: float) -> tuple[float, np.ndarray] | None:
        """Form the next batch; ``(start_s, request indices)`` or ``None``."""
        if self.contiguous:
            formed = self.next_span(device_free_s)
            if formed is None:
                return None
            start, lo, hi = formed
            return start, np.arange(lo, hi, dtype=np.int64)
        return self._next_batch_queued(device_free_s)
