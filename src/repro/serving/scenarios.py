"""Deployment scenarios: thermal caps and battery budgets.

A :class:`Scenario` describes the *environment* a serving run executes in.
``nominal`` is unconstrained; ``thermal-cap`` adds a first-order thermal
model (temperature relaxes toward ambient + P·R with a time constant) and a
junction cap the governor must respect — sustained high-power configs
overshoot it and get throttled; ``battery-budget`` gives the run a finite
energy allowance relative to how the static baseline would spend, forcing
the governor to ration.

Thermal resistance is expressed *relative to the config ladder* (the cap is
reachable by the hottest config but not the coolest), so scenarios transfer
across platforms with very different absolute wattage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_positive

#: Scenario names accepted by :func:`get_scenario` (CLI/bench vocabulary).
SCENARIO_NAMES = ("nominal", "thermal-cap", "battery-budget")


@dataclass(frozen=True)
class ThermalParams:
    """First-order thermal model: dT/dt = ((ambient + P·R) − T) / τ.

    ``overshoot_fraction`` positions the hottest ladder config's steady
    state *above* the cap: R = (cap − ambient)·(1 + overshoot) / P_max.
    """

    ambient_c: float = 35.0
    cap_c: float = 70.0
    time_constant_s: float = 5.0
    soft_margin_c: float = 8.0
    overshoot_fraction: float = 0.35

    def __post_init__(self):
        check_positive("time_constant_s", self.time_constant_s)
        if self.cap_c <= self.ambient_c:
            raise ValueError("thermal cap must exceed ambient temperature")

    def resistance_c_per_w(self, max_power_w: float) -> float:
        """Thermal resistance making the hottest config overshoot the cap."""
        check_positive("max_power_w", max_power_w)
        return (self.cap_c - self.ambient_c) * (1.0 + self.overshoot_fraction) / max_power_w

    def sustainable_power_w(self, max_power_w: float) -> float:
        """Power whose steady-state temperature sits exactly at the cap."""
        return (self.cap_c - self.ambient_c) / self.resistance_c_per_w(max_power_w)


class ThermalState:
    """Integrates the first-order thermal model over a serving run."""

    def __init__(self, params: ThermalParams, max_power_w: float):
        self.params = params
        self.resistance = params.resistance_c_per_w(max_power_w)
        self.temperature_c = params.ambient_c
        self.peak_c = params.ambient_c

    def advance(self, power_w: float, dt_s: float) -> float:
        """Step the temperature under ``power_w`` for ``dt_s`` seconds."""
        if dt_s <= 0:
            return self.temperature_c
        target = self.params.ambient_c + power_w * self.resistance
        decay = 1.0 - math.exp(-dt_s / self.params.time_constant_s)
        self.temperature_c += (target - self.temperature_c) * decay
        self.peak_c = max(self.peak_c, self.temperature_c)
        return self.temperature_c

    @property
    def throttled(self) -> bool:
        """Hard-throttle condition: at or above the cap."""
        return self.temperature_c >= self.params.cap_c

    def power_cap_w(self, max_power_w: float) -> float | None:
        """Soft constraint handed to the governor inside the margin zone."""
        if self.temperature_c >= self.params.cap_c - self.params.soft_margin_c:
            return self.params.sustainable_power_w(max_power_w)
        return None


@dataclass(frozen=True)
class Scenario:
    """One deployment environment for a serving run."""

    name: str
    thermal: ThermalParams | None = None
    battery_scale: float | None = None  # budget / static-baseline total energy

    def __post_init__(self):
        if self.battery_scale is not None:
            check_positive("battery_scale", self.battery_scale)


SCENARIOS: dict[str, Scenario] = {
    "nominal": Scenario(name="nominal"),
    "thermal-cap": Scenario(name="thermal-cap", thermal=ThermalParams()),
    "battery-budget": Scenario(name="battery-budget", battery_scale=0.85),
}


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name with a helpful failure."""
    if name not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {name!r}; expected one of {tuple(SCENARIOS)}"
        )
    return SCENARIOS[name]
