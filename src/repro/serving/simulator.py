"""The discrete-event edge-serving simulator.

Feeds a timestamped request :class:`~repro.serving.workload.Trace` through a
:class:`~repro.serving.batcher.MicroBatcher` onto a single simulated edge
device.  Per decision window the serving policy picks a
:class:`~repro.serving.governor.RuntimeConfig` (entropy thresholds + DVFS);
per batch the *real* entropy controller decides each request's exit, the
hardware model prices the batch (busy time serialises, dispatch overhead is
shared — :func:`repro.hardware.energy.batched_execution`), and the
:class:`~repro.runtime.governor.DvfsGovernor` charges frequency-switch
energy across the intra-batch exit sequence.  Thermal and battery state
evolve alongside and feed back into the governor's observation.

Everything is deterministic: the trace, the logits stream and every policy
decision are pure functions of the seed and configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.dynamic import DynamicEvaluator
from repro.exits.placement import ExitPlacement
from repro.hardware.energy import PathProfile, batched_execution
from repro.obs import trace as tracing
from repro.serving.batcher import BatchPolicy, MicroBatcher
from repro.serving.governor import (
    GovernorObservation,
    RuntimeConfig,
    ServingPolicy,
    _profiles_for,
)
from repro.serving.scenarios import Scenario, ThermalState
from repro.serving.stream import ServingStream
from repro.serving.telemetry import ServingReport, percentile_ms
from repro.serving.workload import Trace
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class BatchOutcome:
    """Result of pricing one micro-batch through the deployed DyNN.

    Shared by the single-device and fleet simulators so the execution
    semantics — controller decisions, batched hardware pricing, switch
    energy, per-request correctness — live in exactly one place.
    """

    decisions: object  # per-request exit index (num_exits = full network)
    latency_s: float
    energy_j: float  # includes switching energy
    switching_j: float
    correct: np.ndarray  # per-request correctness flags


def execute_batch(controller, profiles, dvfs_governor, stream, indices) -> BatchOutcome:
    """Run one micro-batch: real exit decisions + physical batch pricing."""
    exit_logits, final_logits, labels = stream.batch(indices)
    decisions = controller.decide(exit_logits)
    latency, energy = batched_execution([profiles[d] for d in decisions])
    switch = dvfs_governor.switching_energy(decisions)
    num_exits = stream.num_exits
    correct = np.empty(len(indices), dtype=bool)
    for j, d in enumerate(decisions):
        if d < num_exits:
            correct[j] = exit_logits[d, j].argmax() == labels[j]
        else:
            correct[j] = final_logits[j].argmax() == labels[j]
    return BatchOutcome(
        decisions=decisions,
        latency_s=latency,
        energy_j=energy + switch,
        switching_j=switch,
        correct=correct,
    )


class ServingSimulator:
    """Replays one trace through one policy on one simulated device.

    Parameters
    ----------
    evaluator, placement:
        The deployed DyNN (supplies per-path hardware profiles).
    policy:
        Static or adaptive serving policy.
    ladder:
        The full config menu — used for scenario scaling (hottest config
        anchors the thermal model) and as the throttle fallback, even when
        the policy itself is static.
    scenario:
        Environment (thermal cap / battery budget).
    slo_s:
        Per-request completion deadline.
    window_s:
        Governor decision period.  Backlog spikes (more than
        ``emergency_backlog_batches`` full batches waiting) trigger an
        immediate re-decision instead of waiting out the window — burst
        onsets are reacted to at batch granularity.
    battery_budget_j:
        Absolute energy allowance (None = unconstrained); the harness
        derives it from the scenario's ``battery_scale``.
    """

    def __init__(
        self,
        evaluator: DynamicEvaluator,
        placement: ExitPlacement,
        policy: ServingPolicy,
        ladder: list[RuntimeConfig],
        scenario: Scenario,
        slo_s: float,
        batch_policy: BatchPolicy | None = None,
        window_s: float = 0.5,
        switch_cost_j: float = 0.0,
        battery_budget_j: float | None = None,
        emergency_backlog_batches: float = 2.0,
    ):
        check_positive("slo_s", slo_s)
        check_positive("window_s", window_s)
        self.evaluator = evaluator
        self.placement = placement
        self.policy = policy
        self.ladder = list(ladder)
        self.scenario = scenario
        self.slo_s = slo_s
        self.batch_policy = batch_policy or BatchPolicy()
        self.window_s = window_s
        self.switch_cost_j = switch_cost_j
        self.battery_budget_j = battery_budget_j
        self.emergency_backlog = emergency_backlog_batches * self.batch_policy.max_batch
        self._max_power_w = max(c.expected_power_w for c in self.ladder)
        self._coolest = min(self.ladder, key=lambda c: c.expected_power_w)
        self._profiles: dict[str, list[PathProfile]] = {}
        self._controllers: dict[str, object] = {}

    # ------------------------------------------------------------- internals
    def _profiles_of(self, config: RuntimeConfig) -> list[PathProfile]:
        if config.name not in self._profiles:
            self._profiles[config.name] = _profiles_for(
                self.evaluator, self.placement, config.dvfs_governor()
            )
        return self._profiles[config.name]

    def _controller_of(self, config: RuntimeConfig):
        if config.name not in self._controllers:
            self._controllers[config.name] = config.controller()
        return self._controllers[config.name]

    def _observe(
        self,
        now_s: float,
        trace: Trace,
        arrivals: np.ndarray,
        batcher: MicroBatcher,
        thermal: ThermalState | None,
        battery_spent_j: float,
    ) -> GovernorObservation:
        window_start = max(0.0, now_s - self.window_s)
        lo = int(np.searchsorted(arrivals, window_start, side="left"))
        hi = int(np.searchsorted(arrivals, now_s, side="right"))
        span = max(now_s - window_start, 1e-9)
        rate = (hi - lo) / span if now_s > 0 else trace.mean_rate_hz
        power_cap = thermal.power_cap_w(self._max_power_w) if thermal else None
        energy_cap = None
        if self.battery_budget_j is not None:
            remaining_j = max(self.battery_budget_j - battery_spent_j, 0.0)
            remaining_requests = max(
                trace.mean_rate_hz * max(trace.duration_s - now_s, 0.0), 1.0
            )
            energy_cap = remaining_j / remaining_requests
        return GovernorObservation(
            now_s=now_s,
            window_s=self.window_s,
            arrival_rate_hz=rate,
            backlog=batcher.backlog_at(now_s),
            slo_s=self.slo_s,
            temperature_c=thermal.temperature_c if thermal else 0.0,
            power_cap_w=power_cap,
            energy_cap_j=energy_cap,
        )

    # -------------------------------------------------------------- main loop
    def run(
        self,
        trace: Trace,
        stream: ServingStream,
        platform: str = "?",
        model: str = "?",
        seed: int = 0,
    ) -> ServingReport:
        """Serve the whole trace and aggregate telemetry."""
        with tracing.span(
            "serving.run",
            pattern=trace.pattern,
            scenario=self.scenario.name,
            policy=self.policy.name,
            requests=trace.num_requests,
        ):
            return self._run(trace, stream, platform, model, seed)

    def _run(
        self,
        trace: Trace,
        stream: ServingStream,
        platform: str,
        model: str,
        seed: int,
    ) -> ServingReport:
        n = trace.num_requests
        if stream.final_logits.shape[0] != n:
            raise ValueError(
                f"stream carries {stream.final_logits.shape[0]} requests, trace has {n}"
            )
        arrivals = trace.arrival_times()
        batcher = MicroBatcher(trace, self.batch_policy)
        thermal = (
            ThermalState(self.scenario.thermal, self._max_power_w)
            if self.scenario.thermal is not None
            else None
        )

        completion = np.zeros(n)
        correct = np.zeros(n, dtype=bool)
        exit_counts = np.zeros(self.placement.num_exits + 1, dtype=np.int64)
        total_energy = 0.0
        switching_energy = 0.0
        battery_spent = 0.0
        battery_exhausted = False
        num_batches = 0
        throttled = 0
        config_usage: dict[str, int] = {}
        governor_decisions = 0

        clock = 0.0  # last simulated instant (for thermal integration)
        t_free = 0.0
        next_decision = 0.0
        config = self.policy.select(
            GovernorObservation(
                now_s=0.0,
                window_s=self.window_s,
                arrival_rate_hz=trace.mean_rate_hz,
                backlog=0,
                slo_s=self.slo_s,
            )
        )
        governor_decisions += 1
        tracing.count("serving.governor_decisions")
        next_decision = self.window_s

        while (formed := batcher.next_batch(t_free)) is not None:
            start, batch = formed
            if thermal is not None and start > clock:
                thermal.advance(0.0, start - clock)  # idle: device cools
            spike = batcher.backlog_at(start) > self.emergency_backlog
            if start >= next_decision or spike:
                obs = self._observe(start, trace, arrivals, batcher, thermal, battery_spent)
                config = self.policy.select(obs)
                governor_decisions += 1
                tracing.count("serving.governor_decisions")
                next_decision = start + self.window_s

            active = config
            if thermal is not None and thermal.throttled:
                active = self._coolest  # hardware throttle overrides the policy
                throttled += 1
                tracing.count("serving.throttled_batches")
            config_usage[active.name] = config_usage.get(active.name, 0) + 1
            tracing.count("serving.batches")
            tracing.observe("serving.batch_size", len(batch))

            indices = np.asarray([r.index for r in batch], dtype=np.int64)
            outcome = execute_batch(
                self._controller_of(active),
                self._profiles_of(active),
                active.dvfs_governor(self.switch_cost_j),
                stream,
                indices,
            )
            switching_energy += outcome.switching_j

            end = start + outcome.latency_s
            completion[indices] = end
            correct[indices] = outcome.correct
            for d in outcome.decisions:
                exit_counts[d] += 1

            total_energy += outcome.energy_j
            battery_spent += outcome.energy_j
            if self.battery_budget_j is not None and battery_spent > self.battery_budget_j:
                battery_exhausted = True
            if thermal is not None and outcome.latency_s > 0:
                thermal.advance(outcome.energy_j / outcome.latency_s, outcome.latency_s)
            clock = end
            t_free = end
            num_batches += 1

        latencies = completion - arrivals
        makespan = max(float(completion.max()) if n else 0.0, trace.duration_s)
        return ServingReport(
            pattern=trace.pattern,
            scenario=self.scenario.name,
            policy=self.policy.name,
            platform=platform,
            model=model,
            seed=seed,
            slo_ms=self.slo_s * 1e3,
            num_requests=n,
            duration_s=trace.duration_s,
            offered_rate_rps=trace.mean_rate_hz,
            throughput_rps=n / makespan if makespan > 0 else 0.0,
            num_batches=num_batches,
            mean_batch_size=n / num_batches if num_batches else 0.0,
            latency_ms_mean=float(latencies.mean() * 1e3) if n else 0.0,
            latency_ms_p50=percentile_ms(latencies, 50),
            latency_ms_p95=percentile_ms(latencies, 95),
            latency_ms_p99=percentile_ms(latencies, 99),
            deadline_miss_rate=float((latencies > self.slo_s).mean()) if n else 0.0,
            energy_per_request_j=total_energy / n if n else 0.0,
            total_energy_j=total_energy,
            switching_energy_j=switching_energy,
            accuracy=float(correct.mean()) if n else 0.0,
            exit_usage=[float(c) / n if n else 0.0 for c in exit_counts],
            config_usage=config_usage,
            governor_decisions=governor_decisions,
            throttled_batches=throttled,
            peak_temperature_c=thermal.peak_c if thermal is not None else 0.0,
            battery_budget_j=self.battery_budget_j or 0.0,
            battery_spent_j=battery_spent if self.battery_budget_j is not None else 0.0,
            battery_exhausted=battery_exhausted,
        )
