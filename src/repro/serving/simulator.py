"""The discrete-event edge-serving simulator.

Feeds a timestamped request :class:`~repro.serving.workload.Trace` through a
micro-batcher onto a single simulated edge device.  Per decision window the
serving policy picks a :class:`~repro.serving.governor.RuntimeConfig`
(entropy thresholds + DVFS); per batch the *real* entropy controller decides
each request's exit, the hardware model prices the batch (busy time
serialises, dispatch overhead is shared —
:func:`repro.hardware.energy.batched_execution`), and the
:class:`~repro.runtime.governor.DvfsGovernor` charges frequency-switch
energy across the intra-batch exit sequence.  Thermal and battery state
evolve alongside and feed back into the governor's observation.

Two engines produce the same physics:

* ``engine="reference"`` — the original per-request loop over
  :class:`~repro.serving.workload.Request` objects and a
  :class:`~repro.serving.batcher.MicroBatcher`; retained as the executable
  specification.
* ``engine="indexed"`` (default) — the vectorized event core: an
  :class:`~repro.serving.batcher.ArrayBatcher` forms batches as index
  arithmetic over the arrival array, and a per-config compiled executor
  (:class:`_CompiledConfig`) precomputes full-stream exit decisions,
  correctness and per-path cost tables once, so the per-batch work is a few
  table gathers.  Reports are bit-identical to the reference engine — the
  repo's standing invariant, in the family of serial-vs-parallel and
  table-vs-reference before it.

The indexed engine additionally supports admission control
(:class:`~repro.serving.batcher.AdmissionPolicy`) and latency-critical /
best-effort SLO classes; dropped requests never complete (NaN completion)
and latency statistics are computed over *served* requests only.

Everything is deterministic: the trace, the logits stream and every policy
decision are pure functions of the seed and configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.eval.dynamic import DynamicEvaluator
from repro.exits.placement import ExitPlacement
from repro.hardware.energy import PathProfile, batched_execution
from repro.nn.functional import entropy_np
from repro.obs import trace as tracing
from repro.serving.batcher import AdmissionPolicy, ArrayBatcher, BatchPolicy, MicroBatcher
from repro.serving.governor import (
    GovernorObservation,
    RuntimeConfig,
    ServingPolicy,
    _profiles_for,
)
from repro.serving.scenarios import Scenario, ThermalState
from repro.serving.stream import ServingStream
from repro.serving.telemetry import ServingReport, class_latency_stats, percentile_ms
from repro.serving.workload import SLO_CLASSES, Trace
from repro.utils.validation import check_positive

ENGINE_NAMES = ("indexed", "reference")


@dataclass(frozen=True)
class BatchOutcome:
    """Result of pricing one micro-batch through the deployed DyNN.

    Shared by the single-device and fleet simulators so the execution
    semantics — controller decisions, batched hardware pricing, switch
    energy, per-request correctness — live in exactly one place.
    """

    decisions: object  # per-request exit index (num_exits = full network)
    latency_s: float
    energy_j: float  # includes switching energy
    switching_j: float
    correct: np.ndarray  # per-request correctness flags


def execute_batch(controller, profiles, dvfs_governor, stream, indices) -> BatchOutcome:
    """Run one micro-batch: real exit decisions + physical batch pricing."""
    exit_logits, final_logits, labels = stream.batch(indices)
    decisions = controller.decide(exit_logits)
    latency, energy = batched_execution([profiles[d] for d in decisions])
    switch = dvfs_governor.switching_energy(decisions)
    num_exits = stream.num_exits
    correct = np.empty(len(indices), dtype=bool)
    for j, d in enumerate(decisions):
        if d < num_exits:
            correct[j] = exit_logits[d, j].argmax() == labels[j]
        else:
            correct[j] = final_logits[j].argmax() == labels[j]
    return BatchOutcome(
        decisions=decisions,
        latency_s=latency,
        energy_j=energy + switch,
        switching_j=switch,
        correct=correct,
    )


@dataclass(frozen=True)
class CompiledStream:
    """Per-request quantities of a :class:`ServingStream`, precomputed once.

    The entropy controller and the correctness check are row-independent
    (softmax/entropy/argmax act per request), so evaluating them over the
    full stream up front yields bit-identical values to evaluating them
    batch by batch — which is what lets the indexed engine replace the
    per-batch controller with table lookups.
    """

    num_exits: int
    entropy: np.ndarray  # (num_exits, n) normalized entropy per exit head
    head_correct: np.ndarray  # (num_exits + 1, n) argmax == label per head


#: Rows per chunk when compiling a stream.  Entropy and argmax act per
#: row, so chunking changes nothing numerically — it only keeps the
#: softmax temporaries cache-sized instead of materializing multiple
#: (n, classes) float64 scratch arrays at million-request scale.
_COMPILE_CHUNK = 65536


def compile_stream(stream: ServingStream) -> CompiledStream:
    """Precompute per-head entropies and correctness for the whole stream."""
    num_exits = stream.num_exits
    labels = stream.labels
    n = len(labels)
    entropy = np.empty((num_exits, n))
    head_correct = np.empty((num_exits + 1, n), dtype=bool)
    for i in range(num_exits):
        logits = stream.exit_logits[i]
        for lo in range(0, n, _COMPILE_CHUNK):
            hi = min(lo + _COMPILE_CHUNK, n)
            entropy[i, lo:hi] = entropy_np(logits[lo:hi], axis=-1)
            head_correct[i, lo:hi] = logits[lo:hi].argmax(axis=-1) == labels[lo:hi]
    final = stream.final_logits
    for lo in range(0, n, _COMPILE_CHUNK):
        hi = min(lo + _COMPILE_CHUNK, n)
        head_correct[num_exits, lo:hi] = final[lo:hi].argmax(axis=-1) == labels[lo:hi]
    return CompiledStream(num_exits=num_exits, entropy=entropy, head_correct=head_correct)


class _CompiledConfig:
    """One ladder rung compiled against a stream: decisions + cost tables.

    ``decisions`` replicates :meth:`EntropyThresholdController.decide` over
    the full stream (first exit whose entropy clears its threshold);
    :meth:`price` replicates :func:`batched_execution` +
    :meth:`DvfsGovernor.switching_energy` for a batch of those decisions.
    Sums run as Python float sums over lists (NOT ``np.sum``, whose pairwise
    reduction associates differently) and the shared-overhead path is the
    *first* maximum, exactly like ``max(..., key=...)`` — this is what keeps
    the compiled executor bit-identical to the reference one.
    """

    __slots__ = (
        "decisions",
        "correct",
        "_busy",
        "_over",
        "_passive",
        "_unit",
        "_sid",
        "_switch_cost_j",
        "_dec_req",
        "_busy_l",
        "_over_l",
        "_passive_l",
        "_unit_l",
        "_sid_l",
        "_lat_one",
        "_energy_one",
    )

    def __init__(
        self,
        config: RuntimeConfig,
        profiles: list[PathProfile],
        cstream: CompiledStream,
        switch_cost_j: float,
    ):
        n = cstream.head_correct.shape[1]
        decisions = np.full(n, cstream.num_exits, dtype=np.int64)
        undecided = np.ones(n, dtype=bool)
        for i, threshold in enumerate(config.thresholds):
            takes = undecided & (cstream.entropy[i] <= threshold)
            decisions[takes] = i
            undecided &= ~takes
        self.decisions = decisions
        self.correct = cstream.head_correct[decisions, np.arange(n)]
        self._busy = np.asarray([p.busy_s for p in profiles])
        self._over = np.asarray([p.overhead_s for p in profiles])
        self._passive = np.asarray([p.passive_power_w for p in profiles])
        self._unit = np.asarray(
            [p.dynamic_energy_j + p.passive_power_w * p.busy_s for p in profiles]
        )
        # DVFS settings collapsed to equality-class ids so intra-batch
        # transitions are an integer comparison instead of dataclass !=.
        governor = config.dvfs_governor(switch_cost_j)
        seen: list = []
        sid = []
        for path in range(len(profiles)):
            setting = governor.setting_for(path)
            for class_id, other in enumerate(seen):
                if setting == other:
                    sid.append(class_id)
                    break
            else:
                sid.append(len(seen))
                seen.append(setting)
        self._sid = np.asarray(sid, dtype=np.int64)
        self._switch_cost_j = switch_cost_j
        self._dec_req = None  # per-request decision list, built on first span price

    def ensure_span_tables(self) -> None:
        """Materialize span-pricing lookups, once per (config, stream).

        Span-mode batches are contiguous ``[lo, hi)`` ranges averaging a
        handful of requests, so pricing works off one Python list of
        per-request exit decisions (small ints, so ``tolist`` is cheap —
        unlike converting five per-request float gathers) plus per-exit
        Python float tables.  The per-request values this indexes are
        exactly the ones the gather in :meth:`price` would produce, in the
        same order, so the float sums are bit-identical.  ``_lat_one`` and
        ``_energy_one`` pre-fold the single-request batch: ``busy + over``
        and ``unit + passive * over`` associate identically to the batch
        formulas at size one.  Queue-mode runs never build any of this.
        """
        if self._dec_req is None:
            self._dec_req = self.decisions.tolist()
            self._busy_l = self._busy.tolist()
            self._over_l = self._over.tolist()
            self._passive_l = self._passive.tolist()
            self._unit_l = self._unit.tolist()
            self._sid_l = self._sid.tolist()
            self._lat_one = [b + o for b, o in zip(self._busy_l, self._over_l)]
            self._energy_one = [
                u + p * o
                for u, p, o in zip(self._unit_l, self._passive_l, self._over_l)
            ]

    def price_span(self, lo: int, hi: int) -> tuple[float, float, float]:
        """:meth:`price` for the contiguous batch ``[lo, hi)`` (span mode)."""
        dec = self._dec_req
        if hi - lo == 1:
            d = dec[lo]
            return self._lat_one[d], self._energy_one[d], 0.0
        busy = self._busy_l
        over = self._over_l
        unit = self._unit_l
        busy_sum = 0.0
        energy = 0.0
        peak = -1.0
        longest = lo
        for j in range(lo, hi):
            d = dec[j]
            busy_sum += busy[d]
            energy += unit[d]
            o = over[d]
            if o > peak:  # strict: keeps the first maximum, like argmax
                peak = o
                longest = j
        latency = busy_sum + peak
        energy += self._passive_l[dec[longest]] * peak
        switch = 0.0
        if self._switch_cost_j:
            sids = self._sid_l
            prev = sids[dec[lo]]
            transitions = 0
            for j in range(lo + 1, hi):
                cur = sids[dec[j]]
                if cur != prev:
                    transitions += 1
                    prev = cur
            switch = transitions * self._switch_cost_j
        return latency, energy + switch, switch

    def price_indices(
        self, indices: list[int], counts: list[int] | None = None
    ) -> tuple[float, float, float]:
        """:meth:`price` for an explicit request-index batch (fleet lanes).

        Fleet lanes dispatch non-contiguous index batches, so this is
        :meth:`price_span` generalised to an index list, off the same
        Python-float tables: sequential left-to-right sums and a strict
        first-maximum, which makes it bit-identical to calling
        :meth:`price` on the gathered decisions.  ``counts``, when given,
        tallies per-exit decisions in the same pass (the fleet's per-lane
        exit usage meters).  Call :meth:`ensure_span_tables` first.
        """
        dec = self._dec_req
        if len(indices) == 1:
            d = dec[indices[0]]
            if counts is not None:
                counts[d] += 1
            return self._lat_one[d], self._energy_one[d], 0.0
        busy = self._busy_l
        over = self._over_l
        unit = self._unit_l
        busy_sum = 0.0
        energy = 0.0
        peak = -1.0
        longest = indices[0]
        if counts is None:
            for t in indices:
                d = dec[t]
                busy_sum += busy[d]
                energy += unit[d]
                o = over[d]
                if o > peak:  # strict: keeps the first maximum, like argmax
                    peak = o
                    longest = t
        else:
            for t in indices:
                d = dec[t]
                counts[d] += 1
                busy_sum += busy[d]
                energy += unit[d]
                o = over[d]
                if o > peak:
                    peak = o
                    longest = t
        latency = busy_sum + peak
        energy += self._passive_l[dec[longest]] * peak
        switch = 0.0
        if self._switch_cost_j:
            sids = self._sid_l
            prev = sids[dec[indices[0]]]
            transitions = 0
            for t in indices[1:]:
                cur = sids[dec[t]]
                if cur != prev:
                    transitions += 1
                    prev = cur
            switch = transitions * self._switch_cost_j
        return latency, energy + switch, switch

    def price(self, decisions: np.ndarray) -> tuple[float, float, float]:
        """(latency_s, energy_j incl. switching, switching_j) for one batch."""
        busy_sum = sum(self._busy[decisions].tolist())
        over = self._over[decisions]
        longest = int(np.argmax(over))  # first occurrence, like max(key=...)
        latency = busy_sum + float(over[longest])
        energy = sum(self._unit[decisions].tolist()) + float(
            self._passive[decisions[longest]] * over[longest]
        )
        switch = 0.0
        if self._switch_cost_j and len(decisions) >= 2:
            sids = self._sid[decisions]
            transitions = int(np.count_nonzero(sids[1:] != sids[:-1]))
            switch = transitions * self._switch_cost_j
        return latency, energy + switch, switch


@dataclass
class _RunState:
    """Accumulated telemetry of one serving loop, engine-agnostic."""

    completion: np.ndarray  # NaN = never served (dropped at admission)
    correct: np.ndarray
    exit_counts: np.ndarray
    total_energy: float = 0.0
    switching_energy: float = 0.0
    battery_spent: float = 0.0
    battery_exhausted: bool = False
    num_batches: int = 0
    throttled: int = 0
    governor_decisions: int = 0
    num_dropped: int = 0
    num_deferred: int = 0
    config_usage: dict[str, int] = field(default_factory=dict)
    peak_temperature_c: float = 0.0


class ServingSimulator:
    """Replays one trace through one policy on one simulated device.

    Parameters
    ----------
    evaluator, placement:
        The deployed DyNN (supplies per-path hardware profiles).
    policy:
        Static or adaptive serving policy.
    ladder:
        The full config menu — used for scenario scaling (hottest config
        anchors the thermal model) and as the throttle fallback, even when
        the policy itself is static.
    scenario:
        Environment (thermal cap / battery budget).
    slo_s:
        Per-request completion deadline.
    window_s:
        Governor decision period.  Backlog spikes (more than
        ``emergency_backlog_batches`` full batches in the system, counting
        the batch being formed) trigger an immediate re-decision instead of
        waiting out the window — burst onsets are reacted to at batch
        granularity.
    battery_budget_j:
        Absolute energy allowance (None = unconstrained); the harness
        derives it from the scenario's ``battery_scale``.
    admission:
        Optional queue-depth admission policy (indexed engine only).
    engine:
        ``"indexed"`` (vectorized, default) or ``"reference"`` (the original
        object loop, kept as the executable specification).
    """

    def __init__(
        self,
        evaluator: DynamicEvaluator,
        placement: ExitPlacement,
        policy: ServingPolicy,
        ladder: list[RuntimeConfig],
        scenario: Scenario,
        slo_s: float,
        batch_policy: BatchPolicy | None = None,
        window_s: float = 0.5,
        switch_cost_j: float = 0.0,
        battery_budget_j: float | None = None,
        emergency_backlog_batches: float = 2.0,
        admission: AdmissionPolicy | None = None,
        engine: str = "indexed",
    ):
        check_positive("slo_s", slo_s)
        check_positive("window_s", window_s)
        if engine not in ENGINE_NAMES:
            raise ValueError(f"unknown engine {engine!r}; valid: {ENGINE_NAMES}")
        if engine == "reference" and admission is not None:
            raise ValueError(
                "the reference engine predates admission control; "
                "use engine='indexed' with an AdmissionPolicy"
            )
        self.evaluator = evaluator
        self.placement = placement
        self.policy = policy
        self.ladder = list(ladder)
        self.scenario = scenario
        self.slo_s = slo_s
        self.batch_policy = batch_policy or BatchPolicy()
        self.window_s = window_s
        self.switch_cost_j = switch_cost_j
        self.battery_budget_j = battery_budget_j
        self.admission = admission
        self.engine = engine
        self.emergency_backlog = emergency_backlog_batches * self.batch_policy.max_batch
        self._max_power_w = max(c.expected_power_w for c in self.ladder)
        self._coolest = min(self.ladder, key=lambda c: c.expected_power_w)
        self._profiles: dict[str, list[PathProfile]] = {}
        self._controllers: dict[str, object] = {}

    # ------------------------------------------------------------- internals
    def _profiles_of(self, config: RuntimeConfig) -> list[PathProfile]:
        if config.name not in self._profiles:
            self._profiles[config.name] = _profiles_for(
                self.evaluator, self.placement, config.dvfs_governor()
            )
        return self._profiles[config.name]

    def _controller_of(self, config: RuntimeConfig):
        if config.name not in self._controllers:
            self._controllers[config.name] = config.controller()
        return self._controllers[config.name]

    def _observe(
        self,
        now_s: float,
        trace: Trace,
        arrivals: np.ndarray,
        batcher,
        thermal: ThermalState | None,
        battery_spent_j: float,
    ) -> GovernorObservation:
        window_start = max(0.0, now_s - self.window_s)
        lo = int(np.searchsorted(arrivals, window_start, side="left"))
        hi = int(np.searchsorted(arrivals, now_s, side="right"))
        span = max(now_s - window_start, 1e-9)
        rate = (hi - lo) / span if now_s > 0 else trace.mean_rate_hz
        power_cap = thermal.power_cap_w(self._max_power_w) if thermal else None
        energy_cap = None
        if self.battery_budget_j is not None:
            remaining_j = max(self.battery_budget_j - battery_spent_j, 0.0)
            remaining_requests = max(
                trace.mean_rate_hz * max(trace.duration_s - now_s, 0.0), 1.0
            )
            energy_cap = remaining_j / remaining_requests
        return GovernorObservation(
            now_s=now_s,
            window_s=self.window_s,
            arrival_rate_hz=rate,
            backlog=batcher.backlog_at(now_s),
            slo_s=self.slo_s,
            temperature_c=thermal.temperature_c if thermal else 0.0,
            power_cap_w=power_cap,
            energy_cap_j=energy_cap,
            critical_backlog=batcher.critical_backlog_at(now_s),
        )

    def _initial_config(self, trace: Trace) -> RuntimeConfig:
        return self.policy.select(
            GovernorObservation(
                now_s=0.0,
                window_s=self.window_s,
                arrival_rate_hz=trace.mean_rate_hz,
                backlog=0,
                slo_s=self.slo_s,
            )
        )

    # -------------------------------------------------------------- main loop
    def run(
        self,
        trace: Trace,
        stream: ServingStream,
        platform: str = "?",
        model: str = "?",
        seed: int = 0,
    ) -> ServingReport:
        """Serve the whole trace and aggregate telemetry."""
        with tracing.span(
            "serving.run",
            pattern=trace.pattern,
            scenario=self.scenario.name,
            policy=self.policy.name,
            requests=trace.num_requests,
        ):
            return self._run(trace, stream, platform, model, seed)

    def _run(
        self,
        trace: Trace,
        stream: ServingStream,
        platform: str,
        model: str,
        seed: int,
    ) -> ServingReport:
        n = trace.num_requests
        if stream.final_logits.shape[0] != n:
            raise ValueError(
                f"stream carries {stream.final_logits.shape[0]} requests, trace has {n}"
            )
        if stream.num_exits != self.placement.num_exits:
            raise ValueError(
                f"stream carries {stream.num_exits} exit heads but the deployed "
                f"placement expects {self.placement.num_exits}; the mounted "
                "logits stream and exit placement must describe the same DyNN"
            )
        thermal = (
            ThermalState(self.scenario.thermal, self._max_power_w)
            if self.scenario.thermal is not None
            else None
        )
        if self.engine == "reference":
            if trace.num_critical:
                raise ValueError(
                    "the reference engine is class-agnostic; serve SLO-tagged "
                    "traces with engine='indexed'"
                )
            state = self._serve_reference(trace, stream, thermal)
        else:
            state = self._serve_indexed(trace, stream, thermal)
        return self._build_report(trace, thermal, state, platform, model, seed)

    def _serve_reference(
        self, trace: Trace, stream: ServingStream, thermal: ThermalState | None
    ) -> _RunState:
        """The original object loop: MicroBatcher + per-batch controller."""
        n = trace.num_requests
        arrivals = trace.arrival_s
        batcher = MicroBatcher(trace, self.batch_policy)
        state = _RunState(
            completion=np.full(n, np.nan),
            correct=np.zeros(n, dtype=bool),
            exit_counts=np.zeros(self.placement.num_exits + 1, dtype=np.int64),
        )
        clock = 0.0  # last simulated instant (for thermal integration)
        t_free = 0.0
        config = self._initial_config(trace)
        state.governor_decisions += 1
        tracing.count("serving.governor_decisions")
        next_decision = self.window_s

        while (formed := batcher.next_batch(t_free)) is not None:
            start, batch = formed
            if thermal is not None and start > clock:
                thermal.advance(0.0, start - clock)  # idle: device cools
            # Spike check counts the in-flight batch: next_batch already
            # popped it off the queue, but it is still unserved work.
            spike = batcher.backlog_at(start) + len(batch) > self.emergency_backlog
            if start >= next_decision or spike:
                obs = self._observe(
                    start, trace, arrivals, batcher, thermal, state.battery_spent
                )
                config = self.policy.select(obs)
                state.governor_decisions += 1
                tracing.count("serving.governor_decisions")
                next_decision = start + self.window_s

            active = config
            if thermal is not None and thermal.throttled:
                active = self._coolest  # hardware throttle overrides the policy
                state.throttled += 1
                tracing.count("serving.throttled_batches")
            state.config_usage[active.name] = state.config_usage.get(active.name, 0) + 1
            tracing.count("serving.batches")
            tracing.observe("serving.batch_size", len(batch))

            indices = np.asarray([r.index for r in batch], dtype=np.int64)
            outcome = execute_batch(
                self._controller_of(active),
                self._profiles_of(active),
                active.dvfs_governor(self.switch_cost_j),
                stream,
                indices,
            )
            state.switching_energy += outcome.switching_j

            end = start + outcome.latency_s
            state.completion[indices] = end
            state.correct[indices] = outcome.correct
            for d in outcome.decisions:
                state.exit_counts[d] += 1

            state.total_energy += outcome.energy_j
            state.battery_spent += outcome.energy_j
            if (
                self.battery_budget_j is not None
                and state.battery_spent > self.battery_budget_j
            ):
                state.battery_exhausted = True
            if thermal is not None and outcome.latency_s > 0:
                thermal.advance(outcome.energy_j / outcome.latency_s, outcome.latency_s)
            clock = end
            t_free = end
            state.num_batches += 1
        return state

    def _serve_indexed(
        self, trace: Trace, stream: ServingStream, thermal: ThermalState | None
    ) -> _RunState:
        """The vectorized event core: ArrayBatcher + compiled executor."""
        n = trace.num_requests
        arrivals = trace.arrival_s
        batcher = ArrayBatcher(trace, self.batch_policy, self.admission)
        cstream = compile_stream(stream)
        compiled: dict[str, _CompiledConfig] = {}

        def compiled_of(config: RuntimeConfig) -> _CompiledConfig:
            cc = compiled.get(config.name)
            if cc is None:
                cc = _CompiledConfig(
                    config, self._profiles_of(config), cstream, self.switch_cost_j
                )
                compiled[config.name] = cc
            return cc

        state = _RunState(
            completion=np.full(n, np.nan),
            correct=np.zeros(n, dtype=bool),
            exit_counts=np.zeros(self.placement.num_exits + 1, dtype=np.int64),
        )
        completion = state.completion
        correct = state.correct
        exit_counts = state.exit_counts
        use_span = batcher.contiguous
        clock = 0.0
        t_free = 0.0
        config = self._initial_config(trace)
        state.governor_decisions += 1
        tracing.count("serving.governor_decisions")
        next_decision = self.window_s

        # Hot-loop locals: at 10⁶ requests the attribute chases and no-op
        # tracing shims are real costs, so the loop binds everything once
        # (the recorder cannot change mid-run — it is thread-scoped and this
        # loop is synchronous) and writes the meters back at the end.
        recorder = tracing.active()
        policy_select = self.policy.select
        window_s = self.window_s
        emergency_backlog = self.emergency_backlog
        battery_budget = self.battery_budget_j
        config_usage = state.config_usage
        backlog_at = batcher.backlog_at
        num_batches = 0
        total_energy = 0.0
        battery_spent = 0.0
        switching_energy = 0.0
        # Span-mode writes of `correct`/`exit_counts` are flushed per *run*
        # of consecutive batches priced by the same compiled config — one
        # slice copy and one bincount per config stretch instead of per
        # batch (a static nominal run flushes exactly once).
        run_cc: _CompiledConfig | None = None
        run_lo = run_hi = 0

        def flush_run() -> None:
            if run_cc is not None and run_hi > run_lo:
                correct[run_lo:run_hi] = run_cc.correct[run_lo:run_hi]
                counts = np.bincount(
                    run_cc.decisions[run_lo:run_hi], minlength=len(exit_counts)
                )
                np.add(exit_counts, counts, out=exit_counts)

        while True:
            if use_span:
                formed = batcher.next_span(t_free)
            else:
                formed = batcher.next_batch(t_free)
            if formed is None:
                break
            if use_span:
                start, lo, hi = formed
                size = hi - lo
            else:
                start, indices = formed
                size = len(indices)
            if thermal is not None and start > clock:
                thermal.advance(0.0, start - clock)  # idle: device cools
            # Spike check counts the in-flight batch (see reference loop).
            spike = backlog_at(start) + size > emergency_backlog
            if start >= next_decision or spike:
                state.battery_spent = battery_spent
                obs = self._observe(
                    start, trace, arrivals, batcher, thermal, battery_spent
                )
                config = policy_select(obs)
                state.governor_decisions += 1
                if recorder is not None:
                    recorder.count("serving.governor_decisions", 1)
                next_decision = start + window_s

            active = config
            if thermal is not None and thermal.throttled:
                active = self._coolest
                state.throttled += 1
                if recorder is not None:
                    recorder.count("serving.throttled_batches", 1)
            name = active.name
            config_usage[name] = config_usage.get(name, 0) + 1
            if recorder is not None:
                recorder.count("serving.batches", 1)
                recorder.observe("serving.batch_size", size)

            cc = compiled_of(active)
            if use_span:
                if cc._dec_req is None:
                    cc.ensure_span_tables()
                latency, energy, switch = cc.price_span(lo, hi)
                if cc is run_cc and lo == run_hi:
                    run_hi = hi
                else:
                    flush_run()
                    run_cc, run_lo, run_hi = cc, lo, hi
                completion[lo:hi] = start + latency
            else:
                decisions = cc.decisions[indices]
                latency, energy, switch = cc.price(decisions)
                completion[indices] = start + latency
                correct[indices] = cc.correct[indices]
                exit_counts += np.bincount(decisions, minlength=len(exit_counts))
            switching_energy += switch

            end = start + latency
            total_energy += energy
            battery_spent += energy
            if battery_budget is not None and battery_spent > battery_budget:
                state.battery_exhausted = True
            if thermal is not None and latency > 0:
                thermal.advance(energy / latency, latency)
            clock = end
            t_free = end
            num_batches += 1

        flush_run()
        state.num_batches = num_batches
        state.total_energy = total_energy
        state.battery_spent = battery_spent
        state.switching_energy = switching_energy
        state.num_dropped = batcher.num_dropped
        state.num_deferred = batcher.num_deferred
        return state

    def _build_report(
        self,
        trace: Trace,
        thermal: ThermalState | None,
        state: _RunState,
        platform: str,
        model: str,
        seed: int,
    ) -> ServingReport:
        n = trace.num_requests
        arrivals = trace.arrival_s
        completion = state.completion
        served = ~np.isnan(completion)
        num_served = int(served.sum())
        latencies = completion[served] - arrivals[served]
        makespan = max(
            float(np.max(completion[served])) if num_served else 0.0, trace.duration_s
        )
        num_batches = state.num_batches
        return ServingReport(
            pattern=trace.pattern,
            scenario=self.scenario.name,
            policy=self.policy.name,
            platform=platform,
            model=model,
            seed=seed,
            slo_ms=self.slo_s * 1e3,
            num_requests=n,
            duration_s=trace.duration_s,
            offered_rate_rps=trace.mean_rate_hz,
            throughput_rps=num_served / makespan if makespan > 0 else 0.0,
            num_batches=num_batches,
            mean_batch_size=num_served / num_batches if num_batches else 0.0,
            latency_ms_mean=float(latencies.mean() * 1e3) if num_served else 0.0,
            latency_ms_p50=percentile_ms(latencies, 50),
            latency_ms_p95=percentile_ms(latencies, 95),
            latency_ms_p99=percentile_ms(latencies, 99),
            deadline_miss_rate=float((latencies > self.slo_s).mean())
            if num_served
            else 0.0,
            energy_per_request_j=state.total_energy / num_served if num_served else 0.0,
            total_energy_j=state.total_energy,
            switching_energy_j=state.switching_energy,
            accuracy=float(state.correct[served].mean()) if num_served else 0.0,
            exit_usage=[
                float(c) / num_served if num_served else 0.0 for c in state.exit_counts
            ],
            config_usage=state.config_usage,
            governor_decisions=state.governor_decisions,
            throttled_batches=state.throttled,
            peak_temperature_c=thermal.peak_c if thermal is not None else 0.0,
            battery_budget_j=self.battery_budget_j or 0.0,
            battery_spent_j=state.battery_spent
            if self.battery_budget_j is not None
            else 0.0,
            battery_exhausted=state.battery_exhausted,
            num_served=num_served,
            num_dropped=state.num_dropped,
            num_deferred=state.num_deferred,
            drop_rate=state.num_dropped / n if n else 0.0,
            class_stats=class_latency_stats(
                trace.slo_class, SLO_CLASSES, arrivals, completion, self.slo_s
            ),
        )
