"""Difficulty-conditioned logits synthesis for serving streams.

The serving simulator needs per-request exit logits so the *real* runtime
controllers (`repro.runtime.controller`) can make entropy-threshold exit
decisions.  This module maps each request's Beta-distributed difficulty to a
per-exit logits vector using the same capability model as the exit oracle:
a head at relative depth ``u`` has capability ``cap(u)``; its confidence
margin on a request of difficulty ``d`` is proportional to ``cap(u) − d``
(plus idiosyncratic noise).  Easy requests are confidently classified by
shallow heads and exit early; hard requests stay uncertain until deep in
the network — precisely the behaviour entropy thresholding exploits.

Logits are synthesised for the *whole trace up front* (keyed by request
index), so exit decisions for a given request are identical regardless of
how the batcher groups it — static and adaptive policies are compared on a
paired stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accuracy.exit_model import ExitCapabilityModel
from repro.data.difficulty import DifficultyDistribution
from repro.exits.placement import ExitPlacement
from repro.utils.rng import child_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ServingStream:
    """Pre-synthesised logits for every request of a trace."""

    exit_logits: np.ndarray  # (E, n, classes)
    final_logits: np.ndarray  # (n, classes)
    labels: np.ndarray  # (n,)

    @property
    def num_exits(self) -> int:
        return self.exit_logits.shape[0]

    def batch(self, indices: np.ndarray | list[int]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Slice the stream down to one micro-batch (by request index)."""
        idx = np.asarray(indices, dtype=np.int64)
        return self.exit_logits[:, idx], self.final_logits[idx], self.labels[idx]


@dataclass(frozen=True)
class LogitsSynthesizer:
    """Difficulty → logits, conditioned on exit depth and head capability.

    Parameters
    ----------
    placement:
        The deployed exit configuration (relative depths set per-head
        capability).
    backbone_accuracy:
        Final-classifier accuracy fraction (caps every head).
    model:
        The capability model shared with the exit oracle.
    num_classes, margin_gain, margin_noise:
        Logit-space geometry: the true-class margin is
        ``margin_gain · max(cap − difficulty + noise, 0)``; zero margin
        leaves the head at chance.
    """

    placement: ExitPlacement
    backbone_accuracy: float
    model: ExitCapabilityModel = ExitCapabilityModel()
    num_classes: int = 10
    margin_gain: float = 7.0
    margin_noise: float = 0.15
    seed: int = 0

    def __post_init__(self):
        check_positive("num_classes", self.num_classes)
        check_positive("margin_gain", self.margin_gain)

    def synthesize(self, difficulties: np.ndarray, branch: str = "trace") -> ServingStream:
        """Synthesise the full stream for ``difficulties`` (one per request).

        ``branch`` keys an independent noise stream, so calibration and
        serving draws never overlap.
        """
        difficulties = np.asarray(difficulties, dtype=float)
        n = len(difficulties)
        num_exits = self.placement.num_exits
        rng = child_rng(self.seed, "serving", "logits", branch, self.placement.key)
        labels = rng.integers(0, self.num_classes, size=n)
        depths = np.concatenate([self.placement.relative_depths(), [1.0]])
        capabilities = np.asarray(
            [float(self.model.capability(self.backbone_accuracy, u)) for u in depths]
        )
        # Base logits are noise; heads add a margin on the true class that
        # grows with (capability - difficulty).  Nearby depths share the
        # perturbation (one draw per request), so consecutive heads agree —
        # the correlation structure the oracle's GP encodes.
        logits = rng.normal(0.0, 1.0, size=(num_exits + 1, n, self.num_classes))
        perturbation = rng.normal(0.0, self.margin_noise, size=n)
        for head, cap in enumerate(capabilities):
            margin = np.clip(cap - difficulties + perturbation, 0.0, None)
            logits[head, np.arange(n), labels] += self.margin_gain * margin
        return ServingStream(
            exit_logits=logits[:num_exits],
            final_logits=logits[num_exits],
            labels=labels,
        )

    def calibration_stream(
        self,
        n: int = 512,
        difficulty: DifficultyDistribution | None = None,
    ) -> ServingStream:
        """A held-out stream for threshold tuning and usage estimation.

        Drawn from the same difficulty distribution but a distinct seed
        branch, so serving traces never tune on their own requests.
        """
        dist = difficulty or DifficultyDistribution()
        rng = child_rng(self.seed, "serving", "calibration", self.placement.key)
        return self.synthesize(dist.sample(n, rng), branch="calibration")
