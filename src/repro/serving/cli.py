"""``repro serve`` — run the online edge-serving simulator from the shell.

Usage::

    repro serve --trace diurnal --slo-ms 20
    repro serve --trace bursty --scenario battery-budget --policy both
    repro serve --trace poisson --platform agx-gpu --model a0 --json out.json
    repro serve --trace replay --workers 4 --cache-dir .cache/engine
    repro serve --from-result design.json --fleet tx2,xavier --router difficulty_aware
    repro serve --fleet agx-gpu,tx2-gpu,denver-cpu --router all --trace bursty

``--policy both`` (the default) runs the static baseline and the adaptive
governor on the *same* trace and logits stream and prints the comparison.
``--fleet`` switches to multi-device serving: the named platforms (aliases
like ``tx2``/``xavier`` work) sit behind one shared queue and ``--router``
picks the request router (``all`` compares the three routers on the same
trace).  ``--from-result`` mounts the design a ``repro search --out`` run
selected instead of the default AttentiveNAS backbone.  Grid cells go
through the engine's EvaluationService, so ``--workers`` runs them
concurrently and ``--cache-dir`` persists the reports.
"""

from __future__ import annotations

import argparse
import dataclasses

from repro.hardware.platform import (
    PAPER_PLATFORM_ORDER,
    canonical_platform_key,
    resolve_platform_keys,
    validate_platform_keys,
)
from repro.serving.batcher import ADMISSION_MODES
from repro.serving.fleet import FleetSpec, fleet_sweep
from repro.serving.simulator import ENGINE_NAMES
from repro.serving.harness import POLICY_NAMES, ServingSpec, sweep
from repro.serving.router import ROUTER_NAMES
from repro.serving.scenarios import SCENARIO_NAMES
from repro.serving.telemetry import (
    render_comparison,
    render_fleet_report,
    render_report,
    render_router_comparison,
)
from repro.serving.workload import LOAD_PATTERNS
from repro.utils.serialization import save_json


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--trace", "--pattern", dest="trace", default="poisson", choices=LOAD_PATTERNS,
        help="load pattern feeding the simulator",
    )
    parser.add_argument("--scenario", default="nominal", choices=SCENARIO_NAMES)
    parser.add_argument(
        "--policy", default="both", choices=POLICY_NAMES + ("both",),
        help="runtime policy; 'both' compares adaptive against the static baseline "
             "(fleet runs use the adaptive governor unless overridden)",
    )
    parser.add_argument("--slo-ms", type=float, default=75.0)
    parser.add_argument("--platform", default="tx2-gpu",
                        help=f"one of: {', '.join(PAPER_PLATFORM_ORDER)} (aliases ok)")
    parser.add_argument("--fleet", default=None,
                        help="comma-separated platforms behind one queue "
                             "(e.g. tx2,xavier); switches to fleet serving")
    parser.add_argument("--router", default="difficulty_aware",
                        choices=ROUTER_NAMES + ("all",),
                        help="fleet request router; 'all' compares every router")
    parser.add_argument("--from-result", dest="from_result", default=None,
                        help="mount the searched design from a `repro search --out` artifact")
    parser.add_argument("--model", default="a3", help="AttentiveNAS backbone a0..a6")
    parser.add_argument("--duration-s", type=float, default=20.0)
    parser.add_argument("--utilization", type=float, default=0.7,
                        help="offered load relative to the reference capacity")
    parser.add_argument("--rate-hz", type=float, default=None,
                        help="explicit mean arrival rate (overrides --utilization)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--num-exits", type=int, default=3)
    parser.add_argument("--max-batch", type=int, default=6)
    parser.add_argument("--batch-timeout-ms", type=float, default=4.0)
    parser.add_argument("--window-ms", type=float, default=400.0)
    parser.add_argument("--critical-fraction", type=float, default=0.0,
                        help="share of arrivals tagged latency-critical "
                             "(per-class percentiles land in the report)")
    parser.add_argument("--admission-queue", type=int, default=None,
                        help="backlog cap; arrivals beyond it are dropped or "
                             "deferred instead of queueing unboundedly")
    parser.add_argument("--admission-mode", default="drop",
                        choices=list(ADMISSION_MODES),
                        help="what happens past the cap (fleet runs are drop-only)")
    parser.add_argument("--engine", default="indexed",
                        choices=list(ENGINE_NAMES),
                        help="fleet dispatch core: block-routed 'indexed' or "
                             "the scalar 'reference' loop (bit-identical)")
    parser.add_argument("--steal", action="store_true",
                        help="fleet work stealing at governor horizons "
                             "(indexed engine only; departs from reference)")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--executor", default="auto",
                        choices=["auto", "serial", "thread", "process"])
    parser.add_argument("--cache-dir", default=None,
                        help="persistent result cache for serving cells")
    parser.add_argument("--json", default=None, help="write reports to this JSON file")
    parser.add_argument("--trace-out", default=None, metavar="OUT.jsonl",
                        help="record an observability trace + run manifest of "
                             "the sweep (`--trace` names the load pattern; "
                             "inspect with `python -m repro trace summary`)")
    args = parser.parse_args(argv)

    if args.workers <= 0:
        parser.error(f"--workers must be > 0, got {args.workers}")

    design = None
    if args.from_result is not None:
        from repro.serving.deploy import load_design

        try:
            design = load_design(args.from_result)
        except (OSError, ValueError, TypeError, KeyError) as error:
            parser.error(f"cannot load design from {args.from_result}: {error}")
        print(f"mounting {design.describe()}")

    from repro.obs.cli import traced_run

    fleet_platforms = [args.fleet] if args.fleet is not None else [args.platform]
    with traced_run(
        args.trace_out,
        command="repro serve " + " ".join(argv or []),
        config={"pattern": args.trace, "scenario": args.scenario,
                "policy": args.policy, "slo_ms": args.slo_ms},
        seed=args.seed,
        platforms=fleet_platforms,
    ):
        if args.fleet is not None:
            return _serve_fleet(parser, args, design)
        if args.steal:
            parser.error("--steal needs a fleet (use --fleet)")
        return _serve_single(parser, args, design)


def _serve_single(parser, args, design) -> int:
    args.platform = canonical_platform_key(args.platform)
    try:
        validate_platform_keys([args.platform])
    except ValueError as error:
        parser.error(str(error))

    policies = list(POLICY_NAMES) if args.policy == "both" else [args.policy]
    try:
        specs = [
            ServingSpec(
                platform=args.platform,
                model=args.model,
                pattern=args.trace,
                scenario=args.scenario,
                policy=policy,
                slo_ms=args.slo_ms,
                utilization=args.utilization,
                rate_hz=args.rate_hz,
                duration_s=args.duration_s,
                num_exits=args.num_exits,
                seed=args.seed,
                max_batch=args.max_batch,
                batch_timeout_ms=args.batch_timeout_ms,
                window_ms=args.window_ms,
                design=design,
                critical_fraction=args.critical_fraction,
                admission_max_queue=args.admission_queue,
                admission_mode=args.admission_mode,
            )
            for policy in policies
        ]
    except ValueError as error:
        parser.error(str(error))

    reports = sweep(
        specs, workers=args.workers, executor=args.executor, cache_dir=args.cache_dir
    )
    by_policy = dict(zip(policies, reports))
    for report in reports:
        print(render_report(report))
        print()
    if "static" in by_policy and "adaptive" in by_policy:
        print(render_comparison(by_policy["static"], by_policy["adaptive"]))
    if args.json is not None:
        payload = {
            "specs": [dataclasses.asdict(spec) for spec in specs],
            "reports": reports,
        }
        path = save_json(payload, args.json)
        print(f"\nwrote {path}")
    return 0


def _serve_fleet(parser, args, design) -> int:
    try:
        platforms = tuple(
            resolve_platform_keys(
                [key.strip() for key in args.fleet.split(",") if key.strip()]
            )
        )
    except ValueError as error:
        parser.error(str(error))
    if not platforms:
        parser.error("--fleet needs at least one platform (e.g. --fleet tx2,xavier)")
    if args.admission_queue is not None and args.admission_mode != "drop":
        parser.error("fleet admission is drop-only; use --admission-mode drop")

    routers = list(ROUTER_NAMES) if args.router == "all" else [args.router]
    policy = "adaptive" if args.policy == "both" else args.policy
    try:
        specs = [
            FleetSpec(
                platforms=platforms,
                model=args.model,
                pattern=args.trace,
                scenario=args.scenario,
                policy=policy,
                router=router,
                slo_ms=args.slo_ms,
                utilization=args.utilization,
                rate_hz=args.rate_hz,
                duration_s=args.duration_s,
                num_exits=args.num_exits,
                seed=args.seed,
                max_batch=args.max_batch,
                batch_timeout_ms=args.batch_timeout_ms,
                window_ms=args.window_ms,
                design=design,
                critical_fraction=args.critical_fraction,
                admission_max_queue=args.admission_queue,
                engine=args.engine,
                steal=args.steal,
            )
            for router in routers
        ]
    except ValueError as error:
        parser.error(str(error))

    reports = fleet_sweep(
        specs, workers=args.workers, executor=args.executor, cache_dir=args.cache_dir
    )
    by_router = dict(zip(routers, reports))
    for report in reports:
        print(render_fleet_report(report))
        print()
    if "round_robin" in by_router:
        for name in ("least_backlog", "difficulty_aware"):
            if name in by_router:
                print(render_router_comparison(by_router["round_robin"], by_router[name]))
    if args.json is not None:
        payload = {
            "specs": [dataclasses.asdict(spec) for spec in specs],
            "reports": reports,
        }
        path = save_json(payload, args.json)
        print(f"\nwrote {path}")
    return 0
