"""SLO telemetry for serving runs: percentiles, misses, energy, exits.

:class:`ServingReport` is deliberately plain (floats, lists, string-keyed
dicts) so it survives ``to_jsonable`` round-trips — serving cells are cached
in the persistent :class:`~repro.engine.cache.ResultCache` as JSON and
rebuilt with ``from_jsonable``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def percentile_ms(latencies_s: np.ndarray, q: float) -> float:
    """Latency percentile in milliseconds (0 for an empty run)."""
    if len(latencies_s) == 0:
        return 0.0
    return float(np.percentile(latencies_s, q) * 1e3)


def class_latency_stats(
    slo_classes: np.ndarray,
    class_names: tuple[str, ...],
    arrivals_s: np.ndarray,
    completion_s: np.ndarray,
    slo_s: float,
) -> dict[str, dict]:
    """Per-SLO-class latency/miss/drop statistics over served requests.

    ``completion_s`` uses NaN for never-served (dropped) requests; every
    latency statistic is computed over the served subset only, so admission
    drops can never manufacture negative latencies.  Keys are stable (one
    entry per class name) so reports keep a uniform schema whether or not
    the trace carries latency-critical traffic.
    """
    stats: dict[str, dict] = {}
    for code, name in enumerate(class_names):
        mask = np.asarray(slo_classes) == code
        completion = completion_s[mask]
        served = ~np.isnan(completion)
        latencies = completion[served] - arrivals_s[mask][served]
        total = int(mask.sum())
        num_served = int(served.sum())
        stats[name] = {
            "num_requests": total,
            "num_served": num_served,
            "num_dropped": total - num_served,
            "latency_ms_mean": float(latencies.mean() * 1e3) if num_served else 0.0,
            "latency_ms_p50": percentile_ms(latencies, 50),
            "latency_ms_p95": percentile_ms(latencies, 95),
            "latency_ms_p99": percentile_ms(latencies, 99),
            "deadline_miss_rate": float((latencies > slo_s).mean())
            if num_served
            else 0.0,
        }
    return stats


@dataclass(frozen=True)
class ServingReport:
    """Aggregate outcome of one serving run (one trace × one policy)."""

    # Identity
    pattern: str
    scenario: str
    policy: str
    platform: str
    model: str
    seed: int
    slo_ms: float
    # Traffic
    num_requests: int
    duration_s: float
    offered_rate_rps: float
    throughput_rps: float
    num_batches: int
    mean_batch_size: float
    # Latency / SLO
    latency_ms_mean: float
    latency_ms_p50: float
    latency_ms_p95: float
    latency_ms_p99: float
    deadline_miss_rate: float
    # Energy / accuracy
    energy_per_request_j: float
    total_energy_j: float
    switching_energy_j: float
    accuracy: float
    exit_usage: list[float] = field(default_factory=list)
    # Governor / environment
    config_usage: dict[str, int] = field(default_factory=dict)  # batches per config
    governor_decisions: int = 0
    throttled_batches: int = 0
    peak_temperature_c: float = 0.0
    battery_budget_j: float = 0.0  # 0 when the scenario has no battery
    battery_spent_j: float = 0.0
    battery_exhausted: bool = False
    # Admission control / SLO classes (PR 8). num_served + num_dropped ==
    # num_requests; latency stats above cover served requests only.
    num_served: int = 0
    num_dropped: int = 0
    num_deferred: int = 0  # parked by a defer-mode admission gate at least once
    drop_rate: float = 0.0
    class_stats: dict[str, dict] = field(default_factory=dict)  # per SLO class

    @property
    def met_slo_rate(self) -> float:
        return 1.0 - self.deadline_miss_rate


def _admission_lines(report) -> list[str]:
    """Drop/defer and per-class lines shared by the single/fleet renderers."""
    lines: list[str] = []
    if report.num_dropped or report.num_deferred:
        lines.append(
            f"  admission       {report.num_served} served, "
            f"{report.num_dropped} dropped ({report.drop_rate * 100:.1f}%), "
            f"{report.num_deferred} deferred"
        )
    stats = getattr(report, "class_stats", None) or {}
    critical = stats.get("latency_critical")
    if critical and critical["num_requests"]:
        for name, cls in stats.items():
            lines.append(
                f"  {name:<15s} {cls['num_served']}/{cls['num_requests']} served  "
                f"p95 {cls['latency_ms_p95']:.1f}ms  "
                f"miss {cls['deadline_miss_rate'] * 100:.1f}%"
            )
    return lines


def render_report(report: ServingReport) -> str:
    """One run as a human-readable block."""
    lines = [
        f"{report.pattern} x {report.scenario} x {report.policy} "
        f"({report.model} on {report.platform}, seed {report.seed})",
        f"  requests        {report.num_requests} over {report.duration_s:.1f}s "
        f"(offered {report.offered_rate_rps:.1f} rps, served {report.throughput_rps:.1f} rps)",
        f"  latency ms      mean {report.latency_ms_mean:.1f}  p50 {report.latency_ms_p50:.1f}  "
        f"p95 {report.latency_ms_p95:.1f}  p99 {report.latency_ms_p99:.1f}",
        f"  SLO {report.slo_ms:.0f}ms       miss rate {report.deadline_miss_rate * 100:.1f}%",
        *_admission_lines(report),
        f"  energy          {report.energy_per_request_j * 1e3:.1f} mJ/request "
        f"({report.total_energy_j:.2f} J total, switch {report.switching_energy_j * 1e3:.1f} mJ)",
        f"  accuracy        {report.accuracy * 100:.1f}%",
        f"  exits           " + " ".join(f"{u * 100:.0f}%" for u in report.exit_usage),
        f"  batches         {report.num_batches} (mean size {report.mean_batch_size:.1f})",
    ]
    if report.config_usage:
        top = sorted(report.config_usage.items(), key=lambda kv: -kv[1])[:4]
        lines.append(
            "  configs         "
            + "  ".join(f"{name}:{count}" for name, count in top)
            + f"  ({report.governor_decisions} decisions)"
        )
    if report.throttled_batches:
        lines.append(
            f"  thermal         {report.throttled_batches} throttled batches, "
            f"peak {report.peak_temperature_c:.1f}C"
        )
    elif report.peak_temperature_c:
        lines.append(f"  thermal         peak {report.peak_temperature_c:.1f}C")
    if report.battery_budget_j:
        lines.append(
            f"  battery         spent {report.battery_spent_j:.2f} / "
            f"{report.battery_budget_j:.2f} J"
            + ("  EXHAUSTED" if report.battery_exhausted else "")
        )
    return "\n".join(lines)


def render_fleet_report(report) -> str:
    """One fleet run (:class:`~repro.serving.fleet.FleetReport`) as text."""
    lines = [
        f"{report.pattern} x {report.scenario} x {report.router} router "
        f"({report.model} on [{', '.join(report.platforms)}], "
        f"{report.policy} governors, seed {report.seed})",
        f"  requests        {report.num_requests} over {report.duration_s:.1f}s "
        f"(offered {report.offered_rate_rps:.1f} rps, served {report.throughput_rps:.1f} rps)",
        f"  latency ms      mean {report.latency_ms_mean:.1f}  p50 {report.latency_ms_p50:.1f}  "
        f"p95 {report.latency_ms_p95:.1f}  p99 {report.latency_ms_p99:.1f}",
        f"  SLO {report.slo_ms:.0f}ms       miss rate {report.deadline_miss_rate * 100:.1f}%",
        *_admission_lines(report),
        f"  energy          {report.energy_per_request_j * 1e3:.1f} mJ/request "
        f"({report.total_energy_j:.2f} J total)",
        f"  accuracy        {report.accuracy * 100:.1f}%",
        f"  exits           " + " ".join(f"{u * 100:.0f}%" for u in report.exit_usage),
    ]
    for device in report.devices:
        lines.append(
            f"  - {device.platform:<12s} {device.requests:>5d} reqs "
            f"({device.share * 100:4.1f}%)  util {device.utilization * 100:5.1f}%  "
            f"p95 {device.latency_ms_p95:7.1f}ms  "
            f"{device.energy_per_request_j * 1e3:6.1f} mJ/req"
            + (f"  {device.throttled_batches} throttled" if device.throttled_batches else "")
        )
    if report.battery_budget_j:
        lines.append(
            f"  battery         spent {report.battery_spent_j:.2f} / "
            f"{report.battery_budget_j:.2f} J"
            + ("  EXHAUSTED" if report.battery_exhausted else "")
        )
    return "\n".join(lines)


def render_router_comparison(baseline, candidate) -> str:
    """Candidate-vs-baseline router summary for one fleet cell."""
    if baseline.total_energy_j > 0:
        energy_delta = (1.0 - candidate.total_energy_j / baseline.total_energy_j) * 100
    else:
        energy_delta = 0.0
    p95_delta = baseline.latency_ms_p95 - candidate.latency_ms_p95
    return (
        f"{candidate.router} vs {baseline.router} [{baseline.pattern} x "
        f"{baseline.scenario}]: p95 {candidate.latency_ms_p95:.1f} vs "
        f"{baseline.latency_ms_p95:.1f} ms ({p95_delta:+.1f} ms), "
        f"fleet energy {candidate.total_energy_j:.2f} vs "
        f"{baseline.total_energy_j:.2f} J ({energy_delta:+.1f}% saved), "
        f"miss rate {candidate.deadline_miss_rate * 100:.1f}% vs "
        f"{baseline.deadline_miss_rate * 100:.1f}%"
    )


def render_comparison(static: ServingReport, adaptive: ServingReport) -> str:
    """Adaptive vs static summary line for one (pattern, scenario) cell."""
    miss_delta = (static.deadline_miss_rate - adaptive.deadline_miss_rate) * 100
    if static.energy_per_request_j > 0:
        energy_delta = (
            1.0 - adaptive.energy_per_request_j / static.energy_per_request_j
        ) * 100
    else:
        energy_delta = 0.0
    return (
        f"adaptive vs static [{static.pattern} x {static.scenario}]: "
        f"deadline misses {adaptive.deadline_miss_rate * 100:.1f}% vs "
        f"{static.deadline_miss_rate * 100:.1f}% ({miss_delta:+.1f} pts), "
        f"energy/request {adaptive.energy_per_request_j * 1e3:.1f} vs "
        f"{static.energy_per_request_j * 1e3:.1f} mJ ({energy_delta:+.1f}% saved)"
    )
