"""Request routers for the heterogeneous serving fleet.

A :class:`FleetRouter` picks, per arriving request, which device lane the
request joins.  Routers see a read-only :class:`LaneState` per device —
queue depth, device-free time, the lane's reference capacity and energy —
and the request's scalar features: ``difficulty`` (standing in for a cheap
upstream difficulty predictor; HADAS's premise is exactly that easy inputs
early-exit, so difficulty is observable-enough to estimate) and its SLO
class (``latency_critical`` or ``best_effort``).

Three policies:

* ``round_robin`` — cyclic assignment, the classic oblivious baseline;
* ``least_backlog`` — join the lane with the shortest *estimated drain
  time* (queued work divided by the lane's capacity, plus residual device
  busy time), i.e. join-the-shortest-queue corrected for heterogeneity;
* ``difficulty_aware`` — lanes are ordered by capacity and each takes the
  difficulty band matching its share of fleet capacity: cheap, weak
  devices absorb easy requests (which early-exit and are fast anywhere),
  hard requests go to high-headroom devices whose deep paths still meet
  the SLO.  A spill guard reroutes to the least-loaded lane whenever the
  banded choice's estimated wait would blow the deadline — bursty arrivals
  degrade into least-backlog instead of queueing behind a weak device.
  Latency-critical requests spill at *half* the wait threshold: best-effort
  traffic rides out moderate backlog in its band while criticals move to
  the least-loaded lane early enough to keep their deadline headroom.

Everything is deterministic: ties break on lane index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.serving.workload import LATENCY_CRITICAL

#: Router names accepted by :func:`make_router` (CLI/bench vocabulary).
ROUTER_NAMES = ("round_robin", "least_backlog", "difficulty_aware")


class LaneState(Protocol):
    """What a router may observe about one device lane."""

    index: int

    @property
    def queue_depth(self) -> int: ...

    @property
    def reference_capacity_rps(self) -> float: ...

    @property
    def reference_energy_j(self) -> float: ...

    def estimated_wait_s(self, now_s: float) -> float: ...


class FleetRouter:
    """Base: maps an arriving request's (difficulty, class) to a lane index."""

    name = "router"

    def route(
        self,
        difficulty: float,
        slo_class: int,
        now_s: float,
        lanes: Sequence[LaneState],
    ) -> int:
        raise NotImplementedError


class RoundRobinRouter(FleetRouter):
    """Cyclic assignment, blind to state, difficulty and class."""

    name = "round_robin"

    def __init__(self):
        self._next = 0

    def route(
        self,
        difficulty: float,
        slo_class: int,
        now_s: float,
        lanes: Sequence[LaneState],
    ) -> int:
        index = self._next % len(lanes)
        self._next += 1
        return index


class LeastBacklogRouter(FleetRouter):
    """Join the lane that will drain its queued work soonest."""

    name = "least_backlog"

    def route(
        self,
        difficulty: float,
        slo_class: int,
        now_s: float,
        lanes: Sequence[LaneState],
    ) -> int:
        return min(lanes, key=lambda lane: (lane.estimated_wait_s(now_s), lane.index)).index


@dataclass
class _Band:
    """Difficulty band [lo, hi) owned by one lane."""

    lane_index: int
    lo: float
    hi: float


class DifficultyAwareRouter(FleetRouter):
    """Difficulty-banded assignment with a class-aware SLO spill guard.

    Lanes sorted by reference capacity partition the difficulty axis into
    bands proportional to their capacity share — the weakest (and usually
    cheapest) lane owns the easiest band.  When the banded lane's estimated
    wait exceeds ``spill_fraction``·SLO, the request spills to the lane
    with the least estimated wait instead; latency-critical requests use
    half that threshold, so they leave a backlogged band before best-effort
    traffic does.
    """

    name = "difficulty_aware"

    def __init__(self, lanes: Sequence[LaneState], slo_s: float, spill_fraction: float = 0.5):
        if not lanes:
            raise ValueError("difficulty-aware router needs at least one lane")
        self.slo_s = slo_s
        self.spill_fraction = spill_fraction
        ordered = sorted(
            lanes, key=lambda lane: (lane.reference_capacity_rps, lane.index)
        )
        total = sum(lane.reference_capacity_rps for lane in ordered)
        self._bands: list[_Band] = []
        lo = 0.0
        for lane in ordered:
            share = lane.reference_capacity_rps / total if total > 0 else 1.0 / len(ordered)
            self._bands.append(_Band(lane.index, lo, lo + share))
            lo += share
        self._bands[-1].hi = 1.0 + 1e-9  # difficulty == 1.0 lands in the last band

    def banded_lane(self, difficulty: float) -> int:
        """The lane whose band contains ``difficulty`` (no spill logic)."""
        for band in self._bands:
            if band.lo <= difficulty < band.hi:
                return band.lane_index
        return self._bands[-1].lane_index

    def route(
        self,
        difficulty: float,
        slo_class: int,
        now_s: float,
        lanes: Sequence[LaneState],
    ) -> int:
        chosen = self.banded_lane(difficulty)
        threshold = self.spill_fraction * self.slo_s
        if slo_class == LATENCY_CRITICAL:
            threshold *= 0.5  # criticals abandon a backlogged band early
        if lanes[chosen].estimated_wait_s(now_s) > threshold:
            spill = min(
                lanes, key=lambda lane: (lane.estimated_wait_s(now_s), lane.index)
            )
            return spill.index
        return chosen


def make_router(name: str, lanes: Sequence[LaneState], slo_s: float) -> FleetRouter:
    """Build a router by name (the CLI/bench entry point)."""
    if name == "round_robin":
        return RoundRobinRouter()
    if name == "least_backlog":
        return LeastBacklogRouter()
    if name == "difficulty_aware":
        return DifficultyAwareRouter(lanes, slo_s)
    raise ValueError(f"unknown router {name!r}; expected one of {ROUTER_NAMES}")
