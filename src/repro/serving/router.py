"""Request routers for the heterogeneous serving fleet.

A :class:`FleetRouter` picks, per arriving request, which device lane the
request joins.  Routers see a read-only :class:`LaneState` per device —
queue depth, device-free time, the lane's reference capacity and energy —
and the request's scalar features: ``difficulty`` (standing in for a cheap
upstream difficulty predictor; HADAS's premise is exactly that easy inputs
early-exit, so difficulty is observable-enough to estimate) and its SLO
class (``latency_critical`` or ``best_effort``).

Three policies:

* ``round_robin`` — cyclic assignment, the classic oblivious baseline;
* ``least_backlog`` — join the lane with the shortest *estimated drain
  time* (queued work divided by the lane's capacity, plus residual device
  busy time), i.e. join-the-shortest-queue corrected for heterogeneity;
* ``difficulty_aware`` — lanes are ordered by capacity and each takes the
  difficulty band matching its share of fleet capacity: cheap, weak
  devices absorb easy requests (which early-exit and are fast anywhere),
  hard requests go to high-headroom devices whose deep paths still meet
  the SLO.  A spill guard reroutes to the least-loaded lane whenever the
  banded choice's estimated wait would blow the deadline — bursty arrivals
  degrade into least-backlog instead of queueing behind a weak device.
  Latency-critical requests spill at *half* the wait threshold: best-effort
  traffic rides out moderate backlog in its band while criticals move to
  the least-loaded lane early enough to keep their deadline headroom.

Every router also exposes a **block kernel**, :meth:`FleetRouter.route_block`:
given a whole arrival block — a run of consecutive requests between two
fleet dispatch horizons, over which no lane's queue can drain — it returns
the same lane assignments the scalar :meth:`route` loop would make, one
request at a time, against a :class:`BlockLaneState` snapshot that tracks
within-block queue growth.  Round-robin is arithmetic modulo cycling;
least-backlog re-evaluates the drain estimate per request off the snapshot
lists (the estimate changes with every admitted push); difficulty-aware
screens the whole block against a conservative wait bound and, when no
request can possibly spill, assigns the precomputed capacity bands in one
`searchsorted` — falling back to per-request stepping only when a spill is
actually reachable.  Admission (queue-depth cap + critical bypass) is folded
into the same pass because later routing decisions depend on which earlier
requests were actually admitted.

Everything is deterministic: ties break on lane index.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.serving.workload import LATENCY_CRITICAL

#: Router names accepted by :func:`make_router` (CLI/bench vocabulary).
ROUTER_NAMES = ("round_robin", "least_backlog", "difficulty_aware")

#: Block size above which the banded kernel switches from a bisect loop to
#: one vectorized ``np.searchsorted`` (small blocks are cheaper in Python).
_VECTOR_BLOCK = 32


class LaneState(Protocol):
    """What a router may observe about one device lane."""

    index: int
    t_free: float

    @property
    def queue_depth(self) -> int: ...

    @property
    def reference_capacity_rps(self) -> float: ...

    @property
    def reference_energy_j(self) -> float: ...

    def estimated_wait_s(self, now_s: float) -> float: ...


class BlockLaneState:
    """Mutable per-lane snapshot the block kernels route against.

    One instance lives for a whole fleet run: ``t_free`` and ``depth`` are
    the live per-lane device-free times and queue depths (the owning
    simulator keeps them in sync with dispatches), ``capacity`` the per-lane
    reference capacity in requests/second.  The wait estimate the kernels
    compute off these lists — ``max(t_free - now, 0) + depth / capacity`` —
    is float-for-float the scalar :meth:`LaneState.estimated_wait_s`.

    Admission folds into routing because queue-depth admission over a
    no-dispatch stretch is a *prefix* rule: within a block the queue only
    grows, so a request is admitted iff it is latency-critical under
    ``critical_bypass`` or its per-lane routed position is below the space
    the lane had when the block started — exactly the per-arrival cap
    decision the scalar loop makes (same closed form as
    ``ArrayBatcher._gate``; see :func:`repro.serving.batcher.admit_prefix`).
    :meth:`begin_block` arms the per-block position counters.
    """

    __slots__ = ("lanes", "t_free", "depth", "capacity", "max_queue",
                 "critical_bypass", "space", "positions")

    def __init__(
        self,
        lanes: Sequence[LaneState],
        max_queue: int | None = None,
        critical_bypass: bool = True,
    ):
        self.lanes = lanes
        self.t_free = [lane.t_free for lane in lanes]
        self.depth = [lane.queue_depth for lane in lanes]
        self.capacity = [lane.reference_capacity_rps for lane in lanes]
        self.max_queue = max_queue
        self.critical_bypass = critical_bypass
        self.space = [0] * len(self.depth)
        self.positions = [0] * len(self.depth)

    def begin_block(self) -> None:
        """Arm per-block admission: free space per lane, positions at zero."""
        if self.max_queue is not None:
            mq = self.max_queue
            depth = self.depth
            space = self.space
            positions = self.positions
            for l in range(len(depth)):
                space[l] = mq - depth[l]
                positions[l] = 0

    def admit(self, lane_indices: list[int], slo_class) -> list[bool]:
        """Apply the prefix admission rule to precomputed assignments.

        Mutates ``depth`` for admitted requests (the within-block queue
        growth later routing decisions must observe) and advances the
        per-lane routed positions.  Unbounded fleets admit everything.
        ``slo_class`` may be ``None`` when the block carries no
        latency-critical requests (every class check would be false).
        """
        depth = self.depth
        if self.max_queue is None:
            if len(lane_indices) >= _VECTOR_BLOCK:
                counts = np.bincount(
                    np.asarray(lane_indices, dtype=np.int64), minlength=len(depth)
                ).tolist()
                for l in range(len(depth)):
                    depth[l] += counts[l]
            else:
                for l in lane_indices:
                    depth[l] += 1
            return [True] * len(lane_indices)
        space = self.space
        positions = self.positions
        out = []
        append = out.append
        if slo_class is None or not self.critical_bypass:
            for l in lane_indices:
                p = positions[l]
                positions[l] = p + 1
                ok = p < space[l]
                if ok:
                    depth[l] += 1
                append(ok)
            return out
        for l, cls in zip(lane_indices, slo_class):
            p = positions[l]
            positions[l] = p + 1
            ok = p < space[l] or cls == LATENCY_CRITICAL
            if ok:
                depth[l] += 1
            append(ok)
        return out


class FleetRouter:
    """Base: maps an arriving request's (difficulty, class) to a lane index."""

    name = "router"

    def route(
        self,
        difficulty: float,
        slo_class: int,
        now_s: float,
        lanes: Sequence[LaneState],
    ) -> int:
        raise NotImplementedError

    def route_block(
        self,
        difficulty: Sequence[float],
        slo_class: Sequence[int],
        arrival: Sequence[float],
        state: BlockLaneState,
    ) -> tuple[list[int], list[bool]]:
        """Route one arrival block: (lane index, admitted) per request.

        Must be decision-for-decision identical to stepping :meth:`route`
        plus the admission check over the block while updating lane depths
        for every admitted push (the property tests assert exactly that).
        Mutates ``state`` (depths, positions, any router cursor).
        """
        raise NotImplementedError

    def rollback(self, count: int) -> None:
        """Undo router-internal state for ``count`` discarded assignments.

        When the caller truncates a routed block (a dispatch landed
        mid-block), the tail assignments are re-routed later and any
        router cursor must rewind.  Stateless routers need nothing.
        """


class RoundRobinRouter(FleetRouter):
    """Cyclic assignment, blind to state, difficulty and class."""

    name = "round_robin"

    def __init__(self):
        self._next = 0

    def route(
        self,
        difficulty: float,
        slo_class: int,
        now_s: float,
        lanes: Sequence[LaneState],
    ) -> int:
        index = self._next % len(lanes)
        self._next += 1
        return index

    def route_block(self, difficulty, slo_class, arrival, state):
        start = self._next
        num = len(state.depth)
        self._next = start + len(arrival)
        assignments = [(start + k) % num for k in range(len(arrival))]
        return assignments, state.admit(assignments, slo_class)

    def rollback(self, count: int) -> None:
        self._next -= count


class LeastBacklogRouter(FleetRouter):
    """Join the lane that will drain its queued work soonest."""

    name = "least_backlog"

    def route(
        self,
        difficulty: float,
        slo_class: int,
        now_s: float,
        lanes: Sequence[LaneState],
    ) -> int:
        return min(lanes, key=lambda lane: (lane.estimated_wait_s(now_s), lane.index)).index

    def route_block(self, difficulty, slo_class, arrival, state):
        t_free = state.t_free
        depth = state.depth
        capacity = state.capacity
        num = len(depth)
        bounded = state.max_queue is not None
        space = state.space
        positions = state.positions
        check_crit = state.critical_bypass and slo_class is not None
        assignments: list[int] = []
        admitted: list[bool] = []
        asg_append = assignments.append
        adm_append = admitted.append
        for m, now in enumerate(arrival):
            # argmin of (wait, lane index): strict < keeps the first minimum,
            # which is the lowest-index lane on ties — same as min(key=...).
            r = t_free[0] - now
            best_w = (r if r > 0.0 else 0.0) + depth[0] / capacity[0]
            best = 0
            for l in range(1, num):
                r = t_free[l] - now
                w = (r if r > 0.0 else 0.0) + depth[l] / capacity[l]
                if w < best_w:
                    best_w = w
                    best = l
            asg_append(best)
            if bounded:
                p = positions[best]
                positions[best] = p + 1
                ok = p < space[best] or (check_crit and slo_class[m] == LATENCY_CRITICAL)
            else:
                ok = True
            if ok:
                depth[best] += 1
            adm_append(ok)
        return assignments, admitted


@dataclass
class _Band:
    """Difficulty band [lo, hi) owned by one lane."""

    lane_index: int
    lo: float
    hi: float


class DifficultyAwareRouter(FleetRouter):
    """Difficulty-banded assignment with a class-aware SLO spill guard.

    Lanes sorted by reference capacity partition the difficulty axis into
    bands proportional to their capacity share — the weakest (and usually
    cheapest) lane owns the easiest band.  When the banded lane's estimated
    wait exceeds ``spill_fraction``·SLO, the request spills to the lane
    with the least estimated wait instead; latency-critical requests use
    half that threshold, so they leave a backlogged band before best-effort
    traffic does.

    Bands are cached per fleet composition: building them sorts the lanes
    by capacity (and reads the — potentially expensive — capacity figures),
    so :meth:`route` only ever does a cache check plus a bisect per call.
    The cache invalidates when the lane set changes (identity-checked, so a
    router can be handed a different fleet and rebuild exactly once).
    """

    name = "difficulty_aware"

    def __init__(self, lanes: Sequence[LaneState], slo_s: float, spill_fraction: float = 0.5):
        if not lanes:
            raise ValueError("difficulty-aware router needs at least one lane")
        self.slo_s = slo_s
        self.spill_fraction = spill_fraction
        self._lane_seq: Sequence[LaneState] | None = None
        self._lane_sig: tuple[int, ...] | None = None
        self._bands: list[_Band] = []
        self._edges: list[float] = []
        self._band_lanes: list[int] = []
        self._edges_arr: np.ndarray | None = None
        self._band_lanes_arr: np.ndarray | None = None
        self._screen_backoff = 0
        self._build_bands(lanes)

    def _build_bands(self, lanes: Sequence[LaneState]) -> None:
        ordered = sorted(
            lanes, key=lambda lane: (lane.reference_capacity_rps, lane.index)
        )
        total = sum(lane.reference_capacity_rps for lane in ordered)
        self._bands = []
        lo = 0.0
        for lane in ordered:
            share = lane.reference_capacity_rps / total if total > 0 else 1.0 / len(ordered)
            self._bands.append(_Band(lane.index, lo, lo + share))
            lo += share
        self._bands[-1].hi = 1.0 + 1e-9  # difficulty == 1.0 lands in the last band
        self._edges = [band.lo for band in self._bands]
        self._band_lanes = [band.lane_index for band in self._bands]
        self._edges_arr = np.asarray(self._edges)
        self._band_lanes_arr = np.asarray(self._band_lanes, dtype=np.int64)
        self._lane_seq = lanes
        self._lane_sig = tuple(id(lane) for lane in lanes)

    def _ensure_bands(self, lanes: Sequence[LaneState]) -> None:
        """Revalidate the band cache against ``lanes`` (O(1) steady-state).

        The common case — the same lane sequence object every call — is an
        identity check.  A different sequence triggers a membership-identity
        comparison and rebuilds only when the lane set actually changed.
        """
        if lanes is self._lane_seq:
            return
        sig = tuple(id(lane) for lane in lanes)
        if sig != self._lane_sig:
            self._build_bands(lanes)
        else:
            self._lane_seq = lanes

    def banded_lane(self, difficulty: float) -> int:
        """The lane whose band contains ``difficulty`` (no spill logic)."""
        # bisect over the band lower edges == the linear [lo, hi) scan,
        # including the "past the last band" fallback.
        slot = bisect_right(self._edges, difficulty) - 1
        if slot < 0:
            slot = len(self._band_lanes) - 1  # difficulty below 0: old fallback
        return self._band_lanes[slot]

    def route(
        self,
        difficulty: float,
        slo_class: int,
        now_s: float,
        lanes: Sequence[LaneState],
    ) -> int:
        self._ensure_bands(lanes)
        chosen = self.banded_lane(difficulty)
        threshold = self.spill_fraction * self.slo_s
        if slo_class == LATENCY_CRITICAL:
            threshold *= 0.5  # criticals abandon a backlogged band early
        if lanes[chosen].estimated_wait_s(now_s) > threshold:
            spill = min(
                lanes, key=lambda lane: (lane.estimated_wait_s(now_s), lane.index)
            )
            return spill.index
        return chosen

    def route_block(self, difficulty, slo_class, arrival, state):
        self._ensure_bands(state.lanes)
        t_free = state.t_free
        depth = state.depth
        capacity = state.capacity
        num = len(depth)
        size = len(arrival)
        threshold_be = self.spill_fraction * self.slo_s
        has_critical = slo_class is not None and LATENCY_CRITICAL in slo_class
        # The tightest spill threshold any request in this block could use.
        min_threshold = threshold_be * 0.5 if has_critical else threshold_be

        # Conservative no-spill screen: within the block a lane's wait is at
        # most its residual at the block head plus its fully-grown queue, so
        # if every lane's bound clears the tightest threshold, no request
        # can spill and the whole block is a pure band lookup.  Under
        # sustained backlog the screen fails every block, so a miss backs it
        # off (the screen is an upper-bound shortcut either way — skipping
        # it never changes the routing, only the cost of deciding it).
        if self._screen_backoff > 0:
            self._screen_backoff -= 1
            spill_free = False
        else:
            first = arrival[0]
            spill_free = True
            for l in range(num):
                r = t_free[l] - first
                bound = (r if r > 0.0 else 0.0) + (depth[l] + size) / capacity[l]
                if bound > min_threshold:
                    spill_free = False
                    self._screen_backoff = 32
                    break
        if spill_free:
            edges = self._edges
            band_lanes = self._band_lanes
            if size >= _VECTOR_BLOCK:
                slots = np.searchsorted(
                    self._edges_arr, np.asarray(difficulty), side="right"
                ) - 1
                # Negative slot (difficulty below every edge) falls back to
                # the last band, matching :meth:`banded_lane`.
                assignments = self._band_lanes_arr[slots].tolist()
            else:
                assignments = [
                    band_lanes[bisect_right(edges, d) - 1] for d in difficulty
                ]
            return assignments, state.admit(assignments, slo_class)

        # Spill reachable: per-request stepping (identical to scalar route).
        edges = self._edges
        band_lanes = self._band_lanes
        bounded = state.max_queue is not None
        space = state.space
        positions = state.positions
        bypass = state.critical_bypass
        assignments = []
        admitted = []
        asg_append = assignments.append
        adm_append = admitted.append
        if not has_critical and not bounded:
            # Hot path: one threshold, everything admitted.
            for m, now in enumerate(arrival):
                chosen = band_lanes[bisect_right(edges, difficulty[m]) - 1]
                r = t_free[chosen] - now
                w = (r if r > 0.0 else 0.0) + depth[chosen] / capacity[chosen]
                if w > threshold_be:
                    r = t_free[0] - now
                    best_w = (r if r > 0.0 else 0.0) + depth[0] / capacity[0]
                    best = 0
                    for l in range(1, num):
                        r = t_free[l] - now
                        w = (r if r > 0.0 else 0.0) + depth[l] / capacity[l]
                        if w < best_w:
                            best_w = w
                            best = l
                    chosen = best
                asg_append(chosen)
                depth[chosen] += 1
                adm_append(True)
            return assignments, admitted
        for m, now in enumerate(arrival):
            chosen = band_lanes[bisect_right(edges, difficulty[m]) - 1]
            critical = has_critical and slo_class[m] == LATENCY_CRITICAL
            threshold = threshold_be * 0.5 if critical else threshold_be
            r = t_free[chosen] - now
            w = (r if r > 0.0 else 0.0) + depth[chosen] / capacity[chosen]
            if w > threshold:
                r = t_free[0] - now
                best_w = (r if r > 0.0 else 0.0) + depth[0] / capacity[0]
                best = 0
                for l in range(1, num):
                    r = t_free[l] - now
                    w = (r if r > 0.0 else 0.0) + depth[l] / capacity[l]
                    if w < best_w:
                        best_w = w
                        best = l
                chosen = best
            asg_append(chosen)
            if bounded:
                p = positions[chosen]
                positions[chosen] = p + 1
                ok = p < space[chosen] or (bypass and critical)
            else:
                ok = True
            if ok:
                depth[chosen] += 1
            adm_append(ok)
        return assignments, admitted


def make_router(name: str, lanes: Sequence[LaneState], slo_s: float) -> FleetRouter:
    """Build a router by name (the CLI/bench entry point)."""
    if name == "round_robin":
        return RoundRobinRouter()
    if name == "least_backlog":
        return LeastBacklogRouter()
    if name == "difficulty_aware":
        return DifficultyAwareRouter(lanes, slo_s)
    raise ValueError(f"unknown router {name!r}; expected one of {ROUTER_NAMES}")
