"""Miniature once-for-all supernet (the pretrained-backbone infrastructure).

HADAS "leverages the existing infrastructure of pretrained supernets" —
training and search are disjoint: the supernet is trained once, then subnets
are *sampled* (weight-sharing slices) with no further backbone training.
This package reproduces that mechanism at a scale numpy can train in seconds:

* :class:`~repro.supernet.supernet.MiniSupernet` holds maximum-size weights
  and activates any :class:`~repro.arch.config.BackboneConfig` of its space
  by slicing channels/depth at forward time;
* :func:`~repro.supernet.pretrain.pretrain_supernet` runs the
  sandwich-sampling pretraining loop;
* subnet forward passes expose per-MBConv-layer feature taps — the hook
  points where exits attach.
"""

from repro.supernet.pretrain import PretrainResult, pretrain_supernet
from repro.supernet.supernet import MiniSupernet, SubnetOutput

__all__ = ["MiniSupernet", "SubnetOutput", "pretrain_supernet", "PretrainResult"]
