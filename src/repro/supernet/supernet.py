"""Weight-sharing supernet over a miniature backbone space.

Every layer stores maximum-size parameters; activating a subnet slices the
leading channels (and the stage's leading layers) at forward time.  Slicing
goes through :meth:`Tensor.__getitem__`, so gradients flow back into the
shared parameters — the defining property of once-for-all training.

Batch normalisation uses batch statistics in both modes by default
(``bn_batch_stats=True``): running statistics are ill-defined when channel
counts change per step, and real OFA deployments re-calibrate BN per subnet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import BackboneConfig
from repro.arch.space import BackboneSpace
from repro.nn import functional as F
from repro.nn import init
from repro.nn.layers import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import child_rng


@dataclass
class SubnetOutput:
    """Forward result of an activated subnet.

    ``taps[i]`` is the feature map after MBConv layer ``i+1`` (1-based layer
    numbering matches the paper's exit positions).
    """

    logits: Tensor
    taps: list[Tensor]
    tap_channels: list[int]


class _SlicedConv(Module):
    """Conv2d whose in/out channels are sliced at forward time."""

    def __init__(self, max_in: int, max_out: int, kernel: int, stride: int,
                 groups_dw: bool, rng: np.random.Generator):
        super().__init__()
        self.max_in = max_in
        self.max_out = max_out
        self.kernel = kernel
        self.stride = stride
        self.groups_dw = groups_dw  # depthwise: groups == channels
        in_per_group = 1 if groups_dw else max_in
        self.weight = Tensor(
            init.kaiming_normal(rng, (max_out, in_per_group, kernel, kernel)),
            requires_grad=True,
        )

    def _kernel_slice(self, weight: Tensor, kernel: int) -> Tensor:
        """OFA-style centre slice: a 3x3 subnet kernel trains the inner 3x3
        of the shared 5x5 weights."""
        if kernel == self.kernel:
            return weight
        if kernel > self.kernel or (self.kernel - kernel) % 2:
            raise ValueError(
                f"cannot slice kernel {kernel} from shared kernel {self.kernel}"
            )
        offset = (self.kernel - kernel) // 2
        return weight[:, :, offset : offset + kernel, offset : offset + kernel]

    def forward(self, x: Tensor, in_ch: int, out_ch: int, kernel: int | None = None) -> Tensor:
        kernel = kernel or self.kernel
        if self.groups_dw:
            if in_ch != out_ch:
                raise ValueError("depthwise slice requires in_ch == out_ch")
            weight = self._kernel_slice(self.weight[:out_ch], kernel)
            return F.conv2d(x, weight, stride=self.stride,
                            padding=kernel // 2, groups=out_ch)
        weight = self._kernel_slice(self.weight[:out_ch, :in_ch], kernel)
        return F.conv2d(x, weight, stride=self.stride, padding=kernel // 2)


class _SlicedBN(Module):
    """Batch norm over a channel slice (batch statistics by default)."""

    def __init__(self, max_ch: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = Tensor(np.ones(max_ch), requires_grad=True)
        self.bias = Tensor(np.zeros(max_ch), requires_grad=True)

    def forward(self, x: Tensor, ch: int) -> Tensor:
        mean = x.mean(axis=(0, 2, 3), keepdims=True)
        var = x.var(axis=(0, 2, 3), keepdims=True)
        normalised = (x - mean) * ((var + self.eps) ** -0.5)
        scale = self.weight[:ch].reshape(1, ch, 1, 1)
        shift = self.bias[:ch].reshape(1, ch, 1, 1)
        return normalised * scale + shift


class _MBConvSuper(Module):
    """One weight-shared MBConv layer (expand -> depthwise -> project)."""

    def __init__(self, max_in: int, max_out: int, max_expand: int, kernel: int,
                 stride: int, rng: np.random.Generator):
        super().__init__()
        self.max_in = max_in
        self.max_out = max_out
        self.max_mid = max_in * max_expand
        self.stride = stride
        self.expand_conv = _SlicedConv(max_in, self.max_mid, 1, 1, False, rng)
        self.expand_bn = _SlicedBN(self.max_mid)
        self.dw_conv = _SlicedConv(self.max_mid, self.max_mid, kernel, stride, True, rng)
        self.dw_bn = _SlicedBN(self.max_mid)
        self.project_conv = _SlicedConv(self.max_mid, max_out, 1, 1, False, rng)
        self.project_bn = _SlicedBN(max_out)

    def forward(
        self, x: Tensor, in_ch: int, out_ch: int, expand: int, kernel: int | None = None
    ) -> Tensor:
        mid = in_ch * expand
        if mid > self.max_mid:
            raise ValueError(f"expand slice {mid} exceeds max {self.max_mid}")
        h = x
        if expand > 1:
            h = self.expand_conv(h, in_ch, mid)
            h = self.expand_bn(h, mid).swish()
        h = self.dw_conv(h, mid, mid, kernel=kernel)
        h = self.dw_bn(h, mid).swish()
        h = self.project_conv(h, mid, out_ch)
        h = self.project_bn(h, out_ch)
        if self.stride == 1 and in_ch == out_ch:
            h = h + x  # residual
        return h


class MiniSupernet(Module):
    """The weight-sharing supernet for a (miniature) backbone space."""

    def __init__(self, space: BackboneSpace, seed: int = 0):
        super().__init__()
        self.space = space
        self.num_classes = space.num_classes
        rng = child_rng(seed, "supernet")

        max_stem = max(space.stem_widths)
        self.stem_conv = _SlicedConv(3, max_stem, 3, 2, False, rng)
        self.stem_bn = _SlicedBN(max_stem)

        self.stage_blocks: list[list[_MBConvSuper]] = []
        prev_max = max_stem
        for choices in space.stages:
            max_w = max(choices.widths)
            max_d = max(choices.depths)
            max_e = max(choices.expands)
            max_k = max(choices.kernels)
            blocks = []
            stride = _stage_stride(len(self.stage_blocks))
            for layer_idx in range(max_d):
                in_w = prev_max if layer_idx == 0 else max_w
                layer_stride = stride if layer_idx == 0 else 1
                blocks.append(_MBConvSuper(in_w, max_w, max_e, max_k, layer_stride, rng))
            self.stage_blocks.append(blocks)
            prev_max = max_w

        max_head = max(space.head_widths)
        self.head_conv = _SlicedConv(prev_max, max_head, 1, 1, False, rng)
        self.head_bn = _SlicedBN(max_head)
        self.classifier_weight = Tensor(
            init.xavier_uniform(rng, (space.num_classes, max_head)), requires_grad=True
        )
        self.classifier_bias = Tensor(np.zeros(space.num_classes), requires_grad=True)

    def forward(self, x: Tensor, config: BackboneConfig) -> SubnetOutput:
        """Run the subnet selected by ``config``, returning logits + taps."""
        h = self.stem_conv(x, 3, config.stem_width)
        h = self.stem_bn(h, config.stem_width).swish()
        channels = config.stem_width
        taps: list[Tensor] = []
        tap_channels: list[int] = []
        for blocks, stage in zip(self.stage_blocks, config.stages):
            if stage.depth > len(blocks):
                raise ValueError(
                    f"config depth {stage.depth} exceeds supernet max {len(blocks)}"
                )
            for layer_idx in range(stage.depth):
                h = blocks[layer_idx](h, channels, stage.width, stage.expand,
                                      kernel=stage.kernel)
                channels = stage.width
                taps.append(h)
                tap_channels.append(channels)
        h = self.head_conv(h, channels, config.head_width)
        h = self.head_bn(h, config.head_width).swish()
        pooled = F.global_avg_pool2d(h)
        logits = pooled @ self.classifier_weight.transpose() + self.classifier_bias
        return SubnetOutput(logits=logits, taps=taps, tap_channels=tap_channels)


def _stage_stride(stage_index: int) -> int:
    from repro.arch.config import STAGE_STRIDES

    return STAGE_STRIDES[stage_index]
