"""Supernet pretraining with sandwich sampling.

AttentiveNAS-style supernets are trained by optimising, at every step, the
smallest subnet, the largest subnet, and a few random ones — so every slice
of the shared weights gets gradient signal.  We reproduce that loop (without
the attentive re-weighting of sampled subnets, which needs a performance
predictor the miniature setting doesn't warrant — noted in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.space import BackboneSpace
from repro.nn.dataloader import DataLoader
from repro.nn.losses import accuracy, cross_entropy
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad
from repro.supernet.supernet import MiniSupernet
from repro.utils.rng import child_rng


@dataclass
class PretrainResult:
    """Training trace of a supernet pretraining run."""

    steps: int
    losses: list[float] = field(default_factory=list)
    final_loss: float = 0.0
    min_subnet_accuracy: float = 0.0
    max_subnet_accuracy: float = 0.0


def pretrain_supernet(
    supernet: MiniSupernet,
    images: np.ndarray,
    labels: np.ndarray,
    steps: int = 60,
    batch_size: int = 32,
    lr: float = 2e-3,
    random_subnets_per_step: int = 1,
    seed: int = 0,
) -> PretrainResult:
    """Sandwich-sample pretraining loop; returns the loss trace.

    Each step draws one batch and accumulates gradients from the smallest
    subnet, the largest subnet, and ``random_subnets_per_step`` random ones
    before a single optimiser update.
    """
    space: BackboneSpace = supernet.space
    rng = child_rng(seed, "pretrain")
    loader = DataLoader(images, labels, batch_size=batch_size, shuffle=True,
                        rng=child_rng(seed, "pretrain-loader"))
    optimizer = Adam(supernet.parameters(), lr=lr)
    result = PretrainResult(steps=steps)

    min_cfg = space.decode(space.min_genome())
    max_cfg = space.decode(space.max_genome())

    batches = iter(loader)
    for _ in range(steps):
        try:
            batch_x, batch_y = next(batches)
        except StopIteration:
            batches = iter(loader)
            batch_x, batch_y = next(batches)
        x = Tensor(batch_x)
        configs = [min_cfg, max_cfg] + [
            space.sample(rng) for _ in range(random_subnets_per_step)
        ]
        optimizer.zero_grad()
        step_loss = 0.0
        for config in configs:
            out = supernet(x, config)
            loss = cross_entropy(out.logits, batch_y)
            loss.backward()
            step_loss += loss.item()
        optimizer.step()
        result.losses.append(step_loss / len(configs))

    result.final_loss = result.losses[-1] if result.losses else float("nan")
    eval_x, eval_y = images[:256], labels[:256]
    with no_grad():
        result.min_subnet_accuracy = accuracy(
            supernet(Tensor(eval_x), min_cfg).logits, eval_y
        )
        result.max_subnet_accuracy = accuracy(
            supernet(Tensor(eval_x), max_cfg).logits, eval_y
        )
    return result
