"""Backbone static-accuracy surrogate.

Accuracy is modelled as a saturating function of a capacity score — a convex
combination of normalised log-MACs, input resolution, total depth and mean
expand ratio — plus a small balance penalty (very deep-but-narrow or
wide-but-shallow networks underperform at equal MACs) and a seeded
per-architecture residual.  The two free scale parameters are solved exactly
from the a0/a6 anchors, so the surrogate reproduces the paper's endpoints by
construction and interpolates the rest of the space smoothly.

The search algorithms consume only the induced *ranking landscape*; shape
fidelity (monotone-with-saturation, realistic spread, mild non-additivity,
noise) is what matters, not per-architecture ground truth (DESIGN.md §1).
"""

from __future__ import annotations

import math

import numpy as np

from repro.accuracy.calibration import DEFAULT_ANCHORS, CalibrationAnchors
from repro.arch.config import BackboneConfig
from repro.arch.cost import estimate_cost
from repro.arch.space import BackboneSpace
from repro.baselines.attentivenas import attentivenas_model
from repro.utils.rng import child_rng

#: Capacity-score feature weights (log-MACs dominates, as in NAS predictors).
_W_MACS, _W_RES, _W_DEPTH, _W_EXPAND = 0.55, 0.15, 0.15, 0.15

#: Saturation rate of the accuracy-vs-capacity curve.
_SATURATION_K = 3.0

#: Weight of the depth/width balance penalty (accuracy points).
_BALANCE_PENALTY = 0.35

#: Std-dev of the per-architecture residual (accuracy points).
_NOISE_STD = 0.18


class AccuracySurrogate:
    """Deterministic accuracy model over a backbone space.

    Parameters
    ----------
    space:
        The backbone space (used to normalise features to [0, 1]).
    anchors:
        Published accuracies pinning the output scale.
    seed:
        Seed of the per-architecture residual stream.
    """

    def __init__(
        self,
        space: BackboneSpace | None = None,
        anchors: CalibrationAnchors = DEFAULT_ANCHORS,
        seed: int = 0,
    ):
        self.space = space or BackboneSpace()
        self.anchors = anchors
        self.seed = seed
        self._bounds = self._feature_bounds()
        self._c0, self._c1 = self._solve_scale()

    # ------------------------------------------------------------- features
    def _raw_features(self, config: BackboneConfig) -> np.ndarray:
        cost = estimate_cost(config)
        log_macs = math.log10(max(cost.total_macs, 1.0))
        depth = float(config.total_mbconv_layers)
        res = float(config.resolution)
        expand = float(np.mean([s.expand for s in config.stages]))
        return np.asarray([log_macs, res, depth, expand])

    def _feature_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        lo = self._raw_features(self.space.decode(self.space.min_genome()))
        hi = self._raw_features(self.space.decode(self.space.max_genome()))
        span = np.where(hi - lo <= 0, 1.0, hi - lo)
        return lo, span

    def capacity_score(self, config: BackboneConfig) -> float:
        """Normalised capacity in [0, 1] (clipped for off-space configs)."""
        lo, span = self._bounds
        feats = np.clip((self._raw_features(config) - lo) / span, 0.0, 1.0)
        weights = np.asarray([_W_MACS, _W_RES, _W_DEPTH, _W_EXPAND])
        return float(weights @ feats)

    def _balance_penalty(self, config: BackboneConfig) -> float:
        lo, span = self._bounds
        feats = np.clip((self._raw_features(config) - lo) / span, 0.0, 1.0)
        depth_norm = feats[2]
        width_norm = feats[0]  # log-MACs tracks width closely at fixed depth
        return _BALANCE_PENALTY * abs(depth_norm - width_norm)

    @staticmethod
    def _saturating(z: float) -> float:
        return (1.0 - math.exp(-_SATURATION_K * z)) / (1.0 - math.exp(-_SATURATION_K))

    def _solve_scale(self) -> tuple[float, float]:
        """Fit acc = c0 + c1 * g(z) exactly through the a0/a6 anchors."""
        a0 = attentivenas_model("a0", num_classes=self.space.num_classes)
        a6 = attentivenas_model("a6", num_classes=self.space.num_classes)
        g0 = self._saturating(self.capacity_score(a0))
        g6 = self._saturating(self.capacity_score(a6))
        if abs(g6 - g0) < 1e-9:
            raise RuntimeError("anchor architectures have identical capacity scores")
        target0 = self.anchors.a0_accuracy + self._balance_penalty(a0)
        target6 = self.anchors.a6_accuracy + self._balance_penalty(a6)
        c1 = (target6 - target0) / (g6 - g0)
        c0 = target0 - c1 * g0
        return c0, c1

    # ------------------------------------------------------------ interface
    def noiseless_accuracy(self, config: BackboneConfig) -> float:
        """Accuracy (%) without the per-architecture residual."""
        g = self._saturating(self.capacity_score(config))
        return self._c0 + self._c1 * g - self._balance_penalty(config)

    def accuracy(self, config: BackboneConfig) -> float:
        """Predicted CIFAR-100 top-1 accuracy (%), deterministic per config."""
        rng = child_rng(self.seed, "acc-noise", config.key)
        noise = float(np.clip(rng.normal(0.0, _NOISE_STD), -2 * _NOISE_STD, 2 * _NOISE_STD))
        return float(np.clip(self.noiseless_accuracy(config) + noise, 1.0, 99.5))

    def accuracy_fraction(self, config: BackboneConfig) -> float:
        """Accuracy as a fraction in [0, 1] (what the exit oracle consumes)."""
        return self.accuracy(config) / 100.0
