"""Accuracy surrogates for CIFAR-100-scale evaluation.

The paper fine-tunes the AttentiveNAS supernet on CIFAR-100 and trains exit
heads on a 32-GPU cluster; neither is available offline.  These surrogates
replace them (DESIGN.md §1):

* :class:`~repro.accuracy.surrogate.AccuracySurrogate` — backbone static
  accuracy as a calibrated, saturating function of architecture capacity,
  anchored to the paper's published a0/a6 accuracies (Table III), with
  seeded per-architecture residuals;
* :class:`~repro.accuracy.exit_model.BackboneExitOracle` — per-exit
  correctness columns from a sample-difficulty model, giving every N_i,
  ideal-mapping usage fraction and union (dynamic) accuracy the IOE needs.
"""

from repro.accuracy.calibration import CalibrationAnchors, DEFAULT_ANCHORS
from repro.accuracy.exit_model import BackboneExitOracle, ExitCapabilityModel
from repro.accuracy.surrogate import AccuracySurrogate

__all__ = [
    "AccuracySurrogate",
    "ExitCapabilityModel",
    "BackboneExitOracle",
    "CalibrationAnchors",
    "DEFAULT_ANCHORS",
]
