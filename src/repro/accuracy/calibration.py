"""Calibration anchors tying the surrogates to the paper's published numbers.

Paper Table III (CIFAR-100, TX2 Pascal GPU) reports for the AttentiveNAS
baselines:

=====  ============  ========  =======================
model  baseline acc  EEx acc   baseline energy (mJ)
=====  ============  ========  =======================
a0     86.33 %       89.95 %   173.78
a6     88.23 %       93.02 %   335.48
=====  ============  ========  =======================

The accuracy surrogate interpolates/extrapolates between the a0 and a6
anchors along a saturating capacity curve; the exit oracle is tuned so the
union (EEx) accuracy gains land in the paper's 3–6 point range.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CalibrationAnchors:
    """Published numbers used to pin the surrogate scales."""

    a0_accuracy: float = 86.33
    a6_accuracy: float = 88.23
    a0_energy_mj: float = 173.78
    a6_energy_mj: float = 335.48
    a0_eex_accuracy: float = 89.95
    a6_eex_accuracy: float = 93.02


DEFAULT_ANCHORS = CalibrationAnchors()
