"""Exit-capability oracle: per-exit correctness without GPU training.

Model (DESIGN.md §1): every sample carries a Beta-distributed difficulty; a
head at relative depth ``u`` with capability ``cap`` classifies correctly the
``cap`` fraction of samples with the lowest *perceived* difficulty

    score_n(u) = difficulty_n - eta_n(u)

where ``eta_n`` is a per-sample smooth Gaussian-process perturbation over
depth.  The GP is the load-bearing choice: heads at *nearby* depths see
almost identical perturbations (their errors are highly correlated — an
exit adjacent to another is redundant), while heads far apart decorrelate
(a spread of exits catches samples the final classifier misses).  This is
precisely the behaviour the paper's dissimilarity regulariser (eq. 7)
exploits: clustered exits waste branches without extending coverage.

Capability grows with depth as ``cap(u) = acc * head_quality * maturity(u)``
with saturating maturity — diminishing returns per extra layer.  Marginals
are exact (an exit of capability c classifies exactly a fraction c), so the
oracle's N_i and final accuracy line up with the accuracy surrogate.

A :class:`BackboneExitOracle` caches one correctness column per position, so
the inner engine's thousands of placement evaluations per backbone reuse the
same columns — and exits at the same position are identical across
placements, which keeps the dissimilarity signal consistent.

With a persistent :class:`~repro.engine.cache.ResultCache` attached, columns
are additionally content-addressed on disk (namespace ``oracle``, bit-packed
JSON).  Columns depend only on the *accuracy side* of the problem —
(backbone key, backbone accuracy, capability model, difficulty distribution,
sample count, seed) — and **not** on the platform or its DVFS grid, so a
re-search where only the hardware side changed (a trimmed DVFS grid, a new
platform) warm-starts every oracle from cached columns instead of
regenerating the Monte-Carlo population.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.data.difficulty import DifficultyDistribution
from repro.exits.evaluation import ExitEvaluation, ideal_mapping_stats
from repro.exits.placement import ExitPlacement
from repro.utils.rng import child_rng
from repro.utils.validation import check_positive, check_probability

if TYPE_CHECKING:  # imported lazily at runtime; keeps accuracy/ engine-free
    from repro.engine.cache import ResultCache

#: Bump when column semantics change; orphans persisted oracle columns.
ORACLE_COLUMN_VERSION = "1"


@dataclass(frozen=True)
class ExitCapabilityModel:
    """Parameters of the capability model.

    Attributes
    ----------
    maturity_k:
        Saturation rate of feature maturity vs relative depth.
    head_quality:
        Capability of the fixed exit head relative to the full final head.
    idiosyncratic_sigma:
        Std-dev of the per-(depth, sample) GP perturbation in difficulty
        units; controls how much *spread* exits can extend coverage (the
        union/EEx accuracy gain).
    correlation_length:
        Length scale (in relative depth) of the GP: heads closer than this
        are nearly redundant.
    """

    maturity_k: float = 2.5
    head_quality: float = 0.965
    idiosyncratic_sigma: float = 0.18
    correlation_length: float = 0.18
    num_basis: int = 9

    def __post_init__(self):
        check_positive("maturity_k", self.maturity_k)
        check_probability("head_quality", self.head_quality)
        check_positive("idiosyncratic_sigma", self.idiosyncratic_sigma)
        check_positive("correlation_length", self.correlation_length)
        check_positive("num_basis", self.num_basis)

    def maturity(self, u: float | np.ndarray) -> float | np.ndarray:
        """Feature maturity at relative depth ``u`` in (0, 1]."""
        return (1.0 - np.exp(-self.maturity_k * np.asarray(u))) / (
            1.0 - math.exp(-self.maturity_k)
        )

    def capability(self, backbone_accuracy: float, u: float | np.ndarray):
        """Marginal correct fraction a head at depth ``u`` can reach."""
        check_probability("backbone_accuracy", backbone_accuracy)
        return backbone_accuracy * self.head_quality * self.maturity(u)

    def basis(self, u: float) -> np.ndarray:
        """Unit-norm RBF feature vector of depth ``u`` (GP weights)."""
        centers = np.linspace(0.0, 1.0, self.num_basis)
        phi = np.exp(-((u - centers) ** 2) / (2.0 * self.correlation_length**2))
        return phi / np.linalg.norm(phi)

    def head_correlation(self, u1: float, u2: float) -> float:
        """Error-perturbation correlation between heads at two depths."""
        return float(self.basis(u1) @ self.basis(u2))


class BackboneExitOracle:
    """Per-backbone cache of simulated exit-correctness columns.

    Parameters
    ----------
    backbone_key:
        Stable identity of the backbone (keys the random streams).
    total_layers:
        Σ l_i of the backbone — defines relative depths.
    backbone_accuracy:
        Static accuracy fraction from the accuracy surrogate.
    model, difficulty:
        Capability model and sample-difficulty distribution.
    n_samples:
        Monte-Carlo population size (2048 keeps N_i std below 1 point).
    cache:
        Optional persistent :class:`~repro.engine.cache.ResultCache`;
        columns are stored bit-packed under the platform-independent
        ``oracle`` namespace, warm-starting re-searches where only the
        hardware side (DVFS grid, platform) changed.
    """

    def __init__(
        self,
        backbone_key: str,
        total_layers: int,
        backbone_accuracy: float,
        model: ExitCapabilityModel | None = None,
        difficulty: DifficultyDistribution | None = None,
        n_samples: int = 2048,
        seed: int = 0,
        cache: "ResultCache | None" = None,
    ):
        check_probability("backbone_accuracy", backbone_accuracy)
        check_positive("n_samples", n_samples)
        self.backbone_key = backbone_key
        self.total_layers = total_layers
        self.backbone_accuracy = backbone_accuracy
        self.model = model or ExitCapabilityModel()
        self.difficulty = difficulty or DifficultyDistribution()
        self.n_samples = n_samples
        self.seed = seed
        self.cache = cache
        rng = child_rng(seed, "difficulties", backbone_key)
        self._difficulties = self.difficulty.sample(n_samples, rng)
        gp_rng = child_rng(seed, "exit-gp", backbone_key)
        self._latent = gp_rng.normal(0.0, 1.0, size=(n_samples, self.model.num_basis))
        self._columns: dict[int | str, np.ndarray] = {}

    def _perturbation(self, u: float) -> np.ndarray:
        """Per-sample GP perturbation at relative depth ``u``."""
        weights = self.model.basis(u)
        return (self._latent @ weights) * self.model.idiosyncratic_sigma

    def _column_key(self, key: int | str):
        """Content address of one column: accuracy-side fields only.

        Deliberately excludes anything hardware-side, which is what makes
        DVFS-grid-only changes warm-start from cached columns.
        """
        return self.cache.key(
            "oracle",
            evaluator_version=ORACLE_COLUMN_VERSION,
            backbone=self.backbone_key,
            layers=self.total_layers,
            accuracy=self.backbone_accuracy,
            model=self.model,
            difficulty=self.difficulty,
            samples=self.n_samples,
            seed=self.seed,
            column=str(key),
        )

    def _column(self, key: int | str, capability: float, u: float) -> np.ndarray:
        if key in self._columns:
            return self._columns[key]
        cache_key = self._column_key(key) if self.cache is not None else None
        if cache_key is not None:
            stored = self.cache.get(cache_key)
            if stored is not None:
                column = np.unpackbits(
                    np.asarray(stored["bits"], dtype=np.uint8), count=self.n_samples
                ).astype(bool)
                self._columns[key] = column
                return column
        # The head ranks samples by perceived difficulty and classifies
        # exactly its capability fraction: marginals are exact while the GP
        # keeps correctness strongly correlated between nearby depths.
        score = self._difficulties - self._perturbation(u)
        n_correct = int(round(np.clip(capability, 0.0, 1.0) * self.n_samples))
        column = np.zeros(self.n_samples, dtype=bool)
        if n_correct > 0:
            easiest = np.argpartition(score, max(n_correct - 1, 0))[:n_correct]
            column[easiest] = True
        if cache_key is not None:
            # Bit-packed + plain ints keeps the entry a small JSON file
            # (~n/8 bytes) rather than a pickle of the bool array.
            self.cache.put(cache_key, {"bits": np.packbits(column).tolist()})
        self._columns[key] = column
        return column

    def exit_column(self, position: int) -> np.ndarray:
        """Boolean correctness column of an exit at MBConv ``position``."""
        if not 1 <= position <= self.total_layers:
            raise ValueError(f"position {position} outside [1, {self.total_layers}]")
        u = position / self.total_layers
        cap = float(self.model.capability(self.backbone_accuracy, u))
        return self._column(position, cap, u)

    def final_column(self) -> np.ndarray:
        """Boolean correctness column of the backbone's final classifier."""
        return self._column("final", self.backbone_accuracy, 1.0)

    def n_i(self, position: int) -> float:
        """Marginal correct fraction of an exit (the paper's N_i)."""
        return float(self.exit_column(position).mean())

    def evaluate_placement(self, placement: ExitPlacement) -> ExitEvaluation:
        """Ideal-mapping statistics for a full placement."""
        if placement.total_layers != self.total_layers:
            raise ValueError(
                f"placement assumes {placement.total_layers} layers, oracle has "
                f"{self.total_layers}"
            )
        columns = [self.exit_column(p) for p in placement.positions]
        columns.append(self.final_column())
        return ideal_mapping_stats(np.stack(columns, axis=1))
