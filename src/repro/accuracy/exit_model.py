"""Exit-capability oracle: per-exit correctness without GPU training.

Model (DESIGN.md §1): every sample carries a Beta-distributed difficulty; a
head at relative depth ``u`` with capability ``cap`` classifies correctly the
``cap`` fraction of samples with the lowest *perceived* difficulty

    score_n(u) = difficulty_n - eta_n(u)

where ``eta_n`` is a per-sample smooth Gaussian-process perturbation over
depth.  The GP is the load-bearing choice: heads at *nearby* depths see
almost identical perturbations (their errors are highly correlated — an
exit adjacent to another is redundant), while heads far apart decorrelate
(a spread of exits catches samples the final classifier misses).  This is
precisely the behaviour the paper's dissimilarity regulariser (eq. 7)
exploits: clustered exits waste branches without extending coverage.

Capability grows with depth as ``cap(u) = acc * head_quality * maturity(u)``
with saturating maturity — diminishing returns per extra layer.  Marginals
are exact (an exit of capability c classifies exactly a fraction c), so the
oracle's N_i and final accuracy line up with the accuracy surrogate.

A :class:`BackboneExitOracle` caches one correctness column per position, so
the inner engine's thousands of placement evaluations per backbone reuse the
same columns — and exits at the same position are identical across
placements, which keeps the dissimilarity signal consistent.

With a persistent :class:`~repro.engine.cache.ResultCache` attached, columns
are additionally content-addressed on disk (namespace ``oracle``, bit-packed
JSON).  Columns depend only on the *accuracy side* of the problem —
(backbone key, backbone accuracy, capability model, difficulty distribution,
sample count, seed) — and **not** on the platform or its DVFS grid, so a
re-search where only the hardware side changed (a trimmed DVFS grid, a new
platform) warm-starts every oracle from cached columns instead of
regenerating the Monte-Carlo population.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

from repro.data.difficulty import DifficultyDistribution
from repro.exits.evaluation import (
    ExitEvaluation,
    PopulationExitStats,
    ideal_mapping_stats_population,
    stack_exit_evaluations,
)
from repro.exits.placement import ExitPlacement
from repro.obs import trace
from repro.utils.rng import child_rng
from repro.utils.validation import check_positive, check_probability

if TYPE_CHECKING:  # imported lazily at runtime; keeps accuracy/ engine-free
    from repro.engine.cache import ResultCache

#: Bump when column semantics change; orphans persisted oracle columns.
ORACLE_COLUMN_VERSION = "1"

#: Bits set per byte value — the popcount table the packed ideal-mapping
#: statistics use.  Counting set bits is exact integer work, so the packed
#: path reproduces the boolean-matrix statistics bit for bit.
_POPCOUNT = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(
    axis=1, dtype=np.intp
)


def _popcount(packed: np.ndarray) -> int:
    """Number of set bits in a packbits array."""
    return int(_POPCOUNT[packed].sum())


class _LruCache:
    """Bounded mapping with LRU eviction and hit/miss/evict counters.

    The oracle's memo dicts (per-placement statistics, shared-prefix
    states, per-column derivatives) previously grew without limit — fine
    for one search, not for day-long grid sweeps that stream millions of
    distinct placements through one oracle.  Each cache documents its cap
    at the construction site; counters feed ``memo_stats()`` and the
    dynamic-eval bench rollup.
    """

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_data")

    def __init__(self, maxsize: int):
        check_positive("maxsize", maxsize)
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def get(self, key):
        """Counted lookup; refreshes recency on hit, returns None on miss."""
        data = self._data
        value = data.get(key)
        if value is None:
            self.misses += 1
            return None
        data.move_to_end(key)
        self.hits += 1
        return value

    def peek(self, key):
        """Uncounted lookup (no recency refresh) for post-batch gathers."""
        return self._data.get(key)

    def put(self, key, value) -> None:
        data = self._data
        if key in data:
            data[key] = value
            data.move_to_end(key)
            return
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)
            self.evictions += 1

    def put_many(self, items) -> None:
        """Bulk insert of known-fresh keys (batch kernels' hot path).

        Skips the per-key existence check — callers pass keys that just
        missed — and settles the cap once at the end; the evicted set is
        identical to per-key :meth:`put` because every inserted key is
        newer than anything already stored.
        """
        data = self._data
        for key, value in items:
            data[key] = value
        over = len(data) - self.maxsize
        if over > 0:
            for _ in range(over):
                data.popitem(last=False)
            self.evictions += over

    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass(frozen=True)
class ExitCapabilityModel:
    """Parameters of the capability model.

    Attributes
    ----------
    maturity_k:
        Saturation rate of feature maturity vs relative depth.
    head_quality:
        Capability of the fixed exit head relative to the full final head.
    idiosyncratic_sigma:
        Std-dev of the per-(depth, sample) GP perturbation in difficulty
        units; controls how much *spread* exits can extend coverage (the
        union/EEx accuracy gain).
    correlation_length:
        Length scale (in relative depth) of the GP: heads closer than this
        are nearly redundant.
    """

    maturity_k: float = 2.5
    head_quality: float = 0.965
    idiosyncratic_sigma: float = 0.18
    correlation_length: float = 0.18
    num_basis: int = 9

    def __post_init__(self):
        check_positive("maturity_k", self.maturity_k)
        check_probability("head_quality", self.head_quality)
        check_positive("idiosyncratic_sigma", self.idiosyncratic_sigma)
        check_positive("correlation_length", self.correlation_length)
        check_positive("num_basis", self.num_basis)

    def maturity(self, u: float | np.ndarray) -> float | np.ndarray:
        """Feature maturity at relative depth ``u`` in (0, 1]."""
        return (1.0 - np.exp(-self.maturity_k * np.asarray(u))) / (
            1.0 - math.exp(-self.maturity_k)
        )

    def capability(self, backbone_accuracy: float, u: float | np.ndarray):
        """Marginal correct fraction a head at depth ``u`` can reach."""
        check_probability("backbone_accuracy", backbone_accuracy)
        return backbone_accuracy * self.head_quality * self.maturity(u)

    @cached_property
    def _centers(self) -> np.ndarray:
        """RBF centers, computed once — ``basis`` runs thousands of times per
        oracle, and re-allocating the linspace dominated its cost.  (A
        ``cached_property`` writes straight into ``__dict__``, which the
        frozen dataclass permits; cache keys serialise dataclass *fields*
        only, so the cached array never leaks into content addresses.)"""
        return np.linspace(0.0, 1.0, self.num_basis)

    def basis(self, u: float) -> np.ndarray:
        """Unit-norm RBF feature vector of depth ``u`` (GP weights)."""
        phi = np.exp(-((u - self._centers) ** 2) / (2.0 * self.correlation_length**2))
        return phi / np.linalg.norm(phi)

    def basis_matrix(self, us: np.ndarray) -> np.ndarray:
        """Stacked basis vectors; row ``i`` equals ``basis(us[i])`` bit for bit.

        The Gaussian features are one broadcast op; the norms stay per-row
        :func:`np.linalg.norm` calls because a matrix-axis norm reduces in a
        different summation order (ULP drift) — and the rows are few while
        the samples are thousands, so nothing is lost.
        """
        us = np.asarray(us, dtype=float)
        phi = np.exp(
            -((us[:, None] - self._centers[None, :]) ** 2)
            / (2.0 * self.correlation_length**2)
        )
        norms = np.fromiter(
            (np.linalg.norm(row) for row in phi), dtype=np.float64, count=len(phi)
        )
        return phi / norms[:, None]

    def head_correlation(self, u1: float, u2: float) -> float:
        """Error-perturbation correlation between heads at two depths."""
        return float(self.basis(u1) @ self.basis(u2))


class BackboneExitOracle:
    """Per-backbone cache of simulated exit-correctness columns.

    Parameters
    ----------
    backbone_key:
        Stable identity of the backbone (keys the random streams).
    total_layers:
        Σ l_i of the backbone — defines relative depths.
    backbone_accuracy:
        Static accuracy fraction from the accuracy surrogate.
    model, difficulty:
        Capability model and sample-difficulty distribution.
    n_samples:
        Monte-Carlo population size (2048 keeps N_i std below 1 point).
    cache:
        Optional persistent :class:`~repro.engine.cache.ResultCache`;
        columns are stored bit-packed under the platform-independent
        ``oracle`` namespace, warm-starting re-searches where only the
        hardware side (DVFS grid, platform) changed.
    use_batched_stats:
        Evaluate placement batches through the population accuracy kernel
        (stacked bit-packed masking with shared-prefix reuse; the default).
        ``False`` keeps the per-placement popcount loop — the bench's
        "before" comparator and the bit-identity reference; both paths
        produce identical bits.
    stats_memo_size, prefix_cache_size:
        LRU caps of the per-placement :class:`ExitEvaluation` memo and the
        shared-prefix state cache.  The defaults (64 Ki evaluations, 32 Ki
        prefix states — roughly 20 MB at ``n_samples=2048``) cover any
        single search many times over while bounding day-long grid sweeps;
        eviction counts are visible in :meth:`memo_stats`.
    """

    def __init__(
        self,
        backbone_key: str,
        total_layers: int,
        backbone_accuracy: float,
        model: ExitCapabilityModel | None = None,
        difficulty: DifficultyDistribution | None = None,
        n_samples: int = 2048,
        seed: int = 0,
        cache: "ResultCache | None" = None,
        use_batched_stats: bool = True,
        stats_memo_size: int = 65536,
        prefix_cache_size: int = 32768,
    ):
        check_probability("backbone_accuracy", backbone_accuracy)
        check_positive("n_samples", n_samples)
        self.backbone_key = backbone_key
        self.total_layers = total_layers
        self.backbone_accuracy = backbone_accuracy
        self.model = model or ExitCapabilityModel()
        self.difficulty = difficulty or DifficultyDistribution()
        self.n_samples = n_samples
        self.seed = seed
        self.cache = cache
        rng = child_rng(seed, "difficulties", backbone_key)
        self._difficulties = self.difficulty.sample(n_samples, rng)
        gp_rng = child_rng(seed, "exit-gp", backbone_key)
        self._latent = gp_rng.normal(0.0, 1.0, size=(n_samples, self.model.num_basis))
        self.use_batched_stats = use_batched_stats
        self._columns: dict[int | str, np.ndarray] = {}
        # Derived-per-column caches (counts, packed forms) are keyed by exit
        # position, so their population is naturally bounded by
        # ``total_layers + 1`` — the LRU cap is a backstop, and eviction is
        # always safe because entries rebuild from ``_columns``.
        self._counts = _LruCache(max(256, 2 * (total_layers + 1)))
        self._packed = _LruCache(max(256, 2 * (total_layers + 1)))
        self._pert_matrix: np.ndarray | None = None
        self._stats = _LruCache(stats_memo_size)
        self._prefix_cache = _LruCache(prefix_cache_size)
        # Whole-population stacked statistics, keyed by the batch's position
        # tuples; a handful of entries covers a DVFS sweep's repeated
        # batches while staying tiny (the rows alias the ``_stats`` memo).
        self._population_cache = _LruCache(8)
        #: Column-resolution counters (column requests by outcome): how many
        #: landed in memory, warm-started from the persistent cache, or were
        #: built from the Monte-Carlo population.  The dynamic-eval bench
        #: surfaces these so warm-start efficacy is visible in its report.
        self.column_stats: dict[str, int] = {"memory": 0, "disk": 0, "built": 0}

    def _perturbations(self) -> np.ndarray:
        """``(n_samples, total_layers)`` GP perturbations — one matrix op.

        Column ``p - 1`` is the perturbation at relative depth
        ``p / total_layers`` (the final classifier shares the last column,
        u = 1.0).  Built lazily on first use and spanning *every* position,
        so a placement's columns are lookups into one precomputed matrix —
        and each column is a pure function of the oracle (the set of
        positions a placement happens to request cannot change what gets
        computed), so columns are deterministic regardless of access order.

        Each column is the pre-batching formula ``(latent @ basis(u)) *
        sigma`` evaluated with the same per-column gemv (``column_stack``
        of gemvs, not one gemm, whose BLAS accumulation order would drift
        by ULPs) — bit-identical to the pre-batching oracle, so columns
        persisted to disk by older code and freshly computed ones always
        agree.  The stack is built once per oracle; the gemv-vs-gemm cost
        difference is unmeasurable at that frequency.
        """
        if self._pert_matrix is None:
            us = np.arange(1, self.total_layers + 1, dtype=float) / self.total_layers
            weights = self.model.basis_matrix(us)
            self._pert_matrix = np.column_stack(
                [self._latent @ row for row in weights]
            ) * self.model.idiosyncratic_sigma
        return self._pert_matrix

    def _column_key(self, key: int | str):
        """Content address of one column: accuracy-side fields only.

        Deliberately excludes anything hardware-side, which is what makes
        DVFS-grid-only changes warm-start from cached columns.
        """
        return self.cache.key(
            "oracle",
            evaluator_version=ORACLE_COLUMN_VERSION,
            backbone=self.backbone_key,
            layers=self.total_layers,
            accuracy=self.backbone_accuracy,
            model=self.model,
            difficulty=self.difficulty,
            samples=self.n_samples,
            seed=self.seed,
            column=str(key),
        )

    def _column(self, key: int | str, capability: float, position: int) -> np.ndarray:
        if key in self._columns:
            self.column_stats["memory"] += 1
            return self._columns[key]
        cache_key = self._column_key(key) if self.cache is not None else None
        if cache_key is not None:
            stored = self.cache.get(cache_key)
            if stored is not None:
                self.column_stats["disk"] += 1
                column = np.unpackbits(
                    np.asarray(stored["bits"], dtype=np.uint8), count=self.n_samples
                ).astype(bool)
                self._columns[key] = column
                return column
        self.column_stats["built"] += 1
        # The head ranks samples by perceived difficulty and classifies
        # exactly its capability fraction: marginals are exact while the GP
        # keeps correctness strongly correlated between nearby depths.
        score = self._difficulties - self._perturbations()[:, position - 1]
        n_correct = int(round(np.clip(capability, 0.0, 1.0) * self.n_samples))
        column = np.zeros(self.n_samples, dtype=bool)
        if n_correct > 0:
            easiest = np.argpartition(score, max(n_correct - 1, 0))[:n_correct]
            column[easiest] = True
        if cache_key is not None:
            # Bit-packed + plain ints keeps the entry a small JSON file
            # (~n/8 bytes) rather than a pickle of the bool array.
            self.cache.put(cache_key, {"bits": np.packbits(column).tolist()})
        self._columns[key] = column
        return column

    def exit_column(self, position: int) -> np.ndarray:
        """Boolean correctness column of an exit at MBConv ``position``."""
        column = self._columns.get(position)
        if column is not None:  # hot path: skip recomputing the capability
            self.column_stats["memory"] += 1
            return column
        if not 1 <= position <= self.total_layers:
            raise ValueError(f"position {position} outside [1, {self.total_layers}]")
        u = position / self.total_layers
        cap = float(self.model.capability(self.backbone_accuracy, u))
        return self._column(position, cap, position)

    def final_column(self) -> np.ndarray:
        """Boolean correctness column of the backbone's final classifier."""
        return self._column("final", self.backbone_accuracy, self.total_layers)

    def _column_count(self, key: int | str) -> int:
        """Number of correct samples in a materialised column (memoised)."""
        count = self._counts.get(key)
        if count is None:
            count = int(np.count_nonzero(self._columns[key]))
            self._counts.put(key, count)
        return count

    def _packed_column(self, key: int | str) -> np.ndarray:
        """Bit-packed view of a materialised column (memoised).

        The packed form (``n/8`` bytes, zero-padded tail) drives the
        ideal-mapping statistics: bitwise masking plus a popcount replaces
        boolean-matrix reductions at an eighth of the memory traffic.
        """
        packed = self._packed.get(key)
        if packed is None:
            packed = np.packbits(self._columns[key])
            self._packed.put(key, packed)
        return packed

    def n_i(self, position: int) -> float:
        """Marginal correct fraction of an exit (the paper's N_i)."""
        return float(self.exit_column(position).mean())

    def evaluate_placement(self, placement: ExitPlacement) -> ExitEvaluation:
        """Ideal-mapping statistics for a full placement (memoised).

        The statistics are DVFS-independent, so the inner engine's many
        (placement, setting) evaluations of one placement share a single
        :class:`ExitEvaluation` — and with it the cached dissimilarity
        vector.  The frozen instances are safe to share.
        """
        if placement.total_layers != self.total_layers:
            raise ValueError(
                f"placement assumes {placement.total_layers} layers, oracle has "
                f"{self.total_layers}"
            )
        stats = self._stats.get(placement.positions)
        if stats is None:
            stats = self._assemble_stats(placement.positions)
            self._stats.put(placement.positions, stats)
        return stats

    def evaluate_placements(
        self, placements: list[ExitPlacement]
    ) -> list[ExitEvaluation]:
        """Statistics for a whole population (order-preserving).

        The population kernel's accuracy side.  With ``use_batched_stats``
        (the default) every distinct unmemoised placement goes through
        :meth:`_batched_stats` — one stacked pass over the bit-packed
        column matrix with shared-prefix reuse — and only memo reads remain
        per placement.  Bit-identical to calling :meth:`evaluate_placement`
        in a loop (hypothesis-asserted): both produce the same integer
        counts divided by the same ``n``, and duplicates resolve to the
        same memoised instance.  With the flag off this *is* that loop
        (columns warmed up front), retained as the reference comparator.
        """
        for placement in placements:
            if placement.total_layers != self.total_layers:
                raise ValueError(
                    f"placement assumes {placement.total_layers} layers, oracle "
                    f"has {self.total_layers}"
                )
        if not self.use_batched_stats:
            distinct = sorted(
                {p for placement in placements for p in placement.positions}
            )
            for position in distinct:
                self.exit_column(position)
            self.final_column()
            return [self.evaluate_placement(placement) for placement in placements]
        trace.count("oracle.batch_calls")
        trace.count("oracle.batch_rows", len(placements))
        memo = self._stats
        pending: dict[tuple[int, ...], None] = {}
        for placement in placements:
            positions = placement.positions
            if positions not in pending and memo.get(positions) is None:
                pending[positions] = None
        if pending:
            self._batched_stats(list(pending))
        results = []
        for placement in placements:
            stats = memo.peek(placement.positions)
            if stats is None:  # evicted mid-gather: batch larger than the memo cap
                stats = self.evaluate_placement(placement)
            results.append(stats)
        return results

    def population_stats(self, placements: list[ExitPlacement]) -> PopulationExitStats:
        """Stacked accuracy matrices + per-placement evaluations of a batch.

        The fusion surface the dynamic evaluator consumes: one call yields
        the ``(N, E_max)`` accuracy-side matrices aligned with the cost
        kernel's padded layout plus the (memo-shared) per-placement
        evaluations.  Rows are bitwise the per-placement statistics
        regardless of which placements were memoised beforehand.

        The statistics are DVFS-independent, so a population swept across
        many settings (the exhaustive-grid shards, the bench) re-reads one
        stacked instance from a small LRU instead of restacking per
        setting.
        """
        key = tuple(placement.positions for placement in placements)
        stats = self._population_cache.get(key)
        if stats is None:
            stats = stack_exit_evaluations(self.evaluate_placements(placements))
            self._population_cache.put(key, stats)
        return stats

    def _batched_stats(self, pending: list[tuple[int, ...]]) -> None:
        """Evaluate distinct placements in one pass over packed columns.

        The pending placements' distinct *prefixes* form a trie; each node
        carries the packed ``(remaining, union)`` state after its last exit
        plus the take count at that exit.  Nodes are resolved level by
        level as stacked uint8 ops — one ``(nodes, n/8)`` mask/popcount per
        trie depth instead of one per (placement, exit) — so placements
        that overlap in early exits share those levels' work, and the
        cross-batch LRU prefix cache extends the sharing across
        generations (NSGA offspring mostly mutate the *tail* of good
        placements).  Counts equal the scalar sweep's exactly: identical
        byte masks, identical popcount table.
        """
        n = self.n_samples
        distinct = sorted({p for positions in pending for p in positions})
        for position in distinct:
            self.exit_column(position)
        self.final_column()
        final_packed = self._packed_column("final")
        row_of = {position: i for i, position in enumerate(distinct)}
        packed_rows = np.stack([self._packed_column(p) for p in distinct])
        counts_of = np.asarray(
            [self._column_count(p) for p in distinct], dtype=np.int64
        )

        # Intern every distinct prefix as a trie node id: the walk hashes
        # flat ``parent * stride + position`` integers (identity hash)
        # instead of re-sliced prefix tuples, and every downstream gather
        # becomes integer fancy indexing over per-node arrays.
        cache = self._prefix_cache
        cache_get = cache.get
        stride = self.total_layers + 1
        trie: dict[int, int] = {}
        trie_get = trie.get
        node_parent: list[int] = []
        node_row: list[int] = []
        node_prefix: list[tuple[int, ...]] = []
        cached_states: list[tuple | None] = []
        levels: dict[int, list[int]] = {}
        flat_id_list: list[int] = []
        flat_append = flat_id_list.append
        leaf_id_list: list[int] = []
        hits = 0
        for positions in pending:
            parent = -1  # root sentinel: key arithmetic below maps it to 0
            depth = 0
            for position in positions:
                depth += 1
                key = (parent + 1) * stride + position
                node = trie_get(key)
                if node is None:
                    node = len(node_parent)
                    trie[key] = node
                    node_parent.append(parent)
                    node_row.append(row_of[position])
                    prefix = (
                        node_prefix[parent] + (position,) if parent >= 0 else (position,)
                    )
                    node_prefix.append(prefix)
                    state = cache_get(prefix)
                    cached_states.append(state)
                    if state is not None:
                        hits += 1
                    else:
                        levels.setdefault(depth, []).append(node)
                flat_append(node)
                parent = node
            leaf_id_list.append(parent)

        num_nodes = len(node_parent)
        parent_of = np.asarray(node_parent, dtype=np.intp)
        row_arr = np.asarray(node_row, dtype=np.intp)
        width_bytes = packed_rows.shape[1]
        node_remaining = np.empty((num_nodes, width_bytes), dtype=np.uint8)
        node_union = np.empty((num_nodes, width_bytes), dtype=np.uint8)
        node_takes = np.zeros(num_nodes, dtype=np.int64)
        for node, state in enumerate(cached_states):
            if state is not None:
                node_remaining[node] = state[0]
                node_union[node] = state[1]
                node_takes[node] = state[2]
        computed = 0
        for depth in sorted(levels):
            level_nodes = levels[depth]
            nodes = np.asarray(level_nodes, dtype=np.intp)
            packed = packed_rows[row_arr[nodes]]
            if depth == 1:
                remaining = ~packed
                union = packed
                takes = counts_of[row_arr[nodes]]
            else:
                parent_remaining = node_remaining[parent_of[nodes]]
                takes = _POPCOUNT[parent_remaining & packed].sum(axis=1)
                remaining = parent_remaining & ~packed
                union = node_union[parent_of[nodes]] | packed
            node_remaining[nodes] = remaining
            node_union[nodes] = union
            node_takes[nodes] = takes
            cache.put_many(
                (node_prefix[node], state)
                for node, state in zip(
                    level_nodes, zip(remaining, union, takes.tolist())
                )
            )
            computed += len(level_nodes)
        trace.count("oracle.prefix_hits", hits)
        trace.count("oracle.prefix_nodes", computed)

        count = len(pending)
        widths = np.fromiter(
            (len(positions) for positions in pending), dtype=np.intp, count=count
        )
        e_max = int(widths.max())
        flat_ids = np.asarray(flat_id_list, dtype=np.intp)
        total = len(flat_ids)
        rows = np.repeat(np.arange(count), widths)
        cols = np.arange(total) - np.repeat(np.cumsum(widths) - widths, widths)
        take_counts = np.zeros((count, e_max), dtype=np.int64)
        marginal_counts = np.zeros((count, e_max), dtype=np.int64)
        take_counts[rows, cols] = node_takes[flat_ids]
        marginal_counts[rows, cols] = counts_of[row_arr[flat_ids]]
        leaf_ids = np.asarray(leaf_id_list, dtype=np.intp)
        leaf_remaining = node_remaining[leaf_ids]
        leaf_union = node_union[leaf_ids]
        tail_counts = n - _POPCOUNT[~leaf_remaining].sum(axis=1)
        union_counts = _POPCOUNT[leaf_union | final_packed].sum(axis=1)
        population = ideal_mapping_stats_population(
            take_counts=take_counts,
            tail_counts=tail_counts,
            marginal_counts=marginal_counts,
            union_counts=union_counts,
            final_count=self._column_count("final"),
            n_samples=n,
            widths=widths,
        )
        self._stats.put_many(zip(pending, population.evaluations))

    def memo_stats(self) -> dict[str, dict[str, int]]:
        """Hit/miss/evict counters of every bounded oracle cache."""
        return {
            "stats": self._stats.stats(),
            "prefix": self._prefix_cache.stats(),
            "population": self._population_cache.stats(),
            "counts": self._counts.stats(),
            "packed": self._packed.stats(),
        }

    def _assemble_stats(self, positions: tuple[int, ...]) -> ExitEvaluation:
        """Build :class:`ExitEvaluation` from cached columns and counts.

        Equivalent to ``ideal_mapping_stats(np.stack(columns, axis=1))`` bit
        for bit (asserted in the test suite): the masked first-correct-exit
        sweep is the original algorithm run on *bit-packed* columns (bitwise
        AND + popcount instead of boolean-matrix reductions), and marginals
        come from per-column counts cached at column creation.  Every
        fraction is the same integer count divided by the same ``n``.
        """
        num_exits = len(positions)
        n = self.n_samples
        for position in positions:  # materialise columns before packing
            self.exit_column(position)
        self.final_column()
        usage = np.zeros(num_exits + 1)
        remaining = None  # samples no earlier exit has taken (packed)
        union = None  # samples some exit classifies (packed)
        for i, position in enumerate(positions):
            packed = self._packed_column(position)
            if remaining is None:
                takes = packed
                remaining = ~packed
                union = packed
            else:
                takes = remaining & packed
                remaining &= ~packed
                union = union | packed
            usage[i] = _popcount(takes) / n
        usage[-1] = (n - _popcount(~remaining)) / n
        n_i = (
            np.asarray([self._column_count(p) for p in positions], dtype=np.int64) / n
        )
        return ExitEvaluation(
            n_i=n_i,
            final_accuracy=self._column_count("final") / n,
            dynamic_accuracy=_popcount(union | self._packed_column("final")) / n,
            usage=usage,
        )
