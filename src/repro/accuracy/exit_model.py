"""Exit-capability oracle: per-exit correctness without GPU training.

Model (DESIGN.md §1): every sample carries a Beta-distributed difficulty; a
head at relative depth ``u`` with capability ``cap`` classifies correctly the
``cap`` fraction of samples with the lowest *perceived* difficulty

    score_n(u) = difficulty_n - eta_n(u)

where ``eta_n`` is a per-sample smooth Gaussian-process perturbation over
depth.  The GP is the load-bearing choice: heads at *nearby* depths see
almost identical perturbations (their errors are highly correlated — an
exit adjacent to another is redundant), while heads far apart decorrelate
(a spread of exits catches samples the final classifier misses).  This is
precisely the behaviour the paper's dissimilarity regulariser (eq. 7)
exploits: clustered exits waste branches without extending coverage.

Capability grows with depth as ``cap(u) = acc * head_quality * maturity(u)``
with saturating maturity — diminishing returns per extra layer.  Marginals
are exact (an exit of capability c classifies exactly a fraction c), so the
oracle's N_i and final accuracy line up with the accuracy surrogate.

A :class:`BackboneExitOracle` caches one correctness column per position, so
the inner engine's thousands of placement evaluations per backbone reuse the
same columns — and exits at the same position are identical across
placements, which keeps the dissimilarity signal consistent.

With a persistent :class:`~repro.engine.cache.ResultCache` attached, columns
are additionally content-addressed on disk (namespace ``oracle``, bit-packed
JSON).  Columns depend only on the *accuracy side* of the problem —
(backbone key, backbone accuracy, capability model, difficulty distribution,
sample count, seed) — and **not** on the platform or its DVFS grid, so a
re-search where only the hardware side changed (a trimmed DVFS grid, a new
platform) warm-starts every oracle from cached columns instead of
regenerating the Monte-Carlo population.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

from repro.data.difficulty import DifficultyDistribution
from repro.exits.evaluation import ExitEvaluation
from repro.exits.placement import ExitPlacement
from repro.utils.rng import child_rng
from repro.utils.validation import check_positive, check_probability

if TYPE_CHECKING:  # imported lazily at runtime; keeps accuracy/ engine-free
    from repro.engine.cache import ResultCache

#: Bump when column semantics change; orphans persisted oracle columns.
ORACLE_COLUMN_VERSION = "1"

#: Bits set per byte value — the popcount table the packed ideal-mapping
#: statistics use.  Counting set bits is exact integer work, so the packed
#: path reproduces the boolean-matrix statistics bit for bit.
_POPCOUNT = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(
    axis=1, dtype=np.intp
)


def _popcount(packed: np.ndarray) -> int:
    """Number of set bits in a packbits array."""
    return int(_POPCOUNT[packed].sum())


@dataclass(frozen=True)
class ExitCapabilityModel:
    """Parameters of the capability model.

    Attributes
    ----------
    maturity_k:
        Saturation rate of feature maturity vs relative depth.
    head_quality:
        Capability of the fixed exit head relative to the full final head.
    idiosyncratic_sigma:
        Std-dev of the per-(depth, sample) GP perturbation in difficulty
        units; controls how much *spread* exits can extend coverage (the
        union/EEx accuracy gain).
    correlation_length:
        Length scale (in relative depth) of the GP: heads closer than this
        are nearly redundant.
    """

    maturity_k: float = 2.5
    head_quality: float = 0.965
    idiosyncratic_sigma: float = 0.18
    correlation_length: float = 0.18
    num_basis: int = 9

    def __post_init__(self):
        check_positive("maturity_k", self.maturity_k)
        check_probability("head_quality", self.head_quality)
        check_positive("idiosyncratic_sigma", self.idiosyncratic_sigma)
        check_positive("correlation_length", self.correlation_length)
        check_positive("num_basis", self.num_basis)

    def maturity(self, u: float | np.ndarray) -> float | np.ndarray:
        """Feature maturity at relative depth ``u`` in (0, 1]."""
        return (1.0 - np.exp(-self.maturity_k * np.asarray(u))) / (
            1.0 - math.exp(-self.maturity_k)
        )

    def capability(self, backbone_accuracy: float, u: float | np.ndarray):
        """Marginal correct fraction a head at depth ``u`` can reach."""
        check_probability("backbone_accuracy", backbone_accuracy)
        return backbone_accuracy * self.head_quality * self.maturity(u)

    @cached_property
    def _centers(self) -> np.ndarray:
        """RBF centers, computed once — ``basis`` runs thousands of times per
        oracle, and re-allocating the linspace dominated its cost.  (A
        ``cached_property`` writes straight into ``__dict__``, which the
        frozen dataclass permits; cache keys serialise dataclass *fields*
        only, so the cached array never leaks into content addresses.)"""
        return np.linspace(0.0, 1.0, self.num_basis)

    def basis(self, u: float) -> np.ndarray:
        """Unit-norm RBF feature vector of depth ``u`` (GP weights)."""
        phi = np.exp(-((u - self._centers) ** 2) / (2.0 * self.correlation_length**2))
        return phi / np.linalg.norm(phi)

    def basis_matrix(self, us: np.ndarray) -> np.ndarray:
        """Stacked basis vectors; row ``i`` equals ``basis(us[i])`` bit for bit.

        The Gaussian features are one broadcast op; the norms stay per-row
        :func:`np.linalg.norm` calls because a matrix-axis norm reduces in a
        different summation order (ULP drift) — and the rows are few while
        the samples are thousands, so nothing is lost.
        """
        us = np.asarray(us, dtype=float)
        phi = np.exp(
            -((us[:, None] - self._centers[None, :]) ** 2)
            / (2.0 * self.correlation_length**2)
        )
        norms = np.fromiter(
            (np.linalg.norm(row) for row in phi), dtype=np.float64, count=len(phi)
        )
        return phi / norms[:, None]

    def head_correlation(self, u1: float, u2: float) -> float:
        """Error-perturbation correlation between heads at two depths."""
        return float(self.basis(u1) @ self.basis(u2))


class BackboneExitOracle:
    """Per-backbone cache of simulated exit-correctness columns.

    Parameters
    ----------
    backbone_key:
        Stable identity of the backbone (keys the random streams).
    total_layers:
        Σ l_i of the backbone — defines relative depths.
    backbone_accuracy:
        Static accuracy fraction from the accuracy surrogate.
    model, difficulty:
        Capability model and sample-difficulty distribution.
    n_samples:
        Monte-Carlo population size (2048 keeps N_i std below 1 point).
    cache:
        Optional persistent :class:`~repro.engine.cache.ResultCache`;
        columns are stored bit-packed under the platform-independent
        ``oracle`` namespace, warm-starting re-searches where only the
        hardware side (DVFS grid, platform) changed.
    """

    def __init__(
        self,
        backbone_key: str,
        total_layers: int,
        backbone_accuracy: float,
        model: ExitCapabilityModel | None = None,
        difficulty: DifficultyDistribution | None = None,
        n_samples: int = 2048,
        seed: int = 0,
        cache: "ResultCache | None" = None,
    ):
        check_probability("backbone_accuracy", backbone_accuracy)
        check_positive("n_samples", n_samples)
        self.backbone_key = backbone_key
        self.total_layers = total_layers
        self.backbone_accuracy = backbone_accuracy
        self.model = model or ExitCapabilityModel()
        self.difficulty = difficulty or DifficultyDistribution()
        self.n_samples = n_samples
        self.seed = seed
        self.cache = cache
        rng = child_rng(seed, "difficulties", backbone_key)
        self._difficulties = self.difficulty.sample(n_samples, rng)
        gp_rng = child_rng(seed, "exit-gp", backbone_key)
        self._latent = gp_rng.normal(0.0, 1.0, size=(n_samples, self.model.num_basis))
        self._columns: dict[int | str, np.ndarray] = {}
        self._counts: dict[int | str, int] = {}
        self._packed: dict[int | str, np.ndarray] = {}
        self._pert_matrix: np.ndarray | None = None
        self._stats: dict[tuple[int, ...], ExitEvaluation] = {}
        #: Column-resolution counters (column requests by outcome): how many
        #: landed in memory, warm-started from the persistent cache, or were
        #: built from the Monte-Carlo population.  The dynamic-eval bench
        #: surfaces these so warm-start efficacy is visible in its report.
        self.column_stats: dict[str, int] = {"memory": 0, "disk": 0, "built": 0}

    def _perturbations(self) -> np.ndarray:
        """``(n_samples, total_layers)`` GP perturbations — one matrix op.

        Column ``p - 1`` is the perturbation at relative depth
        ``p / total_layers`` (the final classifier shares the last column,
        u = 1.0).  Built lazily on first use and spanning *every* position,
        so a placement's columns are lookups into one precomputed matrix —
        and each column is a pure function of the oracle (the set of
        positions a placement happens to request cannot change what gets
        computed), so columns are deterministic regardless of access order.

        Each column is the pre-batching formula ``(latent @ basis(u)) *
        sigma`` evaluated with the same per-column gemv (``column_stack``
        of gemvs, not one gemm, whose BLAS accumulation order would drift
        by ULPs) — bit-identical to the pre-batching oracle, so columns
        persisted to disk by older code and freshly computed ones always
        agree.  The stack is built once per oracle; the gemv-vs-gemm cost
        difference is unmeasurable at that frequency.
        """
        if self._pert_matrix is None:
            us = np.arange(1, self.total_layers + 1, dtype=float) / self.total_layers
            weights = self.model.basis_matrix(us)
            self._pert_matrix = np.column_stack(
                [self._latent @ row for row in weights]
            ) * self.model.idiosyncratic_sigma
        return self._pert_matrix

    def _column_key(self, key: int | str):
        """Content address of one column: accuracy-side fields only.

        Deliberately excludes anything hardware-side, which is what makes
        DVFS-grid-only changes warm-start from cached columns.
        """
        return self.cache.key(
            "oracle",
            evaluator_version=ORACLE_COLUMN_VERSION,
            backbone=self.backbone_key,
            layers=self.total_layers,
            accuracy=self.backbone_accuracy,
            model=self.model,
            difficulty=self.difficulty,
            samples=self.n_samples,
            seed=self.seed,
            column=str(key),
        )

    def _column(self, key: int | str, capability: float, position: int) -> np.ndarray:
        if key in self._columns:
            self.column_stats["memory"] += 1
            return self._columns[key]
        cache_key = self._column_key(key) if self.cache is not None else None
        if cache_key is not None:
            stored = self.cache.get(cache_key)
            if stored is not None:
                self.column_stats["disk"] += 1
                column = np.unpackbits(
                    np.asarray(stored["bits"], dtype=np.uint8), count=self.n_samples
                ).astype(bool)
                self._columns[key] = column
                return column
        self.column_stats["built"] += 1
        # The head ranks samples by perceived difficulty and classifies
        # exactly its capability fraction: marginals are exact while the GP
        # keeps correctness strongly correlated between nearby depths.
        score = self._difficulties - self._perturbations()[:, position - 1]
        n_correct = int(round(np.clip(capability, 0.0, 1.0) * self.n_samples))
        column = np.zeros(self.n_samples, dtype=bool)
        if n_correct > 0:
            easiest = np.argpartition(score, max(n_correct - 1, 0))[:n_correct]
            column[easiest] = True
        if cache_key is not None:
            # Bit-packed + plain ints keeps the entry a small JSON file
            # (~n/8 bytes) rather than a pickle of the bool array.
            self.cache.put(cache_key, {"bits": np.packbits(column).tolist()})
        self._columns[key] = column
        return column

    def exit_column(self, position: int) -> np.ndarray:
        """Boolean correctness column of an exit at MBConv ``position``."""
        column = self._columns.get(position)
        if column is not None:  # hot path: skip recomputing the capability
            self.column_stats["memory"] += 1
            return column
        if not 1 <= position <= self.total_layers:
            raise ValueError(f"position {position} outside [1, {self.total_layers}]")
        u = position / self.total_layers
        cap = float(self.model.capability(self.backbone_accuracy, u))
        return self._column(position, cap, position)

    def final_column(self) -> np.ndarray:
        """Boolean correctness column of the backbone's final classifier."""
        return self._column("final", self.backbone_accuracy, self.total_layers)

    def _column_count(self, key: int | str) -> int:
        """Number of correct samples in a materialised column (memoised)."""
        count = self._counts.get(key)
        if count is None:
            count = int(np.count_nonzero(self._columns[key]))
            self._counts[key] = count
        return count

    def _packed_column(self, key: int | str) -> np.ndarray:
        """Bit-packed view of a materialised column (memoised).

        The packed form (``n/8`` bytes, zero-padded tail) drives the
        ideal-mapping statistics: bitwise masking plus a popcount replaces
        boolean-matrix reductions at an eighth of the memory traffic.
        """
        packed = self._packed.get(key)
        if packed is None:
            packed = np.packbits(self._columns[key])
            self._packed[key] = packed
        return packed

    def n_i(self, position: int) -> float:
        """Marginal correct fraction of an exit (the paper's N_i)."""
        return float(self.exit_column(position).mean())

    def evaluate_placement(self, placement: ExitPlacement) -> ExitEvaluation:
        """Ideal-mapping statistics for a full placement (memoised).

        The statistics are DVFS-independent, so the inner engine's many
        (placement, setting) evaluations of one placement share a single
        :class:`ExitEvaluation` — and with it the cached dissimilarity
        vector.  The frozen instances are safe to share.
        """
        if placement.total_layers != self.total_layers:
            raise ValueError(
                f"placement assumes {placement.total_layers} layers, oracle has "
                f"{self.total_layers}"
            )
        stats = self._stats.get(placement.positions)
        if stats is None:
            stats = self._assemble_stats(placement.positions)
            self._stats[placement.positions] = stats
        return stats

    def evaluate_placements(
        self, placements: list[ExitPlacement]
    ) -> list[ExitEvaluation]:
        """Statistics for a whole population (order-preserving).

        The population kernel's accuracy side: every distinct requested
        column is materialised first — each a gather against the one
        precomputed perturbation matrix — before the per-placement
        (memoised) packed-popcount assemblies run.  Bit-identical to calling
        :meth:`evaluate_placement` in a loop; the batch surface exists so
        callers pay the column fills up front instead of interleaved with
        stats assembly.
        """
        for placement in placements:
            if placement.total_layers != self.total_layers:
                raise ValueError(
                    f"placement assumes {placement.total_layers} layers, oracle "
                    f"has {self.total_layers}"
                )
        distinct = sorted({p for placement in placements for p in placement.positions})
        for position in distinct:
            self.exit_column(position)
        self.final_column()
        return [self.evaluate_placement(placement) for placement in placements]

    def _assemble_stats(self, positions: tuple[int, ...]) -> ExitEvaluation:
        """Build :class:`ExitEvaluation` from cached columns and counts.

        Equivalent to ``ideal_mapping_stats(np.stack(columns, axis=1))`` bit
        for bit (asserted in the test suite): the masked first-correct-exit
        sweep is the original algorithm run on *bit-packed* columns (bitwise
        AND + popcount instead of boolean-matrix reductions), and marginals
        come from per-column counts cached at column creation.  Every
        fraction is the same integer count divided by the same ``n``.
        """
        num_exits = len(positions)
        n = self.n_samples
        for position in positions:  # materialise columns before packing
            self.exit_column(position)
        self.final_column()
        usage = np.zeros(num_exits + 1)
        remaining = None  # samples no earlier exit has taken (packed)
        union = None  # samples some exit classifies (packed)
        for i, position in enumerate(positions):
            packed = self._packed_column(position)
            if remaining is None:
                takes = packed
                remaining = ~packed
                union = packed
            else:
                takes = remaining & packed
                remaining &= ~packed
                union = union | packed
            usage[i] = _popcount(takes) / n
        usage[-1] = (n - _popcount(~remaining)) / n
        n_i = (
            np.asarray([self._column_count(p) for p in positions], dtype=np.int64) / n
        )
        return ExitEvaluation(
            n_i=n_i,
            final_accuracy=self._column_count("final") / n,
            dynamic_accuracy=_popcount(union | self._packed_column("final")) / n,
            usage=usage,
        )
