"""Layer/module abstractions over the autograd tensor.

:class:`Module` mirrors the familiar torch.nn contract at miniature scale:
parameter discovery by attribute walking, ``train()``/``eval()`` modes, and
``state_dict`` round-tripping (used to freeze backbones during exit training).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.tensor import Tensor
from repro.utils.rng import make_rng


class Module:
    """Base class for all network modules."""

    def __init__(self):
        self.training = True

    # ---------------------------------------------------------- structure
    @staticmethod
    def _walk_container(value, path: str):
        """Yield (path, item) for Modules/Tensors nested in lists/tuples."""
        if isinstance(value, (Module, Tensor)):
            yield path, value
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                yield from Module._walk_container(item, f"{path}.{i}")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants, depth-first."""
        yield self
        for name, value in self.__dict__.items():
            for _, item in Module._walk_container(value, name):
                if isinstance(item, Module):
                    yield from item.modules()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first.

        Yields frozen parameters too (optimisers filter on ``requires_grad``)
        so ``state_dict`` round-trips are unaffected by :meth:`freeze`.
        """
        for name, value in self.__dict__.items():
            for path, item in Module._walk_container(value, f"{prefix}{name}"):
                if isinstance(item, Tensor):
                    yield path, item
                elif isinstance(item, Module):
                    yield from item.named_parameters(f"{path}.")

    def parameters(self) -> list[Tensor]:
        """Return all trainable parameters."""
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total trainable scalar count."""
        return sum(p.size for p in self.parameters())

    # -------------------------------------------------------------- modes
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects batch-norm statistics)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    def freeze(self) -> "Module":
        """Disable gradient flow into this module's parameters in-place."""
        for p in self.parameters():
            p.requires_grad = False
        return self

    # ------------------------------------------------------- (de)serialise
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy all parameters (and batch-norm buffers) into a flat dict."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for i, module in enumerate(self.modules()):
            if isinstance(module, BatchNorm2d):
                state[f"__bn{i}.running_mean"] = module.running_mean.copy()
                state[f"__bn{i}.running_var"] = module.running_var.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters and buffers saved by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        for name, value in state.items():
            if name.startswith("__bn"):
                continue
            if name not in params:
                raise KeyError(f"unexpected parameter {name!r} in state dict")
            if params[name].shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: {params[name].shape} vs {value.shape}"
                )
            params[name].data = value.copy()
        for i, module in enumerate(self.modules()):
            if isinstance(module, BatchNorm2d):
                key = f"__bn{i}.running_mean"
                if key in state:
                    module.running_mean = state[key].copy()
                    module.running_var = state[f"__bn{i}.running_var"].copy()

    # ---------------------------------------------------------------- call
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.items = list(modules)

    def append(self, module: Module) -> "Sequential":
        self.items.append(module)
        return self

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Sequential(*self.items[index])
        return self.items[index]

    def forward(self, x: Tensor) -> Tensor:
        for module in self.items:
            x = module(x)
        return x


class Identity(Module):
    """Pass-through module."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Swish(Module):
    """x * sigmoid(x), the MBConv activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.swish()


class Sigmoid(Module):
    """Logistic activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Linear(Module):
    """Affine layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None):
        super().__init__()
        rng = make_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(init.xavier_uniform(rng, (out_features, in_features)), requires_grad=True)
        self.bias = Tensor(np.zeros(out_features), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """2-D convolution (square kernels, optional groups for depthwise)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int | None = None,
        groups: int = 1,
        bias: bool = False,
        rng=None,
    ):
        super().__init__()
        rng = make_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding
        self.groups = groups
        shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Tensor(init.kaiming_normal(rng, shape), requires_grad=True)
        self.bias = Tensor(np.zeros(out_channels), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding, groups=self.groups
        )


class BatchNorm2d(Module):
    """Batch normalisation over NCHW with running statistics."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Tensor(np.ones(num_features), requires_grad=True)
        self.bias = Tensor(np.zeros(num_features), requires_grad=True)
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            var = x.var(axis=(0, 2, 3), keepdims=True)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean.data.reshape(-1)
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var.data.reshape(-1)
            )
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        inv_std = (var + self.eps) ** -0.5
        normalised = (x - mean) * inv_std
        scale = self.weight.reshape(1, self.num_features, 1, 1)
        shift = self.bias.reshape(1, self.num_features, 1, 1)
        return normalised * scale + shift


class MaxPool2d(Module):
    """Max pooling layer."""

    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)


class AvgPool2d(Module):
    """Average pooling layer."""

    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride, self.padding)


class GlobalAvgPool2d(Module):
    """Spatial global average pool: NCHW -> NC."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)
