"""Reverse-mode automatic differentiation on numpy arrays.

A :class:`Tensor` wraps a ``numpy.ndarray`` and records, for every operation,
a closure that propagates the output gradient to the operation's inputs.
Calling :meth:`Tensor.backward` walks the recorded graph in reverse
topological order and accumulates ``.grad`` on every tensor that requires it.

Gradients through broadcasting are handled by :func:`_unbroadcast`, which sums
the upstream gradient over broadcast dimensions back to the input shape.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

import numpy as np

_grad_enabled = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (inference mode)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _grad_enabled


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over dimensions that were broadcast from ``shape``."""
    if grad.shape == shape:
        return grad
    # Added leading axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Stretched singleton axes.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64`` ndarray unless already a
        float ndarray.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str | None = None,
    ):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype.kind not in "f":
            arr = arr.astype(np.float64)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self._backward = _backward
        self._parents = _parents if self.requires_grad or any(p.requires_grad for p in _parents) else ()
        self.name = name

    # ------------------------------------------------------------------ meta
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the scalar payload as a Python float (size-1 tensors)."""
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    # -------------------------------------------------------------- autograd
    @staticmethod
    def _make(data: np.ndarray, parents: tuple["Tensor", ...], backward) -> "Tensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None or grad is self.data else grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Reverse topological order over the graph reachable from self.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------ arithmetic
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-g)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __rsub__(self, other) -> "Tensor":
        return (-self) + other

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g * self.data, other.shape))

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-g * self.data / (other.data**2), other.shape))

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ supports scalar exponents only")

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1))

        return Tensor._make(self.data**exponent, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g @ np.swapaxes(other.data, -1, -2), self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(np.swapaxes(self.data, -1, -2) @ g, other.shape))

        return Tensor._make(self.data @ other.data, (self, other), backward)

    # ----------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = g
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.ndim for a in axes)
                for a in sorted(axes):
                    grad = np.expand_dims(grad, a)
            self._accumulate(np.broadcast_to(grad, self.shape).astype(self.dtype))

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Biased (population) variance, matching batch-norm semantics."""
        mu = self.mean(axis=axis, keepdims=True)
        sq = (self - mu) * (self - mu)
        return sq.mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = out_data if keepdims or axis is None else np.expand_dims(out_data, axis)
            grad_exp = g if keepdims or axis is None else np.expand_dims(g, axis)
            mask = (self.data == expanded).astype(self.dtype)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * grad_exp)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------- shaping
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.reshape(original))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        axes = axes or tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, index, g)
                self._accumulate(grad)

        return Tensor._make(self.data[index], (self,), backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) axes symmetrically."""
        if padding == 0:
            return self
        pad_spec = [(0, 0)] * (self.ndim - 2) + [(padding, padding), (padding, padding)]

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                sl = [slice(None)] * (self.ndim - 2) + [
                    slice(padding, -padding),
                    slice(padding, -padding),
                ]
                self._accumulate(g[tuple(sl)])

        return Tensor._make(np.pad(self.data, pad_spec), (self,), backward)

    # ---------------------------------------------------------- elementwise
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def swish(self) -> "Tensor":
        """x * sigmoid(x) — the activation used by MBConv blocks."""
        sig = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * (sig + self.data * sig * (1.0 - sig)))

        return Tensor._make(self.data * sig, (self,), backward)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = list(tensors)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(int(lo), int(hi))
                t._accumulate(g[tuple(sl)])

    data = np.concatenate([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = list(tensors)

    def backward(g: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            if t.requires_grad:
                t._accumulate(np.take(g, i, axis=axis))

    data = np.stack([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tuple(tensors), backward)
