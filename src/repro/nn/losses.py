"""Loss functions, including the paper's hybrid multi-exit loss (eq. 4).

The paper trains every exit simultaneously with a frozen backbone using

    L = 1/N * sum_n [ 1/(M-1) * sum_m ( L_NLL(y_n, yhat_{m,n})
                                        + L_KD(yhat_{m,n}, yhat_{M,n}) ) ]

where ``yhat_{M,n}`` are the (frozen) final-classifier predictions acting as
the distillation teacher for every exit m.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood given log-probabilities.

    ``targets`` is an int array of class indices with shape ``(batch,)``.
    """
    targets = np.asarray(targets)
    batch = log_probs.shape[0]
    picked = log_probs[np.arange(batch), targets]
    return -picked.mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Softmax cross-entropy from raw logits."""
    return nll_loss(F.log_softmax(logits, axis=-1), targets)


def knowledge_distillation_loss(
    student_logits: Tensor, teacher_logits: np.ndarray, temperature: float = 4.0
) -> Tensor:
    """KL(teacher softened || student softened), scaled by T^2.

    The teacher side is a constant (the frozen final classifier), so only the
    student receives gradients.  The ``T^2`` factor keeps gradient magnitudes
    comparable across temperatures (Hinton et al.).
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be > 0, got {temperature}")
    teacher_logits = np.asarray(teacher_logits, dtype=float)
    teacher_probs = F.softmax_np(teacher_logits / temperature, axis=-1)
    student_log_probs = F.log_softmax(student_logits * (1.0 / temperature), axis=-1)
    teacher = Tensor(teacher_probs)
    # KL(t||s) = sum t*log t - sum t*log s ; the first term is constant.
    const = float((teacher_probs * np.log(np.clip(teacher_probs, 1e-12, None))).sum(axis=-1).mean())
    cross = (teacher * student_log_probs).sum(axis=-1).mean()
    return (Tensor(const) - cross) * (temperature**2)


def multi_exit_loss(
    exit_logits: Sequence[Tensor],
    final_logits: np.ndarray | Tensor,
    targets: np.ndarray,
    kd_weight: float = 1.0,
    temperature: float = 4.0,
) -> Tensor:
    """Paper eq. 4: average per-exit (NLL + KD-against-final) loss.

    Parameters
    ----------
    exit_logits:
        Raw logits from each attached exit head (gradients flow here).
    final_logits:
        Raw logits of the backbone's final classifier (the teacher); treated
        as a constant.
    targets:
        Ground-truth class indices.
    kd_weight:
        Multiplier on the distillation term (1.0 reproduces eq. 4).
    """
    if not exit_logits:
        raise ValueError("multi_exit_loss requires at least one exit")
    teacher = final_logits.data if isinstance(final_logits, Tensor) else np.asarray(final_logits)
    total: Tensor | None = None
    for logits in exit_logits:
        term = cross_entropy(logits, targets)
        if kd_weight > 0:
            term = term + knowledge_distillation_loss(logits, teacher, temperature) * kd_weight
        total = term if total is None else total + term
    return total * (1.0 / len(exit_logits))


def accuracy(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1]."""
    arr = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    return float((arr.argmax(axis=-1) == np.asarray(targets)).mean())
