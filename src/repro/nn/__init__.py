"""A compact reverse-mode autograd neural-network library on numpy.

This package replaces PyTorch in the HADAS reproduction.  It provides exactly
the machinery the paper's training pipeline needs:

* :class:`~repro.nn.tensor.Tensor` — reverse-mode automatic differentiation
  with broadcasting-aware gradients;
* convolution / batch-norm / linear layers (:mod:`~repro.nn.layers`) built on
  an im2col convolution kernel (:mod:`~repro.nn.functional`);
* the paper's hybrid multi-exit loss (eq. 4): negative log-likelihood plus
  knowledge distillation against the final classifier
  (:mod:`~repro.nn.losses`);
* SGD / Adam optimisers and LR schedulers (:mod:`~repro.nn.optim`,
  :mod:`~repro.nn.schedulers`);
* a seeded mini-batch loader (:mod:`~repro.nn.dataloader`).

All parameters and activations are float64 by default for easy gradient
checking; networks here are miniature by design (see DESIGN.md §1).
"""

from repro.nn import functional
from repro.nn.dataloader import DataLoader
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Swish,
)
from repro.nn.losses import (
    cross_entropy,
    knowledge_distillation_loss,
    multi_exit_loss,
    nll_loss,
)
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.schedulers import CosineAnnealingLR, LRScheduler, StepLR
from repro.nn.tensor import Tensor, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "functional",
    "Module",
    "Sequential",
    "Conv2d",
    "BatchNorm2d",
    "Linear",
    "ReLU",
    "Swish",
    "Sigmoid",
    "Identity",
    "Flatten",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "nll_loss",
    "cross_entropy",
    "knowledge_distillation_loss",
    "multi_exit_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "DataLoader",
]
