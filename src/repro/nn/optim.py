"""First-order optimisers over Tensor parameter lists."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimiser holding a parameter list and a learning rate."""

    def __init__(self, params: list[Tensor], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be > 0, got {lr}")
        self.params = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum, weight decay, Nesterov."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 0.05,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(params, lr)
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, vel in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = grad + self.momentum * vel if self.nesterov else vel
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction and decoupled-style weight decay."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad**2
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            p.data = p.data - self.lr * update
