"""Seeded mini-batch iteration over in-memory arrays."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.utils.rng import make_rng


class DataLoader:
    """Iterate ``(images, labels)`` mini-batches from in-memory arrays.

    Shuffling uses its own generator so epochs are reproducible; each epoch
    re-shuffles (the generator state advances across epochs, as in torch).
    """

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        batch_size: int = 32,
        shuffle: bool = True,
        drop_last: bool = False,
        rng=None,
    ):
        if len(images) != len(labels):
            raise ValueError(f"images ({len(images)}) and labels ({len(labels)}) differ in length")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.images = np.asarray(images)
        self.labels = np.asarray(labels)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = make_rng(rng)

    def __len__(self) -> int:
        n = len(self.images)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.images))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                return
            yield self.images[idx], self.labels[idx]
