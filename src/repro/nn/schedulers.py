"""Learning-rate schedules."""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer


class LRScheduler:
    """Base scheduler: call :meth:`step` once per epoch (or iteration)."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step and apply the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.get_lr()
        return self.optimizer.lr


class StepLR(LRScheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` steps."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * progress))
