"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 2:  # linear: (out, in)
        return shape[1], shape[0]
    if len(shape) == 4:  # conv: (out, in/groups, k, k)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_normal(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """He-normal initialisation (suited to ReLU/Swish networks)."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """Glorot-uniform initialisation (suited to linear classifier heads)."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)
