"""Functional NN operations: im2col convolution, pooling, softmax.

The convolution is implemented as a single fused autograd node (forward via
im2col + batched matmul, backward via col2im scatter-add) rather than a
composition of Tensor primitives — the graphs stay small and the hot path is
pure BLAS.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def _conv_indices(
    channels: int, height: int, width: int, kernel: int, stride: int, padding: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Build fancy-indexing arrays mapping a padded image to im2col columns.

    Returns ``(chan_idx, row_idx, col_idx, h_out, w_out)`` where indexing a
    padded input ``x[:, chan_idx, row_idx, col_idx]`` produces an array of
    shape ``(batch, channels * kernel * kernel, h_out * w_out)``.
    """
    h_out = (height + 2 * padding - kernel) // stride + 1
    w_out = (width + 2 * padding - kernel) // stride + 1
    if h_out <= 0 or w_out <= 0:
        raise ValueError(
            f"conv output would be empty: input {height}x{width}, kernel {kernel}, "
            f"stride {stride}, padding {padding}"
        )
    i0 = np.tile(np.repeat(np.arange(kernel), kernel), channels)
    i1 = stride * np.repeat(np.arange(h_out), w_out)
    j0 = np.tile(np.tile(np.arange(kernel), kernel), channels)
    j1 = stride * np.tile(np.arange(w_out), h_out)
    row_idx = i0.reshape(-1, 1) + i1.reshape(1, -1)
    col_idx = j0.reshape(-1, 1) + j1.reshape(1, -1)
    chan_idx = np.repeat(np.arange(channels), kernel * kernel).reshape(-1, 1)
    return chan_idx, row_idx, col_idx, h_out, w_out


def _pad_input(x: np.ndarray, padding: int) -> np.ndarray:
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def _unpad_grad(grad: np.ndarray, padding: int) -> np.ndarray:
    if padding == 0:
        return grad
    return grad[:, :, padding:-padding, padding:-padding]


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> Tensor:
    """2-D convolution over NCHW input.

    ``weight`` has shape ``(c_out, c_in // groups, k, k)``.  ``groups ==
    c_in`` with ``c_out == c_in`` gives a depthwise convolution (the MBConv
    middle stage).
    """
    batch, c_in, height, width = x.shape
    c_out, c_in_g, kernel, kernel_w = weight.shape
    if kernel != kernel_w:
        raise ValueError("only square kernels are supported")
    if c_in % groups or c_out % groups:
        raise ValueError(f"channels ({c_in} -> {c_out}) not divisible by groups={groups}")
    if c_in_g != c_in // groups:
        raise ValueError(
            f"weight expects {c_in_g} input channels per group, input provides {c_in // groups}"
        )

    chan_idx, row_idx, col_idx, h_out, w_out = _conv_indices(
        c_in, height, width, kernel, stride, padding
    )
    x_padded = _pad_input(x.data, padding)
    cols = x_padded[:, chan_idx, row_idx, col_idx]  # (N, C*k*k, L)
    length = h_out * w_out
    cols_g = cols.reshape(batch, groups, c_in_g * kernel * kernel, length)
    weight_g = weight.data.reshape(groups, c_out // groups, c_in_g * kernel * kernel)

    out = np.einsum("gok,ngkl->ngol", weight_g, cols_g, optimize=True)
    out = out.reshape(batch, c_out, h_out, w_out)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray) -> None:
        g_cols = g.reshape(batch, groups, c_out // groups, length)
        if bias is not None and bias.requires_grad:
            bias._accumulate(g.sum(axis=(0, 2, 3)))
        if weight.requires_grad:
            grad_w = np.einsum("ngol,ngkl->gok", g_cols, cols_g, optimize=True)
            weight._accumulate(grad_w.reshape(weight.shape))
        if x.requires_grad:
            grad_cols = np.einsum("gok,ngol->ngkl", weight_g, g_cols, optimize=True)
            grad_cols = grad_cols.reshape(batch, c_in * kernel * kernel, length)
            grad_padded = np.zeros_like(x_padded)
            np.add.at(grad_padded, (slice(None), chan_idx, row_idx, col_idx), grad_cols)
            x._accumulate(_unpad_grad(grad_padded, padding))

    return Tensor._make(out, parents, backward)


def _pool_cols(x: Tensor, kernel: int, stride: int, padding: int):
    batch, channels, height, width = x.shape
    chan_idx, row_idx, col_idx, h_out, w_out = _conv_indices(
        channels, height, width, kernel, stride, padding
    )
    x_padded = _pad_input(x.data, padding)
    cols = x_padded[:, chan_idx, row_idx, col_idx]
    cols = cols.reshape(batch, channels, kernel * kernel, h_out * w_out)
    return cols, (chan_idx, row_idx, col_idx), x_padded.shape, h_out, w_out


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None, padding: int = 0) -> Tensor:
    """Max pooling over NCHW input."""
    stride = stride or kernel
    batch, channels = x.shape[:2]
    cols, idx, padded_shape, h_out, w_out = _pool_cols(x, kernel, stride, padding)
    arg = cols.argmax(axis=2)
    out = np.take_along_axis(cols, arg[:, :, None, :], axis=2)[:, :, 0, :]
    out = out.reshape(batch, channels, h_out, w_out)

    def backward(g: np.ndarray) -> None:
        if not x.requires_grad:
            return
        g_flat = g.reshape(batch, channels, h_out * w_out)
        grad_cols = np.zeros_like(cols)
        np.put_along_axis(grad_cols, arg[:, :, None, :], g_flat[:, :, None, :], axis=2)
        grad_cols = grad_cols.reshape(batch, channels * kernel * kernel, h_out * w_out)
        grad_padded = np.zeros(padded_shape, dtype=g.dtype)
        np.add.at(grad_padded, (slice(None), *idx), grad_cols)
        x._accumulate(_unpad_grad(grad_padded, padding))

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None, padding: int = 0) -> Tensor:
    """Average pooling over NCHW input."""
    stride = stride or kernel
    batch, channels = x.shape[:2]
    cols, idx, padded_shape, h_out, w_out = _pool_cols(x, kernel, stride, padding)
    out = cols.mean(axis=2).reshape(batch, channels, h_out, w_out)

    def backward(g: np.ndarray) -> None:
        if not x.requires_grad:
            return
        g_flat = g.reshape(batch, channels, 1, h_out * w_out) / (kernel * kernel)
        grad_cols = np.broadcast_to(g_flat, cols.shape).reshape(
            batch, channels * kernel * kernel, h_out * w_out
        )
        grad_padded = np.zeros(padded_shape, dtype=g.dtype)
        np.add.at(grad_padded, (slice(None), *idx), grad_cols)
        x._accumulate(_unpad_grad(grad_padded, padding))

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Spatial mean over NCHW input, returning shape ``(batch, channels)``."""
    return x.mean(axis=(2, 3))


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shift = Tensor(x.data.max(axis=axis, keepdims=True))  # constant, grad-free
    shifted = x - shift
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    return log_softmax(x, axis=axis).exp()


def softmax_np(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Plain-numpy softmax for inference-side code (controllers, metrics)."""
    z = logits - logits.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


def entropy_np(logits: np.ndarray, axis: int = -1, normalize: bool = True) -> np.ndarray:
    """Predictive entropy of softmax(logits); optionally normalised to [0, 1].

    This is the quantity thresholded by the entropy-based runtime controllers
    the paper cites for input-to-exit mapping.
    """
    probs = softmax_np(logits, axis=axis)
    ent = -(probs * np.log(np.clip(probs, 1e-12, None))).sum(axis=axis)
    if normalize:
        ent = ent / np.log(logits.shape[axis])
    return ent
