"""Exit evaluation under the paper's ideal input-to-exit mapping.

The design-time objective maps every input to the *first* exit that
classifies it correctly (paper §IV-C); inputs no exit can handle run the full
network and are classified (or not) by the final head.  All statistics derive
from a boolean *correctness matrix* ``C`` of shape ``(n_samples, E + 1)``
whose last column is the final classifier — this interface is shared by the
trainable path (real logits) and the surrogate path (simulated correctness).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np


@dataclass(frozen=True)
class ExitEvaluation:
    """Per-exit and aggregate statistics of a multi-exit network.

    Attributes
    ----------
    n_i:
        Paper's N_i — fraction of samples each exit classifies correctly,
        shape ``(E,)``.
    final_accuracy:
        Static accuracy of the backbone's own classifier.
    dynamic_accuracy:
        Accuracy under ideal mapping (union of all heads).
    usage:
        Fraction of inputs leaving at each exit, shape ``(E + 1,)`` — the
        last entry is the full-network remainder.
    dissimilarity:
        Paper eq. 7 per exit: ``1 - max(N_0 .. N_{i-1})`` with the convention
        ``dissim_0 = 1``.
    """

    n_i: np.ndarray
    final_accuracy: float
    dynamic_accuracy: float
    usage: np.ndarray

    @property
    def num_exits(self) -> int:
        return len(self.n_i)

    @property
    def mean_n_i(self) -> float:
        """Average of the N_i values (the paper's Fig. 5 bottom y-axis)."""
        return float(self.n_i.mean()) if len(self.n_i) else 0.0

    @cached_property
    def dissimilarity(self) -> np.ndarray:
        """Eq. 7 per exit, via one running-max pass.

        ``1 - max(N_0 .. N_{i-1})`` is a shifted cumulative maximum, so the
        whole vector is a single ``np.maximum.accumulate`` (maximum takes no
        rounding — identical to the per-exit loop it replaced).  Cached on
        the instance: an evaluation reads it in both ``evaluate`` and
        ``objectives``, and the frozen dataclass's samples never change.
        Treat the returned array as read-only.
        """
        dissim = np.ones(self.num_exits)
        if self.num_exits > 1:
            dissim[1:] = 1.0 - np.maximum.accumulate(self.n_i[:-1])
        return dissim

    @cached_property
    def usage_split(self) -> tuple[np.ndarray, float]:
        """``(usage[:-1], float(usage[-1]))`` — the ideal-mapping
        expectation weights split once for the dynamic-evaluation hot
        loops (an evaluation is reused across every DVFS setting swept).
        Treat the returned array as read-only.
        """
        return self.usage[:-1], float(self.usage[-1])

    @property
    def early_exit_fraction(self) -> float:
        """Fraction of inputs that leave before the final classifier."""
        return float(self.usage[:-1].sum())


@dataclass(frozen=True)
class PopulationExitStats:
    """Stacked ideal-mapping statistics of N placements.

    The accuracy-side twin of
    :class:`~repro.hardware.population_kernel.PopulationPathCosts`: matrices
    are ``(N, E_max)`` with row ``j`` valid through ``widths[j]`` columns.
    Every entry is an exact integer count divided by the shared sample count
    ``n`` — the same quotients :func:`ideal_mapping_stats` produces per
    placement — so consumers may mix stacked and per-placement reads freely.
    Pad entries of ``n_i`` and ``usage_head`` are exactly ``0.0`` (which is
    what lets downstream stacked reductions treat pads as no-ops);
    ``dissimilarity`` pads are finite and non-negative but otherwise
    unspecified — mask by width before reducing over them.

    ``evaluations[j]`` is the per-placement :class:`ExitEvaluation` whose
    arrays are row views of these matrices (or of the memoised originals).
    """

    widths: np.ndarray  # (N,) exits per placement
    n_i: np.ndarray  # (N, E_max) marginal correct fractions
    usage_head: np.ndarray  # (N, E_max) usage[:-1] rows
    usage_tail: np.ndarray  # (N,) full-network remainder fractions
    dissimilarity: np.ndarray  # (N, E_max) eq. 7 rows
    dynamic_accuracy: np.ndarray  # (N,) union accuracies
    final_accuracy: float
    evaluations: tuple[ExitEvaluation, ...]

    def __len__(self) -> int:
        return len(self.evaluations)


def _assemble_evaluation(
    n_i_row: np.ndarray,
    usage_row: np.ndarray,
    dissim_row: np.ndarray,
    final_accuracy: float,
    dynamic_accuracy: float,
    tail: float,
) -> ExitEvaluation:
    """Build a frozen :class:`ExitEvaluation` without ``__init__``.

    Frozen dataclasses pay one guarded ``object.__setattr__`` per field;
    ``__new__`` + ``__dict__.update`` builds the identical object, and
    pre-seeding the ``cached_property`` slots (``dissimilarity``,
    ``usage_split``) with the already-stacked rows means no lazy per-row
    recomputation ever runs.  The rows are views into shared population
    matrices — read-only by the same convention as the cached properties.
    """
    evaluation = ExitEvaluation.__new__(ExitEvaluation)
    evaluation.__dict__.update(
        n_i=n_i_row,
        final_accuracy=final_accuracy,
        dynamic_accuracy=dynamic_accuracy,
        usage=usage_row,
        dissimilarity=dissim_row,
        usage_split=(usage_row[:-1], tail),
    )
    return evaluation


def _population_dissimilarity(n_i: np.ndarray) -> np.ndarray:
    """Stacked eq. 7: ``1 - cummax`` rows in one accumulate.

    ``np.maximum.accumulate`` along axis 1 performs the exact per-row
    comparisons of the per-placement version (maximum takes no rounding),
    and the cumulative maximum at column ``i`` depends only on columns
    ``<= i`` — so each valid row prefix is bit-identical to
    :attr:`ExitEvaluation.dissimilarity` regardless of row pads.
    """
    count, e_max = n_i.shape
    dissim = np.ones((count, e_max))
    if e_max > 1:
        dissim[:, 1:] = 1.0 - np.maximum.accumulate(n_i[:, :-1], axis=1)
    return dissim


def ideal_mapping_stats_population(
    *,
    take_counts: np.ndarray,
    tail_counts: np.ndarray,
    marginal_counts: np.ndarray,
    union_counts: np.ndarray,
    final_count: int,
    n_samples: int,
    widths: np.ndarray,
) -> PopulationExitStats:
    """Population-level :func:`ideal_mapping_stats` from stacked counts.

    All inputs are exact integer sample counts (pads zero): ``take_counts``
    — samples leaving at each exit under ideal mapping; ``tail_counts`` —
    samples no exit takes; ``marginal_counts`` — per-exit correct samples
    (the N_i numerators); ``union_counts`` — samples some head (any exit or
    the final classifier) classifies.  Every output is ``count / n``, the
    same quotient the per-placement path computes, so results are
    bit-identical to :func:`ideal_mapping_stats` row by row.
    """
    widths = np.asarray(widths, dtype=np.intp)
    count = len(widths)
    n_i = marginal_counts / n_samples
    usage_head = take_counts / n_samples
    usage_tail = tail_counts / n_samples
    dissim = _population_dissimilarity(n_i)
    dynamic_accuracy = union_counts / n_samples
    final_accuracy = final_count / n_samples
    e_max = n_i.shape[1]
    # usage rows carry the tail at column widths[j]; pads stay 0.0.
    usage = np.zeros((count, e_max + 1))
    usage[:, :e_max] = usage_head
    usage[np.arange(count), widths] = usage_tail
    width_list = widths.tolist()
    dyn_list = dynamic_accuracy.tolist()
    tail_list = usage_tail.tolist()
    evaluations = tuple(
        _assemble_evaluation(
            n_i[j, :w],
            usage[j, : w + 1],
            dissim[j, :w],
            final_accuracy,
            dyn_list[j],
            tail_list[j],
        )
        for j, w in enumerate(width_list)
    )
    return PopulationExitStats(
        widths=widths,
        n_i=n_i,
        usage_head=usage_head,
        usage_tail=usage_tail,
        dissimilarity=dissim,
        dynamic_accuracy=dynamic_accuracy,
        final_accuracy=final_accuracy,
        evaluations=evaluations,
    )


def stack_exit_evaluations(evaluations: list[ExitEvaluation]) -> PopulationExitStats:
    """Stack existing per-placement evaluations into population matrices.

    The restack path for memo-mixed populations: values are copied from each
    evaluation's (possibly memoised) arrays, so the stacked rows are bitwise
    the per-placement statistics.  Pads are 0.0 (``dissimilarity`` included,
    which keeps ``n_i * dissim**gamma`` pads at exactly +0.0 for any gamma).
    """
    count = len(evaluations)
    widths = np.fromiter(
        (evaluation.num_exits for evaluation in evaluations), dtype=np.intp, count=count
    )
    e_max = int(widths.max()) if count else 0
    n_i = np.zeros((count, e_max))
    usage_head = np.zeros((count, e_max))
    dissim = np.zeros((count, e_max))
    usage_tail = np.zeros(count)
    dynamic_accuracy = np.zeros(count)
    for j, evaluation in enumerate(evaluations):
        w = int(widths[j])
        n_i[j, :w] = evaluation.n_i
        dissim[j, :w] = evaluation.dissimilarity
        head, tail = evaluation.usage_split
        usage_head[j, :w] = head
        usage_tail[j] = tail
        dynamic_accuracy[j] = evaluation.dynamic_accuracy
    return PopulationExitStats(
        widths=widths,
        n_i=n_i,
        usage_head=usage_head,
        usage_tail=usage_tail,
        dissimilarity=dissim,
        dynamic_accuracy=dynamic_accuracy,
        final_accuracy=evaluations[0].final_accuracy if count else 0.0,
        evaluations=tuple(evaluations),
    )


def ideal_mapping_stats(correct: np.ndarray) -> ExitEvaluation:
    """Compute :class:`ExitEvaluation` from a correctness matrix.

    ``correct[n, i]`` — exit ``i`` (columns ordered by position; final
    classifier last) classifies sample ``n`` correctly.
    """
    correct = np.asarray(correct, dtype=bool)
    if correct.ndim != 2 or correct.shape[1] < 1:
        raise ValueError(f"correctness matrix must be (n, E+1), got {correct.shape}")
    n_samples, num_heads = correct.shape
    num_exits = num_heads - 1

    # Boolean means are integer counts divided by n; count_nonzero produces
    # the exact same integer, so every quotient below is bit-identical to
    # the ``.mean()`` calls it replaced — at a fraction of the call cost
    # (this runs once per dynamic evaluation, thousands of times per run).
    exits = correct[:, :num_exits]
    n_i = (
        np.count_nonzero(exits, axis=0) / n_samples if num_exits else np.zeros(0)
    )
    final_accuracy = np.count_nonzero(correct[:, -1]) / n_samples
    any_head = correct.any(axis=1)
    dynamic_accuracy = np.count_nonzero(any_head) / n_samples

    # Ideal mapping sends each sample to its *first* correct exit, so the
    # usage histogram is first-true-column indexing — one argmax + bincount
    # instead of the O(E · n) masked loop.
    usage = np.zeros(num_exits + 1)
    covered = exits.any(axis=1)
    if num_exits:
        first_exit = np.argmax(exits, axis=1)
        counts = np.bincount(first_exit[covered], minlength=num_exits)
        usage[:num_exits] = counts / n_samples
    usage[-1] = np.count_nonzero(~covered) / n_samples
    return ExitEvaluation(
        n_i=np.asarray(n_i, dtype=float),
        final_accuracy=final_accuracy,
        dynamic_accuracy=dynamic_accuracy,
        usage=usage,
    )


def evaluate_exit_logits(
    exit_logits: np.ndarray, final_logits: np.ndarray, labels: np.ndarray
) -> ExitEvaluation:
    """Evaluate real logits from a trained multi-exit network.

    ``exit_logits`` has shape ``(E, n, classes)``; ``final_logits`` is
    ``(n, classes)``.
    """
    exit_logits = np.asarray(exit_logits)
    labels = np.asarray(labels)
    if exit_logits.ndim != 3:
        raise ValueError(f"exit_logits must be (E, n, classes), got {exit_logits.shape}")
    pred_exits = exit_logits.argmax(axis=-1)  # (E, n)
    correct_exits = (pred_exits == labels[None, :]).T  # (n, E)
    correct_final = (np.asarray(final_logits).argmax(axis=-1) == labels)[:, None]
    return ideal_mapping_stats(np.concatenate([correct_exits, correct_final], axis=1))
