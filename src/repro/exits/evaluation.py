"""Exit evaluation under the paper's ideal input-to-exit mapping.

The design-time objective maps every input to the *first* exit that
classifies it correctly (paper §IV-C); inputs no exit can handle run the full
network and are classified (or not) by the final head.  All statistics derive
from a boolean *correctness matrix* ``C`` of shape ``(n_samples, E + 1)``
whose last column is the final classifier — this interface is shared by the
trainable path (real logits) and the surrogate path (simulated correctness).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ExitEvaluation:
    """Per-exit and aggregate statistics of a multi-exit network.

    Attributes
    ----------
    n_i:
        Paper's N_i — fraction of samples each exit classifies correctly,
        shape ``(E,)``.
    final_accuracy:
        Static accuracy of the backbone's own classifier.
    dynamic_accuracy:
        Accuracy under ideal mapping (union of all heads).
    usage:
        Fraction of inputs leaving at each exit, shape ``(E + 1,)`` — the
        last entry is the full-network remainder.
    dissimilarity:
        Paper eq. 7 per exit: ``1 - max(N_0 .. N_{i-1})`` with the convention
        ``dissim_0 = 1``.
    """

    n_i: np.ndarray
    final_accuracy: float
    dynamic_accuracy: float
    usage: np.ndarray

    @property
    def num_exits(self) -> int:
        return len(self.n_i)

    @property
    def mean_n_i(self) -> float:
        """Average of the N_i values (the paper's Fig. 5 bottom y-axis)."""
        return float(self.n_i.mean()) if len(self.n_i) else 0.0

    @property
    def dissimilarity(self) -> np.ndarray:
        dissim = np.ones(self.num_exits)
        for i in range(1, self.num_exits):
            dissim[i] = 1.0 - float(self.n_i[:i].max())
        return dissim

    @property
    def early_exit_fraction(self) -> float:
        """Fraction of inputs that leave before the final classifier."""
        return float(self.usage[:-1].sum())


def ideal_mapping_stats(correct: np.ndarray) -> ExitEvaluation:
    """Compute :class:`ExitEvaluation` from a correctness matrix.

    ``correct[n, i]`` — exit ``i`` (columns ordered by position; final
    classifier last) classifies sample ``n`` correctly.
    """
    correct = np.asarray(correct, dtype=bool)
    if correct.ndim != 2 or correct.shape[1] < 1:
        raise ValueError(f"correctness matrix must be (n, E+1), got {correct.shape}")
    n_samples, num_heads = correct.shape
    num_exits = num_heads - 1

    n_i = correct[:, :num_exits].mean(axis=0) if num_exits else np.zeros(0)
    final_accuracy = float(correct[:, -1].mean())
    dynamic_accuracy = float(correct.any(axis=1).mean())

    usage = np.zeros(num_exits + 1)
    remaining = np.ones(n_samples, dtype=bool)
    for i in range(num_exits):
        takes = remaining & correct[:, i]
        usage[i] = takes.mean()
        remaining &= ~takes
    usage[-1] = remaining.mean()
    return ExitEvaluation(
        n_i=np.asarray(n_i, dtype=float),
        final_accuracy=final_accuracy,
        dynamic_accuracy=dynamic_accuracy,
        usage=usage,
    )


def evaluate_exit_logits(
    exit_logits: np.ndarray, final_logits: np.ndarray, labels: np.ndarray
) -> ExitEvaluation:
    """Evaluate real logits from a trained multi-exit network.

    ``exit_logits`` has shape ``(E, n, classes)``; ``final_logits`` is
    ``(n, classes)``.
    """
    exit_logits = np.asarray(exit_logits)
    labels = np.asarray(labels)
    if exit_logits.ndim != 3:
        raise ValueError(f"exit_logits must be (E, n, classes), got {exit_logits.shape}")
    pred_exits = exit_logits.argmax(axis=-1)  # (E, n)
    correct_exits = (pred_exits == labels[None, :]).T  # (n, E)
    correct_final = (np.asarray(final_logits).argmax(axis=-1) == labels)[:, None]
    return ideal_mapping_stats(np.concatenate([correct_exits, correct_final], axis=1))
