"""Exit evaluation under the paper's ideal input-to-exit mapping.

The design-time objective maps every input to the *first* exit that
classifies it correctly (paper §IV-C); inputs no exit can handle run the full
network and are classified (or not) by the final head.  All statistics derive
from a boolean *correctness matrix* ``C`` of shape ``(n_samples, E + 1)``
whose last column is the final classifier — this interface is shared by the
trainable path (real logits) and the surrogate path (simulated correctness).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np


@dataclass(frozen=True)
class ExitEvaluation:
    """Per-exit and aggregate statistics of a multi-exit network.

    Attributes
    ----------
    n_i:
        Paper's N_i — fraction of samples each exit classifies correctly,
        shape ``(E,)``.
    final_accuracy:
        Static accuracy of the backbone's own classifier.
    dynamic_accuracy:
        Accuracy under ideal mapping (union of all heads).
    usage:
        Fraction of inputs leaving at each exit, shape ``(E + 1,)`` — the
        last entry is the full-network remainder.
    dissimilarity:
        Paper eq. 7 per exit: ``1 - max(N_0 .. N_{i-1})`` with the convention
        ``dissim_0 = 1``.
    """

    n_i: np.ndarray
    final_accuracy: float
    dynamic_accuracy: float
    usage: np.ndarray

    @property
    def num_exits(self) -> int:
        return len(self.n_i)

    @property
    def mean_n_i(self) -> float:
        """Average of the N_i values (the paper's Fig. 5 bottom y-axis)."""
        return float(self.n_i.mean()) if len(self.n_i) else 0.0

    @cached_property
    def dissimilarity(self) -> np.ndarray:
        """Eq. 7 per exit, via one running-max pass.

        ``1 - max(N_0 .. N_{i-1})`` is a shifted cumulative maximum, so the
        whole vector is a single ``np.maximum.accumulate`` (maximum takes no
        rounding — identical to the per-exit loop it replaced).  Cached on
        the instance: an evaluation reads it in both ``evaluate`` and
        ``objectives``, and the frozen dataclass's samples never change.
        Treat the returned array as read-only.
        """
        dissim = np.ones(self.num_exits)
        if self.num_exits > 1:
            dissim[1:] = 1.0 - np.maximum.accumulate(self.n_i[:-1])
        return dissim

    @cached_property
    def usage_split(self) -> tuple[np.ndarray, float]:
        """``(usage[:-1], float(usage[-1]))`` — the ideal-mapping
        expectation weights split once for the dynamic-evaluation hot
        loops (an evaluation is reused across every DVFS setting swept).
        Treat the returned array as read-only.
        """
        return self.usage[:-1], float(self.usage[-1])

    @property
    def early_exit_fraction(self) -> float:
        """Fraction of inputs that leave before the final classifier."""
        return float(self.usage[:-1].sum())


def ideal_mapping_stats(correct: np.ndarray) -> ExitEvaluation:
    """Compute :class:`ExitEvaluation` from a correctness matrix.

    ``correct[n, i]`` — exit ``i`` (columns ordered by position; final
    classifier last) classifies sample ``n`` correctly.
    """
    correct = np.asarray(correct, dtype=bool)
    if correct.ndim != 2 or correct.shape[1] < 1:
        raise ValueError(f"correctness matrix must be (n, E+1), got {correct.shape}")
    n_samples, num_heads = correct.shape
    num_exits = num_heads - 1

    # Boolean means are integer counts divided by n; count_nonzero produces
    # the exact same integer, so every quotient below is bit-identical to
    # the ``.mean()`` calls it replaced — at a fraction of the call cost
    # (this runs once per dynamic evaluation, thousands of times per run).
    exits = correct[:, :num_exits]
    n_i = (
        np.count_nonzero(exits, axis=0) / n_samples if num_exits else np.zeros(0)
    )
    final_accuracy = np.count_nonzero(correct[:, -1]) / n_samples
    any_head = correct.any(axis=1)
    dynamic_accuracy = np.count_nonzero(any_head) / n_samples

    # Ideal mapping sends each sample to its *first* correct exit, so the
    # usage histogram is first-true-column indexing — one argmax + bincount
    # instead of the O(E · n) masked loop.
    usage = np.zeros(num_exits + 1)
    covered = exits.any(axis=1)
    if num_exits:
        first_exit = np.argmax(exits, axis=1)
        counts = np.bincount(first_exit[covered], minlength=num_exits)
        usage[:num_exits] = counts / n_samples
    usage[-1] = np.count_nonzero(~covered) / n_samples
    return ExitEvaluation(
        n_i=np.asarray(n_i, dtype=float),
        final_accuracy=final_accuracy,
        dynamic_accuracy=dynamic_accuracy,
        usage=usage,
    )


def evaluate_exit_logits(
    exit_logits: np.ndarray, final_logits: np.ndarray, labels: np.ndarray
) -> ExitEvaluation:
    """Evaluate real logits from a trained multi-exit network.

    ``exit_logits`` has shape ``(E, n, classes)``; ``final_logits`` is
    ``(n, classes)``.
    """
    exit_logits = np.asarray(exit_logits)
    labels = np.asarray(labels)
    if exit_logits.ndim != 3:
        raise ValueError(f"exit_logits must be (E, n, classes), got {exit_logits.shape}")
    pred_exits = exit_logits.argmax(axis=-1)  # (E, n)
    correct_exits = (pred_exits == labels[None, :]).T  # (n, E)
    correct_final = (np.asarray(final_logits).argmax(axis=-1) == labels)[:, None]
    return ideal_mapping_stats(np.concatenate([correct_exits, correct_final], axis=1))
