"""Multi-exit dynamic network: backbone taps + exit branches.

Wraps a supernet-activated backbone and attaches
:class:`~repro.exits.branch.ExitBranch` heads at the placement's positions.
The backbone is frozen by default — the paper keeps backbone weights frozen
during exit training so the static accuracy of b' is never degraded.
"""

from __future__ import annotations

import numpy as np

from repro.arch.config import BackboneConfig
from repro.exits.branch import ExitBranch
from repro.exits.placement import ExitPlacement
from repro.nn.layers import Module
from repro.nn.tensor import Tensor, no_grad
from repro.supernet.supernet import MiniSupernet


class MultiExitNetwork(Module):
    """A backbone subnet with trained exit heads at chosen positions."""

    def __init__(
        self,
        supernet: MiniSupernet,
        config: BackboneConfig,
        placement: ExitPlacement,
        freeze_backbone: bool = True,
        seed: int = 0,
    ):
        super().__init__()
        if placement.total_layers != config.total_mbconv_layers:
            raise ValueError(
                f"placement is for a {placement.total_layers}-layer backbone but the "
                f"config has {config.total_mbconv_layers} MBConv layers"
            )
        self.supernet = supernet
        self.config = config
        self.placement = placement
        if freeze_backbone:
            supernet.freeze()

        channels_at = {
            spec.index: spec.out_channels
            for spec in config.layers()
            if spec.kind == "mbconv"
        }
        self.branches = [
            ExitBranch(channels_at[pos], config.num_classes, seed=seed * 1000 + pos)
            for pos in placement.positions
        ]

    def exit_parameters(self) -> list[Tensor]:
        """Trainable parameters of the exit heads only."""
        params: list[Tensor] = []
        for branch in self.branches:
            params.extend(p for p in branch.parameters() if p.requires_grad)
        return params

    def forward(self, x: Tensor) -> tuple[list[Tensor], Tensor]:
        """Return ``(exit_logits_per_branch, final_logits)``."""
        out = self.supernet(x, self.config)
        exit_logits = []
        for pos, branch in zip(self.placement.positions, self.branches):
            exit_logits.append(branch(out.taps[pos - 1]))
        return exit_logits, out.logits

    def predict_all(self, images: np.ndarray, batch_size: int = 64) -> tuple[np.ndarray, np.ndarray]:
        """Inference over an array: stacked exit logits + final logits.

        Returns ``(exit_logits, final_logits)`` with shapes
        ``(num_exits, n, classes)`` and ``(n, classes)``.
        """
        was_training = self.training
        self.eval()
        exit_chunks: list[list[np.ndarray]] = [[] for _ in self.branches]
        final_chunks: list[np.ndarray] = []
        with no_grad():
            for start in range(0, len(images), batch_size):
                batch = Tensor(images[start : start + batch_size])
                exit_logits, final_logits = self.forward(batch)
                for i, logit in enumerate(exit_logits):
                    exit_chunks[i].append(logit.data)
                final_chunks.append(final_logits.data)
        self.train(was_training)
        stacked = np.stack([np.concatenate(chunks) for chunks in exit_chunks])
        return stacked, np.concatenate(final_chunks)
