"""The exits subspace X: placement indicator vectors conditioned on a backbone.

Paper Table II:  number of exits n_X in [1, (Σ l_i) − 5]; positions in
[5, Σ l_i).  We realise this as an indicator vector over MBConv layer
positions 5 .. L−1 (position L is the backbone's own final classifier), so
``max(n_X) = L − 5`` — consistent with both Table II rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from math import comb

import numpy as np

from repro.utils.rng import make_rng

#: Earliest legal exit position (paper: from the fifth layer on).
MIN_EXIT_POSITION = 5


@dataclass(frozen=True)
class ExitPlacement:
    """A concrete exit configuration for a backbone of ``total_layers``.

    ``positions`` are 1-based MBConv layer indices, strictly increasing,
    each in [5, total_layers − 1].
    """

    total_layers: int
    positions: tuple[int, ...]

    def __post_init__(self):
        if not self.positions:
            raise ValueError("an exit placement requires at least one exit")
        if list(self.positions) != sorted(set(self.positions)):
            raise ValueError(f"positions must be strictly increasing, got {self.positions}")
        lo, hi = MIN_EXIT_POSITION, self.total_layers - 1
        for p in self.positions:
            if not lo <= p <= hi:
                raise ValueError(
                    f"exit position {p} outside [{lo}, {hi}] for a "
                    f"{self.total_layers}-layer backbone"
                )

    @property
    def num_exits(self) -> int:
        return len(self.positions)

    @property
    def indicators(self) -> np.ndarray:
        """Paper-style indicator vector [I_5 .. I_{L-1}] (0/1 ints)."""
        vec = np.zeros(self.total_layers - MIN_EXIT_POSITION, dtype=np.int64)
        for p in self.positions:
            vec[p - MIN_EXIT_POSITION] = 1
        return vec

    @classmethod
    def from_indicators(cls, total_layers: int, indicators: np.ndarray) -> "ExitPlacement":
        """Inverse of :attr:`indicators`."""
        indicators = np.asarray(indicators)
        expected = total_layers - MIN_EXIT_POSITION
        if len(indicators) != expected:
            raise ValueError(f"expected {expected} indicators, got {len(indicators)}")
        positions = tuple(int(i + MIN_EXIT_POSITION) for i in np.flatnonzero(indicators))
        return cls(total_layers=total_layers, positions=positions)

    def relative_depths(self) -> np.ndarray:
        """Exit positions as fractions of the full depth (u_i in (0, 1))."""
        return np.asarray(self.positions, dtype=float) / self.total_layers

    @cached_property
    def key(self) -> str:
        # cached_property writes straight into __dict__, which frozen
        # dataclasses permit — placements are immutable, keys are hot
        # (evaluation caches, oracle memos), so build the string once.
        return "x" + "-".join(str(p) for p in self.positions)


class ExitSpace:
    """The X subspace for a backbone with ``total_layers`` MBConv layers."""

    def __init__(self, total_layers: int):
        if total_layers < MIN_EXIT_POSITION + 1:
            raise ValueError(
                f"backbone must have at least {MIN_EXIT_POSITION + 1} layers to host "
                f"an exit, got {total_layers}"
            )
        self.total_layers = total_layers

    @property
    def num_slots(self) -> int:
        """Number of candidate positions (indicator-vector length)."""
        return self.total_layers - MIN_EXIT_POSITION

    @property
    def max_exits(self) -> int:
        """Paper Table II: max(n_X) = Σ l_i − 5."""
        return self.num_slots

    def cardinality(self) -> int:
        """Number of non-empty exit subsets: 2^slots − 1."""
        return 2**self.num_slots - 1

    def count_with_exits(self, n: int) -> int:
        """Number of placements with exactly ``n`` exits (Table II binomial)."""
        return comb(self.num_slots, n)

    def sample(self, rng=None, density: float = 0.35) -> ExitPlacement:
        """Random placement: each slot on with probability ``density``
        (repaired to ensure at least one exit)."""
        rng = make_rng(rng)
        indicators = (rng.random(self.num_slots) < density).astype(np.int64)
        if indicators.sum() == 0:
            indicators[rng.integers(0, self.num_slots)] = 1
        return ExitPlacement.from_indicators(self.total_layers, indicators)

    def repair(self, indicators: np.ndarray, rng=None) -> np.ndarray:
        """Force validity: at least one active indicator."""
        indicators = np.asarray(indicators).astype(np.int64).clip(0, 1)
        if indicators.sum() == 0:
            rng = make_rng(rng)
            indicators = indicators.copy()
            indicators[rng.integers(0, len(indicators))] = 1
        return indicators
