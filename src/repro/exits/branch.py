"""The fixed exit-branch structure (paper §IV-B1).

One sequential computing block — convolution, batch normalisation, activation
— followed by global pooling and a classifier.  The paper fixes this simple
structure across all positions for re-usability, small search overhead, and
cheap training.
"""

from __future__ import annotations

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    Module,
    Swish,
)
from repro.nn.tensor import Tensor
from repro.utils.rng import child_rng


class ExitBranch(Module):
    """conv3x3 -> BN -> Swish -> GAP -> Linear classifier."""

    def __init__(
        self,
        in_channels: int,
        num_classes: int,
        branch_width: int | None = None,
        seed: int = 0,
    ):
        super().__init__()
        width = branch_width or in_channels
        rng_conv = child_rng(seed, "exit-conv")
        rng_fc = child_rng(seed, "exit-fc")
        self.conv = Conv2d(in_channels, width, 3, rng=rng_conv)
        self.bn = BatchNorm2d(width)
        self.act = Swish()
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(width, num_classes, rng=rng_fc)
        self.in_channels = in_channels
        self.width = width
        self.num_classes = num_classes

    def forward(self, features: Tensor) -> Tensor:
        h = self.act(self.bn(self.conv(features)))
        return self.fc(self.pool(h))
