"""Frozen-backbone exit training with the hybrid NLL + KD loss (paper eq. 4).

The backbone's weights stay frozen so its static accuracy is untouched; only
the exit branches receive gradients.  Every exit trains simultaneously
against ground truth (NLL) and against the final classifier's soft targets
(knowledge distillation), exactly the combination of paper eq. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exits.evaluation import ExitEvaluation, evaluate_exit_logits
from repro.exits.multi_exit import MultiExitNetwork
from repro.nn.dataloader import DataLoader
from repro.nn.losses import multi_exit_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.utils.rng import child_rng


@dataclass
class ExitTrainingResult:
    """Loss trace plus held-out evaluation of the trained exits."""

    steps: int
    losses: list[float] = field(default_factory=list)
    evaluation: ExitEvaluation | None = None

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def train_exits(
    network: MultiExitNetwork,
    train_images: np.ndarray,
    train_labels: np.ndarray,
    eval_images: np.ndarray | None = None,
    eval_labels: np.ndarray | None = None,
    steps: int = 80,
    batch_size: int = 32,
    lr: float = 2e-3,
    kd_weight: float = 1.0,
    temperature: float = 4.0,
    seed: int = 0,
) -> ExitTrainingResult:
    """Train the exit heads of ``network``; backbone stays frozen.

    Returns the loss trace and, when an eval split is given, the
    ideal-mapping :class:`~repro.exits.evaluation.ExitEvaluation`.
    """
    params = network.exit_parameters()
    if not params:
        raise ValueError("network has no trainable exit parameters (all frozen?)")
    optimizer = Adam(params, lr=lr)
    loader = DataLoader(
        train_images, train_labels, batch_size=batch_size, shuffle=True,
        rng=child_rng(seed, "exit-train-loader"),
    )
    result = ExitTrainingResult(steps=steps)

    batches = iter(loader)
    for _ in range(steps):
        try:
            batch_x, batch_y = next(batches)
        except StopIteration:
            batches = iter(loader)
            batch_x, batch_y = next(batches)
        exit_logits, final_logits = network(Tensor(batch_x))
        loss = multi_exit_loss(
            exit_logits,
            final_logits.detach(),
            batch_y,
            kd_weight=kd_weight,
            temperature=temperature,
        )
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        result.losses.append(loss.item())

    if eval_images is not None and eval_labels is not None:
        stacked, final = network.predict_all(eval_images)
        result.evaluation = evaluate_exit_logits(stacked, final, eval_labels)
    return result
