"""Early-exit machinery: the X subspace, exit branches, training, evaluation.

The X subspace (paper §IV-B1, Table II) is conditioned on a backbone: exits
may attach after any MBConv layer from position 5 up to the penultimate
layer, encoded as an indicator vector [I_5 .. I_{L-1}].  The exit branch
structure is fixed — one conv-BN-activation block plus a classifier — for
re-usability, small search overhead, and cheap training (paper's three
stated reasons).

Two evaluation paths share one interface:

* the *trainable* path (:mod:`~repro.exits.multi_exit`,
  :mod:`~repro.exits.training`) builds real numpy networks, trains exits with
  the frozen-backbone hybrid NLL+KD loss (eq. 4) and measures exit accuracy;
* the *surrogate* path (:mod:`repro.accuracy.exit_model`) produces the same
  per-exit correctness statistics analytically for CIFAR-100-scale search.
"""

from repro.exits.branch import ExitBranch
from repro.exits.evaluation import ExitEvaluation, evaluate_exit_logits, ideal_mapping_stats
from repro.exits.multi_exit import MultiExitNetwork
from repro.exits.placement import MIN_EXIT_POSITION, ExitPlacement, ExitSpace
from repro.exits.training import ExitTrainingResult, train_exits

__all__ = [
    "MIN_EXIT_POSITION",
    "ExitPlacement",
    "ExitSpace",
    "ExitBranch",
    "MultiExitNetwork",
    "train_exits",
    "ExitTrainingResult",
    "ExitEvaluation",
    "evaluate_exit_logits",
    "ideal_mapping_stats",
]
