"""Random-search baseline over any :class:`~repro.search.nsga2.Problem`.

NAS papers are expected to beat random search at equal budget; this engine
provides that comparison for both HADAS levels (bench_ablations exercises
it).  It shares the Problem interface and produces the same artefacts
(history + Pareto archive), so results are directly comparable with NSGA-II.
"""

from __future__ import annotations

import numpy as np

from repro.search.archive import ParetoArchive
from repro.search.individual import Individual
from repro.search.nsga2 import Problem, evaluate_genomes, rank_and_crowd
from repro.utils.rng import make_rng


class RandomSearch:
    """Uniform random sampling at a fixed evaluation budget.

    When an :class:`~repro.engine.service.EvaluationService` is supplied,
    the whole budget is evaluated as one batch through it (sampling is
    independent of evaluation results, so the RNG stream — and therefore
    every sampled genome — is unchanged).
    """

    def __init__(self, problem: Problem, budget: int, rng=None, service=None):
        if budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        self.problem = problem
        self.budget = budget
        self.rng = make_rng(rng)
        self.service = service
        self.history: list[Individual] = []
        self.num_evaluations = 0
        self._seen: set[tuple] = set()

    def run(self) -> list[Individual]:
        """Sample/evaluate until the budget is consumed; returns history.

        Duplicate genomes are re-sampled (up to a bounded number of retries)
        so the budget buys distinct evaluations, mirroring the NSGA-II
        engine's evaluation cache.
        """
        genomes: list[np.ndarray] = []
        # Only the unspent budget is sampled, so a repeated run() remains a
        # no-op (as with the pre-batching evaluate-as-you-go loop).
        while len(genomes) < self.budget - self.num_evaluations:
            genome = np.asarray(self.problem.sample(self.rng), dtype=np.int64)
            key = tuple(genome.tolist())
            retries = 0
            while key in self._seen and retries < 10:
                genome = np.asarray(self.problem.sample(self.rng), dtype=np.int64)
                key = tuple(genome.tolist())
                retries += 1
            self._seen.add(key)
            genomes.append(genome)
        # The whole budget lands in the problem's batch hook — for the IOE
        # problem that is one fused accuracy+cost kernel pass per distinct
        # DVFS setting, not per-candidate oracle calls.
        outputs = evaluate_genomes(self.problem, genomes, self.service)
        for genome, (objectives, payload) in zip(genomes, outputs):
            self.history.append(
                Individual(
                    genome=genome,
                    objectives=np.asarray(objectives, dtype=float),
                    payload=dict(payload),
                )
            )
            self.num_evaluations += 1
        rank_and_crowd(self.history)
        return self.history

    def pareto(self) -> ParetoArchive:
        """Non-dominated subset of everything sampled."""
        archive = ParetoArchive()
        archive.add_all(self.history)
        return archive
