"""Genetic variation operators for integer genomes.

All operators take/return plain int64 vectors and an explicit generator —
no global random state.  Bounds are exclusive upper limits per gene (the
``gene_bounds`` arrays of the search spaces).
"""

from __future__ import annotations

import numpy as np


def uniform_crossover(
    a: np.ndarray, b: np.ndarray, rng: np.random.Generator, swap_prob: float = 0.5
) -> tuple[np.ndarray, np.ndarray]:
    """Per-gene swap with probability ``swap_prob``; returns two children."""
    if a.shape != b.shape:
        raise ValueError(f"parent genomes differ in shape: {a.shape} vs {b.shape}")
    mask = rng.random(len(a)) < swap_prob
    child_a = np.where(mask, b, a).astype(np.int64)
    child_b = np.where(mask, a, b).astype(np.int64)
    return child_a, child_b


def two_point_crossover(
    a: np.ndarray, b: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Classic two-point crossover."""
    if a.shape != b.shape:
        raise ValueError(f"parent genomes differ in shape: {a.shape} vs {b.shape}")
    n = len(a)
    if n < 2:
        return a.copy(), b.copy()
    i, j = sorted(rng.choice(n, size=2, replace=False))
    child_a, child_b = a.copy(), b.copy()
    child_a[i:j] = b[i:j]
    child_b[i:j] = a[i:j]
    return child_a, child_b


def reset_mutation(
    genome: np.ndarray,
    bounds: np.ndarray,
    rng: np.random.Generator,
    prob: float | None = None,
) -> np.ndarray:
    """Resample each gene uniformly with probability ``prob`` (default 1/G)."""
    genome = genome.copy()
    prob = prob if prob is not None else 1.0 / max(len(genome), 1)
    mask = rng.random(len(genome)) < prob
    if mask.any():
        fresh = (rng.random(len(genome)) * bounds).astype(np.int64)
        genome[mask] = fresh[mask]
    return genome


def creep_mutation(
    genome: np.ndarray,
    bounds: np.ndarray,
    rng: np.random.Generator,
    prob: float | None = None,
) -> np.ndarray:
    """Move each gene ±1 (clipped) with probability ``prob`` — suited to
    ordered spaces such as DVFS frequency indices."""
    genome = genome.copy()
    prob = prob if prob is not None else 1.0 / max(len(genome), 1)
    mask = rng.random(len(genome)) < prob
    steps = rng.choice([-1, 1], size=len(genome))
    genome[mask] = np.clip(genome[mask] + steps[mask], 0, bounds[mask] - 1)
    return genome


def bitflip_mutation(
    bits: np.ndarray, rng: np.random.Generator, prob: float | None = None
) -> np.ndarray:
    """Flip each 0/1 gene with probability ``prob`` (default 1/G)."""
    bits = bits.copy()
    prob = prob if prob is not None else 1.0 / max(len(bits), 1)
    mask = rng.random(len(bits)) < prob
    bits[mask] = 1 - bits[mask]
    return bits
