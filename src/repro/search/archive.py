"""A Pareto archive of every non-dominated candidate seen during a run."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.metrics.pareto import crowding_distance, non_dominated_mask
from repro.search.individual import Individual


class ParetoArchive:
    """Maintains the non-dominated set over a stream of individuals.

    Duplicated genomes are kept once (first wins).  When ``max_size`` is set,
    the archive is truncated by crowding distance so the retained subset
    stays spread across the front.

    The archive mirrors its members' objectives in a stacked float matrix
    so each :meth:`add` is two broadcast comparisons against the whole
    membership instead of a Python loop of pairwise dominance tests —
    ``add_all`` over a search history is a hot path at paper budgets.
    Insertion stays sequential (the key-dedupe/eviction semantics are
    order-dependent), only the inner dominance scans are batched, so the
    resulting membership is identical to the scalar loop's.
    """

    def __init__(self, max_size: int | None = None):
        self.max_size = max_size
        self._items: list[Individual] = []
        self._keys: set[tuple] = set()
        self._objs: np.ndarray | None = None  # (capacity, m) mirror; rows [:len] live

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    @property
    def items(self) -> list[Individual]:
        return list(self._items)

    def objectives(self) -> np.ndarray:
        """Stacked objective matrix of the archive (n, m)."""
        if not self._items:
            return np.zeros((0, 0))
        assert self._objs is not None
        return self._objs[: len(self._items)].copy()

    def _append_obj(self, obj: np.ndarray) -> None:
        n = len(self._items) - 1  # row index for the member just appended
        if self._objs is None or self._objs.shape[1] != obj.shape[0]:
            self._objs = np.empty((max(16, n + 1), obj.shape[0]))
        elif n >= self._objs.shape[0]:
            grown = np.empty((2 * self._objs.shape[0], self._objs.shape[1]))
            grown[:n] = self._objs[:n]
            self._objs = grown
        self._objs[n] = obj

    def add(self, individual: Individual) -> bool:
        """Insert if non-dominated; evict newly dominated members.

        Returns True when the individual enters the archive.
        """
        if not individual.evaluated:
            raise ValueError("cannot archive an unevaluated individual")
        if individual.key() in self._keys:
            return False
        obj = np.asarray(individual.objectives, dtype=float)
        if self._items:
            assert self._objs is not None
            objs = self._objs[: len(self._items)]
            ge = (objs >= obj).all(axis=1)  # member >= candidate everywhere
            le = (objs <= obj).all(axis=1)  # candidate >= member everywhere
            if bool((ge & ~le).any()):  # some member strictly dominates it
                return False
            dominated = le & ~ge  # members the candidate strictly dominates
            if bool(dominated.any()):
                keep = np.flatnonzero(~dominated)
                evicted_items = [self._items[i] for i in np.flatnonzero(dominated)]
                self._keys -= {m.key() for m in evicted_items}
                self._items = [self._items[i] for i in keep]
                self._objs[: len(self._items)] = objs[keep]
        self._items.append(individual)
        self._keys.add(individual.key())
        self._append_obj(obj)
        self._truncate()
        return True

    def add_all(self, individuals: list[Individual]) -> int:
        """Insert many; returns how many entered."""
        return sum(1 for ind in individuals if self.add(ind))

    def _truncate(self) -> None:
        if self.max_size is None or len(self._items) <= self.max_size:
            return
        objs = self.objectives()
        crowd = crowding_distance(objs)
        order = np.argsort(-crowd, kind="stable")[: self.max_size]
        keep = sorted(order.tolist())
        self._items = [self._items[i] for i in keep]
        self._keys = {m.key() for m in self._items}
        assert self._objs is not None
        self._objs[: len(keep)] = objs[keep]

    def front(self) -> np.ndarray:
        """Objective matrix (already non-dominated by construction)."""
        objs = self.objectives()
        if objs.size == 0:
            return objs
        return objs[non_dominated_mask(objs)]

    def best_by(self, scalarizer) -> Individual:
        """Archive member maximising ``scalarizer(individual)``."""
        if not self._items:
            raise ValueError("archive is empty")
        return max(self._items, key=scalarizer)
