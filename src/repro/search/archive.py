"""A Pareto archive of every non-dominated candidate seen during a run."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.metrics.pareto import crowding_distance, dominates, non_dominated_mask
from repro.search.individual import Individual


class ParetoArchive:
    """Maintains the non-dominated set over a stream of individuals.

    Duplicated genomes are kept once (first wins).  When ``max_size`` is set,
    the archive is truncated by crowding distance so the retained subset
    stays spread across the front.
    """

    def __init__(self, max_size: int | None = None):
        self.max_size = max_size
        self._items: list[Individual] = []
        self._keys: set[tuple] = set()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    @property
    def items(self) -> list[Individual]:
        return list(self._items)

    def objectives(self) -> np.ndarray:
        """Stacked objective matrix of the archive (n, m)."""
        if not self._items:
            return np.zeros((0, 0))
        return np.stack([ind.objectives for ind in self._items])

    def add(self, individual: Individual) -> bool:
        """Insert if non-dominated; evict newly dominated members.

        Returns True when the individual enters the archive.
        """
        if not individual.evaluated:
            raise ValueError("cannot archive an unevaluated individual")
        if individual.key() in self._keys:
            return False
        obj = individual.objectives
        survivors = []
        for member in self._items:
            if dominates(member.objectives, obj):
                return False
            if not dominates(obj, member.objectives):
                survivors.append(member)
        evicted = {m.key() for m in self._items} - {m.key() for m in survivors}
        self._keys -= evicted
        survivors.append(individual)
        self._keys.add(individual.key())
        self._items = survivors
        self._truncate()
        return True

    def add_all(self, individuals: list[Individual]) -> int:
        """Insert many; returns how many entered."""
        return sum(1 for ind in individuals if self.add(ind))

    def _truncate(self) -> None:
        if self.max_size is None or len(self._items) <= self.max_size:
            return
        objs = self.objectives()
        crowd = crowding_distance(objs)
        order = np.argsort(-crowd, kind="stable")[: self.max_size]
        keep = sorted(order.tolist())
        self._items = [self._items[i] for i in keep]
        self._keys = {m.key() for m in self._items}

    def front(self) -> np.ndarray:
        """Objective matrix (already non-dominated by construction)."""
        objs = self.objectives()
        if objs.size == 0:
            return objs
        return objs[non_dominated_mask(objs)]

    def best_by(self, scalarizer) -> Individual:
        """Archive member maximising ``scalarizer(individual)``."""
        if not self._items:
            raise ValueError("archive is empty")
        return max(self._items, key=scalarizer)
