"""``repro search`` — run the bi-level HADAS search and export the design.

Usage::

    repro search --platform tx2-gpu --out hadas-design.json
    repro search --budget tiny --seed 3 --out design.json
    repro search --budget paper --workers 8 --cache-dir .cache/engine

The written artifact carries the selected (B, X, F) design (plus the
search's accuracy numbers) in the format ``repro serve --from-result``
mounts, closing the loop::

    repro search --budget tiny --out design.json && \\
    repro serve --from-result design.json --fleet tx2,xavier --router difficulty_aware
"""

from __future__ import annotations

import argparse
import dataclasses
import time

from repro.hardware.platform import PAPER_PLATFORM_ORDER, canonical_platform_key, validate_platform_keys
from repro.search.hadas import HadasConfig, HadasSearch

#: Named search budgets: (outer pop, outer gens, inner pop, inner gens, ioe
#: candidates, oracle samples).  "tiny" exists for smoke tests and the
#: search→serve round trip; "fast" matches the test/bench profile; "paper"
#: is the 450/3500-iteration budget.
BUDGETS = {
    "tiny": (6, 2, 6, 3, 1, 256),
    "fast": (16, 5, 16, 6, 4, 2048),
    "paper": (30, 15, 50, 70, 5, 2048),
}


def build_config(args: argparse.Namespace) -> HadasConfig:
    """Lower parsed CLI arguments to a :class:`HadasConfig`."""
    outer_pop, outer_gen, inner_pop, inner_gen, candidates, samples = BUDGETS[args.budget]
    return HadasConfig(
        platform=args.platform,
        seed=args.seed,
        gamma=args.gamma,
        outer_population=outer_pop,
        outer_generations=outer_gen,
        inner_population=inner_pop,
        inner_generations=inner_gen,
        ioe_candidates=candidates,
        oracle_samples=samples,
        workers=args.workers,
        executor=args.executor,
        cache_dir=args.cache_dir,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro search",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--platform", default="tx2-gpu",
                        help=f"one of: {', '.join(PAPER_PLATFORM_ORDER)} (aliases ok)")
    parser.add_argument("--budget", default="fast", choices=sorted(BUDGETS),
                        help="search budget preset (tiny/fast/paper)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--gamma", type=float, default=1.0,
                        help="dissimilarity exponent (0 disables)")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--executor", default="auto",
                        choices=["auto", "serial", "thread", "process"])
    parser.add_argument("--cache-dir", default=None,
                        help="persistent evaluation-result cache directory")
    parser.add_argument("--out", default="hadas-design.json",
                        help="write the selected design artifact here")
    parser.add_argument("--trace", default=None, metavar="OUT.jsonl",
                        help="record a trace + run manifest of the search "
                             "(inspect with `python -m repro trace summary`)")
    args = parser.parse_args(argv)

    args.platform = canonical_platform_key(args.platform)
    try:
        validate_platform_keys([args.platform])
    except ValueError as error:
        parser.error(str(error))
    if args.workers <= 0:
        parser.error(f"--workers must be > 0, got {args.workers}")

    config = build_config(args)
    from repro.obs.cli import traced_run

    with traced_run(
        args.trace,
        command="repro search " + " ".join(argv or []),
        config=config,
        seed=args.seed,
        platforms=[args.platform],
    ):
        search = HadasSearch(config)
        start = time.perf_counter()
        try:
            result = search.run()
        except BaseException:
            search.close(cancel=True)  # drop queued work; leak no pool workers
            raise
        search.close()
        elapsed = time.perf_counter() - start

    design = result.deployed_design()
    static_evals, dynamic_evals = result.num_evaluations
    print(
        f"search done in {elapsed:.1f}s on {config.platform} "
        f"({static_evals} static / {dynamic_evals} dynamic evaluations, "
        f"{len(result.dynn_pareto())} Pareto DyNNs)"
    )
    print(design.describe())
    print(
        f"  dynamic accuracy {design.dynamic_accuracy * 100:.1f}%  "
        f"energy {design.dynamic_energy_j * 1e3:.1f} mJ  D={design.d_score:.3f}"
    )

    if args.out:
        from repro.serving.deploy import save_design

        path = save_design(
            design,
            args.out,
            extra={
                "config": dataclasses.asdict(config),
                "search": {
                    "elapsed_s": elapsed,
                    "static_evaluations": static_evals,
                    "dynamic_evaluations": dynamic_evals,
                    "pareto_size": len(result.dynn_pareto()),
                },
            },
        )
        print(f"wrote {path}")
    return 0
