"""Outer Optimization Engine: NSGA-II over the backbone space B.

Reproduces the paper's Fig. 3 outer loop:

1. generate a backbone population P_B from the (pretrained-supernet) space;
2. static fitness S(b) = (accuracy, latency, energy) at default clocks;
3. **early selection** — non-dominated rank (ties by crowding) prunes to
   P'_B, so only promising backbones pay the cost of an inner-engine run;
4. invoke an IOE per surviving backbone and aggregate its dynamic Pareto;
5. **second selection** on the combined S and D scores picks P''_B;
6. P''_B undergoes crossover/mutation into the next generation.

Two global archives accumulate over the run: the static 3-D backbone Pareto
(Fig. 5 top) and the dynamic (B, X, F) Pareto over
(dynamic accuracy, energy gain, latency gain) (Fig. 5 bottom).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.arch.config import BackboneConfig
from repro.arch.space import BackboneSpace
from repro.engine.service import EvalTask, EvaluationService
from repro.eval.static import StaticEvaluation, StaticEvaluator
from repro.obs import trace
from repro.search import operators
from repro.search.archive import ParetoArchive
from repro.search.individual import Individual
from repro.search.ioe import InnerResult
from repro.search.nsga2 import Nsga2Config, Problem, environmental_selection, rank_and_crowd
from repro.utils.rng import child_rng
from repro.utils.validation import check_positive


class _BackboneProblem(Problem):
    """Backbone genome handling + static evaluation.

    ``spec_context`` (platform / num_classes / seed / cache_dir) marks the
    evaluator stack as reconstructible from data: when set and the service
    prefers specs, population batches are lowered to ``static-backbone``
    task specs so worker processes rebuild the evaluator instead of
    receiving this problem's whole object graph.
    """

    def __init__(
        self,
        space: BackboneSpace,
        evaluator: StaticEvaluator,
        spec_context: dict | None = None,
    ):
        self.space = space
        self.evaluator = evaluator
        self.spec_context = spec_context
        self._bounds = space.gene_bounds()

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return self.space.sample_genome(rng)

    def evaluate(self, genome: np.ndarray):
        config = self.space.decode(genome)
        static = self.evaluator.evaluate(config)
        return np.asarray(static.objectives()), {"config": config, "static": static}

    def task_specs(self, genomes):
        if self.spec_context is None:
            return None
        from repro.engine.tasks import task_spec

        return [
            task_spec(
                "static-backbone",
                genome=tuple(int(gene) for gene in genome),
                **self.spec_context,
            )
            for genome in genomes
        ]

    def crossover(self, a, b, rng):
        if rng.random() < 0.5:
            return operators.uniform_crossover(a, b, rng)
        return operators.two_point_crossover(a, b, rng)

    def mutate(self, genome, rng):
        mutated = operators.reset_mutation(genome, self._bounds, rng, prob=0.12)
        return operators.creep_mutation(mutated, self._bounds, rng, prob=0.08)


@dataclass
class OuterResult:
    """Everything the outer loop accumulated."""

    static_archive: ParetoArchive
    dynamic_archive: ParetoArchive
    inner_results: dict[str, InnerResult] = field(default_factory=dict)
    explored: list[Individual] = field(default_factory=list)
    generations: int = 0
    num_static_evaluations: int = 0
    num_dynamic_evaluations: int = 0

    def static_points(self, explored: bool = True) -> np.ndarray:
        """(accuracy %, energy J) pairs of explored backbones (Fig. 5 top)."""
        source = self.explored if explored else self.static_archive.items
        return np.asarray(
            [
                (ind.payload["static"].accuracy, ind.payload["static"].energy_j)
                for ind in source
            ]
        )

    def dynamic_points(self, source: str = "inner") -> np.ndarray:
        """(energy gain, mean N_i) pairs — the paper's Fig. 5 bottom axes.

        ``source="inner"`` pools every IOE Pareto set (the per-backbone
        relative-gain fronts, exactly what the paper's bottom row plots);
        ``source="archive"`` reads the global deployment archive instead.
        """
        if source == "inner":
            points = [
                (
                    member.payload["evaluation"].energy_gain,
                    member.payload["evaluation"].mean_n_i,
                )
                for inner in self.inner_results.values()
                for member in inner.pareto
            ]
        elif source == "archive":
            points = [
                (
                    ind.payload["evaluation"].energy_gain,
                    ind.payload["evaluation"].mean_n_i,
                )
                for ind in self.dynamic_archive
            ]
        else:
            raise ValueError(f"unknown source {source!r}")
        return np.asarray(points) if points else np.zeros((0, 2))


class OuterEngine:
    """The bi-level outer loop (invokes a caller-supplied IOE factory).

    Parameters
    ----------
    space, evaluator:
        The B subspace and the static evaluator S(b).
    run_inner:
        Callable ``(BackboneConfig, StaticEvaluation) -> InnerResult``; the
        HADAS facade wires this to :class:`~repro.search.ioe.InnerEngine`.
    nsga:
        Outer budget; paper uses 450 iterations (= generations x population).
    ioe_candidates:
        Size of P'_B — backbones per generation granted an inner run.
    service:
        Evaluation service carrying the executor and result cache.  Static
        population evaluations and the generation's inner-engine runs are
        submitted through it as batches; inner runs within a generation are
        embarrassingly parallel (each is seeded by its backbone key), so a
        multi-worker service overlaps them without changing any result.
    inner_task:
        Optional factory lowering one inner run to an :class:`EvalTask`
        (the HADAS facade supplies codec-backed specs plus persistent cache
        keys here); the default wraps ``run_inner`` as a closure task.
    spec_context:
        Optional static-evaluation codec context forwarded to the backbone
        problem (see :class:`_BackboneProblem`).
    """

    def __init__(
        self,
        space: BackboneSpace,
        evaluator: StaticEvaluator,
        run_inner: Callable[[BackboneConfig, StaticEvaluation], InnerResult],
        nsga: Nsga2Config | None = None,
        ioe_candidates: int = 4,
        seed: int = 0,
        service: EvaluationService | None = None,
        inner_task: Callable[[BackboneConfig, StaticEvaluation], EvalTask] | None = None,
        spec_context: dict | None = None,
    ):
        check_positive("ioe_candidates", ioe_candidates)
        self.space = space
        self.evaluator = evaluator
        self.run_inner = run_inner
        self.inner_task = inner_task or (
            lambda config, static: EvalTask(self.run_inner, (config, static))
        )
        self.nsga_config = nsga or Nsga2Config(population=16, generations=6)
        self.ioe_candidates = ioe_candidates
        self.seed = seed
        self.service = service or EvaluationService()
        self.problem = _BackboneProblem(space, evaluator, spec_context=spec_context)

    # ------------------------------------------------------------ internals
    def _combined_objectives(self, individual: Individual, inner: InnerResult) -> np.ndarray:
        """Combined S and D vector used by the second selection."""
        static: StaticEvaluation = individual.payload["static"]
        best_eval = inner.best.payload["evaluation"]
        return np.asarray(
            [
                static.accuracy,
                -static.energy_j,
                best_eval.energy_gain,
                best_eval.d_score,
            ]
        )

    def _dynamic_individuals(self, backbone: Individual, inner: InnerResult) -> list[Individual]:
        """Lift IOE Pareto members into (B, X, F) archive individuals.

        The global archive ranks deployment candidates, so its objectives
        are *absolute*: dynamic accuracy, dynamic energy and dynamic latency
        under ideal mapping (the per-backbone relative gains of the IOE are
        not comparable across backbones of different size).
        """
        lifted = []
        for member in inner.pareto:
            evaluation = member.payload["evaluation"]
            genome = np.concatenate([backbone.genome, member.genome])
            lifted.append(
                Individual(
                    genome=genome,
                    objectives=np.asarray(
                        [
                            evaluation.dynamic_accuracy,
                            -evaluation.dynamic_energy_j,
                            -evaluation.dynamic_latency_s,
                        ]
                    ),
                    payload={
                        "config": backbone.payload["config"],
                        "static": backbone.payload["static"],
                        "evaluation": evaluation,
                    },
                )
            )
        return lifted

    # ----------------------------------------------------------------- run
    def run(self) -> OuterResult:
        """Execute the full bi-level outer loop."""
        from repro.search.nsga2 import NSGA2  # local import to reuse machinery

        engine = NSGA2(
            self.problem,
            self.nsga_config,
            rng=child_rng(self.seed, "ooe"),
            service=self.service,
        )
        result = OuterResult(
            static_archive=ParetoArchive(), dynamic_archive=ParetoArchive()
        )

        with trace.span("ooe.generation", generation=0):
            population = engine._initial_population()
        rank_and_crowd(population)
        engine.history.extend(population)

        for generation in range(self.nsga_config.generations):
            with trace.span("ooe.generation", generation=generation + 1):
                # Early selection: P'_B — best-ranked backbones get an IOE run.
                rank_and_crowd(population)
                pruned = sorted(population, key=lambda ind: (ind.rank, -ind.crowding))
                pruned = pruned[: self.ioe_candidates]

                # Inner runs + aggregation of dynamic evaluations.  All inner
                # runs of a generation are submitted as one batch: each is a
                # pure function of (backbone, seed), so the service may overlap
                # them across workers while results stay identical to serial.
                fresh: dict[str, Individual] = {}
                for backbone in pruned:
                    config: BackboneConfig = backbone.payload["config"]
                    if config.key not in result.inner_results:
                        fresh.setdefault(config.key, backbone)
                trace.count("ooe.inner_runs", len(fresh))
                trace.count("ooe.inner_memoized", len(pruned) - len(fresh))
                if fresh:
                    inners = self.service.evaluate_batch(
                        [
                            self.inner_task(ind.payload["config"], ind.payload["static"])
                            for ind in fresh.values()
                        ]
                    )
                    for backbone, inner in zip(fresh.values(), inners):
                        result.inner_results[backbone.payload["config"].key] = inner
                        result.num_dynamic_evaluations += inner.num_evaluations
                        result.dynamic_archive.add_all(
                            self._dynamic_individuals(backbone, inner)
                        )
                combined: list[tuple[Individual, np.ndarray]] = []
                for backbone in pruned:
                    inner = result.inner_results[backbone.payload["config"].key]
                    combined.append((backbone, self._combined_objectives(backbone, inner)))

                # Second selection on combined S+D scores -> P''_B.
                lifted = [
                    Individual(genome=ind.genome, objectives=obj, payload=ind.payload)
                    for ind, obj in combined
                ]
                survivors = environmental_selection(lifted, max(2, len(lifted) // 2))
                survivor_inds = [
                    next(ind for ind, _ in combined if ind.key() == s.key())
                    for s in survivors
                ]

                if generation == self.nsga_config.generations - 1:
                    break

                # Variation: P''_B parents -> next generation.
                rank_and_crowd(survivor_inds)
                offspring = engine.make_offspring(
                    survivor_inds if len(survivor_inds) >= 2 else population
                )
                engine.history.extend(offspring)
                population = environmental_selection(
                    population + offspring, self.nsga_config.population
                )

        result.explored = engine.history
        result.static_archive.add_all(engine.history)
        result.generations = self.nsga_config.generations
        result.num_static_evaluations = engine.num_evaluations
        return result
