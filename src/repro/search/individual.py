"""Search individuals: genome + objectives + payload."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass(eq=False)
class Individual:
    """One evaluated candidate in a population.

    Equality is identity (``eq=False``): genomes are numpy arrays, so
    field-wise dataclass equality would be ill-defined; use :meth:`key`
    to compare genome content.

    Attributes
    ----------
    genome:
        Integer decision vector (meaning defined by the owning problem).
    objectives:
        Maximisation objective vector (filled by evaluation).
    payload:
        Problem-specific artefacts (decoded config, evaluations, ...).
    rank, crowding:
        NSGA-II bookkeeping (front index, crowding distance).
    """

    genome: np.ndarray
    objectives: np.ndarray | None = None
    payload: dict[str, Any] = field(default_factory=dict)
    rank: int = -1
    crowding: float = 0.0

    @property
    def evaluated(self) -> bool:
        return self.objectives is not None

    def copy_genome(self) -> np.ndarray:
        return np.array(self.genome, dtype=np.int64, copy=True)

    def key(self) -> tuple:
        """Hashable genome identity (for de-duplication).

        ``ndarray.tolist`` yields the same Python ints as the older
        per-element ``int(g)`` generator, in one C call — this runs once
        per archive/dedup touch, which is hundreds of thousands of times
        in a paper-budget search.
        """
        genome = self.genome
        if isinstance(genome, np.ndarray):
            return tuple(genome.tolist())
        return tuple(int(g) for g in genome)
