"""The HADAS co-optimisation framework (paper §IV, Fig. 3).

* :mod:`~repro.search.nsga2` — a from-scratch NSGA-II (fast non-dominated
  sort, crowding distance, binary tournament, elitist environmental
  selection) over integer genomes;
* :mod:`~repro.search.operators` — uniform/two-point crossover, per-gene
  reset and creep mutation, indicator-vector repair;
* :mod:`~repro.search.ooe` — the Outer Optimization Engine over B;
* :mod:`~repro.search.ioe` — the Inner Optimization Engine over (X, F),
  scoring with eqs. 5–7;
* :mod:`~repro.search.hadas` — the bi-level driver gluing OOE and IOE,
  the library's main entry point (:class:`~repro.search.hadas.HadasSearch`).
"""

from repro.search.archive import ParetoArchive
from repro.search.hadas import HadasConfig, HadasResult, HadasSearch
from repro.search.individual import Individual
from repro.search.ioe import InnerEngine, InnerResult
from repro.search.nsga2 import NSGA2, Nsga2Config, Problem
from repro.search.ooe import OuterEngine, OuterResult

__all__ = [
    "Individual",
    "Problem",
    "Nsga2Config",
    "NSGA2",
    "ParetoArchive",
    "InnerEngine",
    "InnerResult",
    "OuterEngine",
    "OuterResult",
    "HadasConfig",
    "HadasResult",
    "HadasSearch",
]
