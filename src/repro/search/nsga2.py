"""NSGA-II over integer genomes (Deb et al., 2002), from scratch.

The engine is generic: a :class:`Problem` supplies sampling, evaluation and
variation; the engine supplies non-dominated sorting, crowding, binary
tournament mating selection and elitist environmental selection.  Both HADAS
engines (OOE and IOE) instantiate it with their own problems; the OOE
additionally intercepts the loop for its two-stage selection (see
:mod:`repro.search.ooe`).

Generation batches flow through :func:`evaluate_genomes` →
:meth:`Problem.evaluate_batch`, which is how population-fused problems (the
IOE's fused accuracy+cost kernel) receive whole generations; the sorting/
crowding bookkeeping itself runs on the vectorized dominance-matrix
primitives in :mod:`repro.metrics.pareto`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.metrics.pareto import crowding_distance, non_dominated_sort
from repro.obs import trace
from repro.search.individual import Individual
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive


class Problem:
    """Interface the NSGA-II engine optimises against (maximisation)."""

    def sample(self, rng: np.random.Generator) -> np.ndarray:  # pragma: no cover
        """Return a fresh random genome."""
        raise NotImplementedError

    def evaluate(self, genome: np.ndarray) -> tuple[np.ndarray, dict]:  # pragma: no cover
        """Return (objective vector to maximise, payload dict)."""
        raise NotImplementedError

    def evaluate_batch(self, genomes: list[np.ndarray]) -> list[tuple[np.ndarray, dict]]:
        """Evaluate many genomes; results in input order.

        The default delegates to :meth:`evaluate` serially.  Engines route
        whole populations through this hook (or an
        :class:`~repro.engine.service.EvaluationService` when one is
        attached), so problems backed by batchable evaluators can override
        it without touching the search loop.
        """
        return [self.evaluate(genome) for genome in genomes]

    def task_specs(self, genomes: list[np.ndarray]):
        """Optional codec lowering: one ``TaskSpec`` per genome, or ``None``.

        Problems whose evaluation is reconstructible from slim data (see
        :mod:`repro.engine.tasks`) return specs here so a process-pool
        service ships data instead of pickled evaluator graphs.  The default
        ``None`` keeps the closure path.
        """
        del genomes
        return None

    def crossover(
        self, a: np.ndarray, b: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:  # pragma: no cover
        """Recombine two parents into two children."""
        raise NotImplementedError

    def mutate(self, genome: np.ndarray, rng: np.random.Generator) -> np.ndarray:  # pragma: no cover
        """Perturb a genome."""
        raise NotImplementedError


@dataclass(frozen=True)
class Nsga2Config:
    """Engine hyper-parameters; #iterations = generations x population."""

    population: int = 24
    generations: int = 10
    crossover_prob: float = 0.9

    def __post_init__(self):
        check_positive("population", self.population)
        check_positive("generations", self.generations)

    @property
    def iterations(self) -> int:
        return self.population * self.generations


def evaluate_genomes(
    problem: Problem, genomes: list[np.ndarray], service=None
) -> list[tuple[np.ndarray, dict]]:
    """Dispatch a genome batch for evaluation (shared by every engine).

    A problem that overrides :meth:`Problem.evaluate_batch` owns its
    batching (vectorised evaluators etc.) and keeps that ownership even when
    a service is attached; only the default point-wise implementation is
    fanned out across the service's workers.
    """
    custom_batch = type(problem).evaluate_batch is not Problem.evaluate_batch
    if service is not None and not custom_batch:
        if getattr(service, "prefers_specs", False):
            specs = problem.task_specs(genomes)
            if specs is not None:
                # Local import keeps the generic engine decoupled from the
                # codec for problems that never lower to specs.
                from repro.engine.tasks import spec_task

                return service.evaluate_batch([spec_task(spec) for spec in specs])
        return service.map(problem.evaluate, [(genome,) for genome in genomes])
    return problem.evaluate_batch(genomes)


def rank_and_crowd(population: list[Individual]) -> None:
    """Assign NSGA-II rank and crowding distance in place."""
    if not population:
        return
    objectives = np.stack([ind.objectives for ind in population])
    for front_rank, front in enumerate(non_dominated_sort(objectives)):
        crowd = crowding_distance(objectives[front])
        for local, idx in enumerate(front):
            population[idx].rank = front_rank
            population[idx].crowding = float(crowd[local])


def environmental_selection(population: list[Individual], size: int) -> list[Individual]:
    """Elitist truncation: fill by front, break ties by crowding."""
    rank_and_crowd(population)
    ordered = sorted(population, key=lambda ind: (ind.rank, -ind.crowding))
    return ordered[:size]


class NSGA2:
    """The evolutionary loop."""

    def __init__(
        self,
        problem: Problem,
        config: Nsga2Config,
        rng=None,
        on_generation: Callable[[int, list[Individual]], None] | None = None,
        service=None,
    ):
        self.problem = problem
        self.config = config
        self.rng = make_rng(rng)
        self.on_generation = on_generation
        self.service = service  # optional EvaluationService for batch execution
        self.history: list[Individual] = []
        self._eval_cache: dict[tuple, tuple[np.ndarray, dict]] = {}
        self.num_evaluations = 0

    # --------------------------------------------------------------- pieces
    def _evaluate(self, individual: Individual) -> Individual:
        return self._evaluate_all([individual])[0]

    def _evaluate_all(self, individuals: list[Individual]) -> list[Individual]:
        """Batch-evaluate a population (deduplicated, order-preserving).

        Unseen genomes are submitted as one batch — to the attached
        :class:`EvaluationService` when present (parallel execution across
        the population), otherwise to :meth:`Problem.evaluate_batch`.
        Results are bit-identical to genome-by-genome evaluation because
        evaluation consumes no engine RNG and tasks are pure.
        """
        keys = [individual.key() for individual in individuals]
        fresh: dict[tuple, np.ndarray] = {}
        for key, individual in zip(keys, individuals):
            if key not in self._eval_cache and key not in fresh:
                fresh[key] = individual.genome
        if fresh:
            genomes = list(fresh.values())
            outputs = evaluate_genomes(self.problem, genomes, self.service)
            for key, (objectives, payload) in zip(fresh, outputs):
                self._eval_cache[key] = (np.asarray(objectives, dtype=float), payload)
            self.num_evaluations += len(fresh)
            trace.count("nsga.evaluations", len(fresh))
            trace.count("nsga.memoized", len(individuals) - len(fresh))
        for key, individual in zip(keys, individuals):
            objectives, payload = self._eval_cache[key]
            individual.objectives = objectives.copy()
            individual.payload = dict(payload)
        return individuals

    def _initial_population(self) -> list[Individual]:
        population = [
            Individual(genome=np.asarray(self.problem.sample(self.rng), dtype=np.int64))
            for _ in range(self.config.population)
        ]
        return self._evaluate_all(population)

    def _tournament(self, population: list[Individual]) -> Individual:
        a, b = self.rng.choice(len(population), size=2, replace=False)
        ind_a, ind_b = population[a], population[b]
        if ind_a.rank != ind_b.rank:
            return ind_a if ind_a.rank < ind_b.rank else ind_b
        return ind_a if ind_a.crowding >= ind_b.crowding else ind_b

    def make_offspring(self, population: list[Individual]) -> list[Individual]:
        """Mating selection + crossover + mutation -> evaluated children.

        Variation (which consumes the engine RNG) runs to completion first;
        the resulting genomes are then evaluated as one batch.  The RNG
        stream is identical to interleaved per-child evaluation because
        evaluation never draws from it.
        """
        genomes: list[np.ndarray] = []
        while len(genomes) < self.config.population:
            parent_a = self._tournament(population)
            parent_b = self._tournament(population)
            if self.rng.random() < self.config.crossover_prob:
                genome_a, genome_b = self.problem.crossover(
                    parent_a.copy_genome(), parent_b.copy_genome(), self.rng
                )
            else:
                genome_a, genome_b = parent_a.copy_genome(), parent_b.copy_genome()
            for genome in (genome_a, genome_b):
                if len(genomes) >= self.config.population:
                    break
                genomes.append(self.problem.mutate(genome, self.rng))
        children = [
            Individual(genome=np.asarray(genome, dtype=np.int64)) for genome in genomes
        ]
        return self._evaluate_all(children)

    # ----------------------------------------------------------------- loop
    def run(self) -> list[Individual]:
        """Full NSGA-II run; returns the final population (ranked)."""
        with trace.span("nsga.generation", generation=0):
            population = self._initial_population()
        rank_and_crowd(population)
        self.history.extend(population)
        for generation in range(1, self.config.generations):
            with trace.span("nsga.generation", generation=generation):
                offspring = self.make_offspring(population)
                self.history.extend(offspring)
                population = environmental_selection(
                    population + offspring, self.config.population
                )
            if self.on_generation is not None:
                self.on_generation(generation, population)
        rank_and_crowd(population)
        return population
