"""NSGA-II over integer genomes (Deb et al., 2002), from scratch.

The engine is generic: a :class:`Problem` supplies sampling, evaluation and
variation; the engine supplies non-dominated sorting, crowding, binary
tournament mating selection and elitist environmental selection.  Both HADAS
engines (OOE and IOE) instantiate it with their own problems; the OOE
additionally intercepts the loop for its two-stage selection (see
:mod:`repro.search.ooe`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.metrics.pareto import crowding_distance, non_dominated_sort
from repro.search.individual import Individual
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive


class Problem:
    """Interface the NSGA-II engine optimises against (maximisation)."""

    def sample(self, rng: np.random.Generator) -> np.ndarray:  # pragma: no cover
        """Return a fresh random genome."""
        raise NotImplementedError

    def evaluate(self, genome: np.ndarray) -> tuple[np.ndarray, dict]:  # pragma: no cover
        """Return (objective vector to maximise, payload dict)."""
        raise NotImplementedError

    def crossover(
        self, a: np.ndarray, b: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:  # pragma: no cover
        """Recombine two parents into two children."""
        raise NotImplementedError

    def mutate(self, genome: np.ndarray, rng: np.random.Generator) -> np.ndarray:  # pragma: no cover
        """Perturb a genome."""
        raise NotImplementedError


@dataclass(frozen=True)
class Nsga2Config:
    """Engine hyper-parameters; #iterations = generations x population."""

    population: int = 24
    generations: int = 10
    crossover_prob: float = 0.9

    def __post_init__(self):
        check_positive("population", self.population)
        check_positive("generations", self.generations)

    @property
    def iterations(self) -> int:
        return self.population * self.generations


def rank_and_crowd(population: list[Individual]) -> None:
    """Assign NSGA-II rank and crowding distance in place."""
    if not population:
        return
    objectives = np.stack([ind.objectives for ind in population])
    for front_rank, front in enumerate(non_dominated_sort(objectives)):
        crowd = crowding_distance(objectives[front])
        for local, idx in enumerate(front):
            population[idx].rank = front_rank
            population[idx].crowding = float(crowd[local])


def environmental_selection(population: list[Individual], size: int) -> list[Individual]:
    """Elitist truncation: fill by front, break ties by crowding."""
    rank_and_crowd(population)
    ordered = sorted(population, key=lambda ind: (ind.rank, -ind.crowding))
    return ordered[:size]


class NSGA2:
    """The evolutionary loop."""

    def __init__(
        self,
        problem: Problem,
        config: Nsga2Config,
        rng=None,
        on_generation: Callable[[int, list[Individual]], None] | None = None,
    ):
        self.problem = problem
        self.config = config
        self.rng = make_rng(rng)
        self.on_generation = on_generation
        self.history: list[Individual] = []
        self._eval_cache: dict[tuple, tuple[np.ndarray, dict]] = {}
        self.num_evaluations = 0

    # --------------------------------------------------------------- pieces
    def _evaluate(self, individual: Individual) -> Individual:
        key = individual.key()
        if key not in self._eval_cache:
            objectives, payload = self.problem.evaluate(individual.genome)
            self._eval_cache[key] = (np.asarray(objectives, dtype=float), payload)
            self.num_evaluations += 1
        objectives, payload = self._eval_cache[key]
        individual.objectives = objectives.copy()
        individual.payload = dict(payload)
        return individual

    def _initial_population(self) -> list[Individual]:
        population = [
            Individual(genome=np.asarray(self.problem.sample(self.rng), dtype=np.int64))
            for _ in range(self.config.population)
        ]
        return [self._evaluate(ind) for ind in population]

    def _tournament(self, population: list[Individual]) -> Individual:
        a, b = self.rng.choice(len(population), size=2, replace=False)
        ind_a, ind_b = population[a], population[b]
        if ind_a.rank != ind_b.rank:
            return ind_a if ind_a.rank < ind_b.rank else ind_b
        return ind_a if ind_a.crowding >= ind_b.crowding else ind_b

    def make_offspring(self, population: list[Individual]) -> list[Individual]:
        """Mating selection + crossover + mutation -> evaluated children."""
        children: list[Individual] = []
        while len(children) < self.config.population:
            parent_a = self._tournament(population)
            parent_b = self._tournament(population)
            if self.rng.random() < self.config.crossover_prob:
                genome_a, genome_b = self.problem.crossover(
                    parent_a.copy_genome(), parent_b.copy_genome(), self.rng
                )
            else:
                genome_a, genome_b = parent_a.copy_genome(), parent_b.copy_genome()
            for genome in (genome_a, genome_b):
                if len(children) >= self.config.population:
                    break
                mutated = self.problem.mutate(genome, self.rng)
                children.append(
                    self._evaluate(Individual(genome=np.asarray(mutated, dtype=np.int64)))
                )
        return children

    # ----------------------------------------------------------------- loop
    def run(self) -> list[Individual]:
        """Full NSGA-II run; returns the final population (ranked)."""
        population = self._initial_population()
        rank_and_crowd(population)
        self.history.extend(population)
        for generation in range(1, self.config.generations):
            offspring = self.make_offspring(population)
            self.history.extend(offspring)
            population = environmental_selection(
                population + offspring, self.config.population
            )
            if self.on_generation is not None:
                self.on_generation(generation, population)
        rank_and_crowd(population)
        return population
