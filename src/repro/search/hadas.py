"""HADAS: the end-to-end bi-level search facade.

Wires the pieces of paper Fig. 2/3 together: the backbone space built over
the (pretrained-supernet) encoding, the static evaluator with simulated
HW-in-the-loop measurement, the per-backbone exit oracle, and the nested
NSGA-II engines.  ``HadasSearch(HadasConfig(platform="tx2-gpu")).run()``
reproduces the paper's TX2 experiment at the configured budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.accuracy.exit_model import ExitCapabilityModel
from repro.accuracy.surrogate import AccuracySurrogate
from repro.arch.config import BackboneConfig
from repro.arch.space import BackboneSpace
from repro.engine.cache import ResultCache
from repro.engine.executors import EXECUTOR_KINDS
from repro.engine.service import EvalTask, EvaluationService
from repro.engine.tasks import spec_task, task_spec
from repro.eval.static import StaticEvaluation, StaticEvaluator
from repro.hardware.platform import get_platform
from repro.search.individual import Individual
from repro.search.ioe import InnerEngine, InnerResult
from repro.search.nsga2 import Nsga2Config
from repro.search.ooe import OuterEngine, OuterResult
from repro.utils.validation import check_nonneg, check_positive

#: Bump when inner-engine semantics change; orphans persisted inner results.
INNER_ENGINE_VERSION = "1"


@dataclass(frozen=True)
class HadasConfig:
    """Hyper-parameters of one HADAS run.

    The paper's budget is 450 OOE iterations and 3500 IOE iterations
    (#iterations = generations x population); the defaults here are the
    "fast" profile used by tests and benches.  ``paper_profile()`` returns
    the full budget.

    ``workers``/``executor`` control the evaluation service: with more than
    one worker, a generation's inner-engine runs (and static population
    batches) execute concurrently — results are bit-identical to serial
    because every evaluation is seeded by content, not by call order.
    ``cache_dir`` attaches a persistent result cache, so re-runs at the same
    configuration (across processes, restarts and experiment memoisation)
    perform zero new static measurements and zero new inner runs.
    """

    platform: str = "tx2-gpu"
    seed: int = 0
    gamma: float = 1.0
    num_classes: int = 100
    outer_population: int = 16
    outer_generations: int = 5
    inner_population: int = 16
    inner_generations: int = 6
    ioe_candidates: int = 4
    oracle_samples: int = 2048
    literal_ratios: bool = False
    workers: int = 1
    executor: str = "auto"
    cache_dir: str | None = None

    def __post_init__(self):
        check_positive("outer_population", self.outer_population)
        check_positive("outer_generations", self.outer_generations)
        check_positive("inner_population", self.inner_population)
        check_positive("inner_generations", self.inner_generations)
        check_nonneg("gamma", self.gamma)
        check_positive("workers", self.workers)
        if self.executor not in ("auto",) + EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {self.executor!r}; expected one of "
                f"{('auto',) + EXECUTOR_KINDS}"
            )

    @property
    def outer_iterations(self) -> int:
        return self.outer_population * self.outer_generations

    @property
    def inner_iterations(self) -> int:
        return self.inner_population * self.inner_generations

    @staticmethod
    def paper_profile(platform: str = "tx2-gpu", seed: int = 0) -> "HadasConfig":
        """The paper's 450 / 3500 iteration budget."""
        return HadasConfig(
            platform=platform,
            seed=seed,
            outer_population=30,
            outer_generations=15,
            inner_population=50,
            inner_generations=70,
            ioe_candidates=5,
        )


@dataclass
class HadasResult:
    """Outcome of a HADAS run."""

    config: HadasConfig
    outer: OuterResult
    space: BackboneSpace
    surrogate: AccuracySurrogate
    static_evaluator: StaticEvaluator = field(repr=False)

    # ------------------------------------------------------------- queries
    def backbone_pareto(self) -> list[Individual]:
        """Static backbone Pareto set (Fig. 5 top)."""
        return self.outer.static_archive.items

    def dynn_pareto(self) -> list[Individual]:
        """(B, X, F) dynamic Pareto set (Fig. 5 bottom / final output)."""
        return self.outer.dynamic_archive.items

    def top_models(self, k: int = 4, by: str = "utopia", distinct_backbones: bool = True) -> list[Individual]:
        """The k best DyNNs (the paper's b1..b4).

        ``by="utopia"`` ranks by closeness to the utopia point of
        (dynamic accuracy, absolute dynamic energy) over the archive —
        matching how the paper's Table III picks absolutely-efficient,
        accurate models; ``by="d_score"`` ranks by the eq. 5 scalar.
        ``distinct_backbones`` prefers one entry per backbone, falling back
        to repeats when the archive holds fewer distinct backbones than k.
        """
        members = self.outer.dynamic_archive.items
        if not members:
            return []
        if by == "d_score":
            ranked = sorted(
                members, key=lambda ind: ind.payload["evaluation"].d_score, reverse=True
            )
        elif by == "utopia":
            accs = np.asarray(
                [ind.payload["evaluation"].dynamic_accuracy for ind in members]
            )
            energies = np.asarray(
                [ind.payload["evaluation"].dynamic_energy_j for ind in members]
            )
            acc_span = max(accs.max() - accs.min(), 1e-9)
            erg_span = max(energies.max() - energies.min(), 1e-9)
            distance = np.sqrt(
                ((accs.max() - accs) / acc_span) ** 2
                + ((energies - energies.min()) / erg_span) ** 2
            )
            ranked = [members[i] for i in np.argsort(distance, kind="stable")]
        else:
            raise ValueError(f"unknown ranking {by!r}")
        if not distinct_backbones:
            return ranked[:k]
        picked: list[Individual] = []
        seen: set[str] = set()
        for ind in ranked:
            key = ind.payload["config"].key
            if key in seen:
                continue
            seen.add(key)
            picked.append(ind)
            if len(picked) == k:
                return picked
        picked_ids = {id(ind) for ind in picked}
        for ind in ranked:  # fallback: allow repeated backbones
            if id(ind) not in picked_ids:
                picked.append(ind)
                picked_ids.add(id(ind))
                if len(picked) == k:
                    break
        return picked

    def selected_model(self) -> Individual:
        """The single model HADAS would hand to deployment.

        Raises
        ------
        RuntimeError
            When the dynamic archive is empty (no inner run produced a
            Pareto member), instead of an opaque ``IndexError``.
        """
        models = self.top_models(1)
        if not models:
            raise RuntimeError(
                "dynamic archive is empty — no DyNN candidate was produced. "
                "Run the search first, or increase the budget "
                "(outer_generations / ioe_candidates / inner_generations) so "
                "at least one inner-engine run completes."
            )
        return models[0]

    def deployed_design(self, label: str = "searched"):
        """The selected model lowered to a serving-ready deployed design.

        This is the search → serve hand-off: the returned
        :class:`~repro.serving.deploy.DeployedDesign` carries the concrete
        (B, X, F) triple plus the search surrogate's backbone accuracy, so
        ``repro serve --from-result`` mounts exactly what the search chose.
        """
        # Imported lazily: serving depends on the search's Individual type,
        # so a module-level import here would be circular.
        from repro.serving.deploy import design_from_individual

        best = self.selected_model()
        backbone = best.payload["config"]
        return design_from_individual(
            best,
            platform=self.config.platform,
            seed=self.config.seed,
            backbone_accuracy=self.surrogate.accuracy_fraction(backbone),
            label=label,
        )

    @property
    def num_evaluations(self) -> tuple[int, int]:
        """(static, dynamic) evaluation counts."""
        return (
            self.outer.num_static_evaluations,
            self.outer.num_dynamic_evaluations,
        )


class HadasSearch:
    """Builds and runs the full bi-level HADAS pipeline.

    The facade owns the run's :class:`EvaluationService` (executor + shared
    persistent cache); the outer engine routes static population batches and
    inner-engine runs through it.  Inner engines themselves run serial
    NSGA-II loops — parallelism lives at exactly one level (across inner
    runs), so pool executors are never nested.
    """

    def __init__(
        self,
        config: HadasConfig = HadasConfig(),
        space: BackboneSpace | None = None,
        capability_model: ExitCapabilityModel | None = None,
        service: EvaluationService | None = None,
    ):
        self.config = config
        self.platform = get_platform(config.platform)
        self.space = space or BackboneSpace(num_classes=config.num_classes)
        self.surrogate = AccuracySurrogate(self.space, seed=config.seed)
        if service is not None:
            # An injected service owns its executor and cache; engine knobs
            # on the config must not silently disagree with it.
            if config.workers != 1 or config.executor != "auto":
                raise ValueError(
                    "config.workers/config.executor conflict with the "
                    "injected service; configure parallelism on the service "
                    "(EvaluationService(executor=..., workers=...)) instead"
                )
            if config.cache_dir is not None and (
                service.cache is None
                or Path(config.cache_dir).resolve()
                != Path(service.cache.directory).resolve()
            ):
                raise ValueError(
                    "config.cache_dir conflicts with the injected service's "
                    "cache; construct the service with "
                    "EvaluationService(cache=ResultCache(cache_dir)) or drop "
                    "cache_dir"
                )
            self.service = service
            self.cache = service.cache
        else:
            self.cache = (
                ResultCache(config.cache_dir) if config.cache_dir is not None else None
            )
            self.service = EvaluationService(
                executor=config.executor, workers=config.workers, cache=self.cache
            )
        self.static_evaluator = StaticEvaluator(
            self.platform, self.surrogate, seed=config.seed, cache=self.cache
        )
        self.capability_model = capability_model or ExitCapabilityModel()
        self._spec_context = self._make_spec_context(space)

    def _make_spec_context(self, injected_space: BackboneSpace | None) -> dict | None:
        """Codec context when this run's evaluators are data-reconstructible.

        The facade always builds its own surrogate/static evaluator from
        (platform, num_classes, seed), so the only obstacle to rebuilding
        them inside a worker process is a custom backbone space.  Returns
        the ``static-backbone``/``inner-run`` spec context, or ``None`` to
        keep closure tasks (which pickle the live evaluator graph).
        """
        if injected_space is not None and (
            self.space.fingerprint()
            != BackboneSpace(num_classes=self.config.num_classes).fingerprint()
        ):
            return None
        return {
            "platform": self.config.platform,
            "num_classes": self.config.num_classes,
            "seed": self.config.seed,
            "cache_dir": str(self.cache.directory) if self.cache is not None else None,
        }

    def make_inner_engine(self, backbone: BackboneConfig) -> InnerEngine:
        """Inner engine for one backbone, sharing this run's budget/seeds.

        Also used to build the paper's "optimized baselines" (same budget,
        fixed backbone).
        """
        return InnerEngine(
            config=backbone,
            static_evaluator=self.static_evaluator,
            backbone_accuracy_fraction=self.surrogate.accuracy_fraction(backbone),
            nsga=Nsga2Config(
                population=self.config.inner_population,
                generations=self.config.inner_generations,
            ),
            gamma=self.config.gamma,
            literal_ratios=self.config.literal_ratios,
            capability_model=self.capability_model,
            oracle_samples=self.config.oracle_samples,
            seed=self.config.seed,
            cache=self.cache,
        )

    def _inner_cache_key(self, backbone: BackboneConfig):
        return self.cache.key(
            "inner",
            evaluator_version=INNER_ENGINE_VERSION,
            backbone=backbone.key,
            # backbone.key does not encode the classifier/exit-head width.
            num_classes=backbone.num_classes,
            platform=self.platform.name,
            space=self.space.fingerprint(),
            anchors=self.surrogate.anchors,
            seed=self.config.seed,
            gamma=self.config.gamma,
            population=self.config.inner_population,
            generations=self.config.inner_generations,
            oracle_samples=self.config.oracle_samples,
            literal_ratios=self.config.literal_ratios,
            capability_model=self.capability_model,
        )

    def run_inner(
        self, backbone: BackboneConfig, static: StaticEvaluation | None = None
    ) -> InnerResult:
        """Run (or fetch from the persistent cache) one backbone's IOE.

        This is the oracle path shared by the outer loop and the optimized
        baselines: the full :class:`InnerResult` — oracle construction, the
        whole (X, F) NSGA-II run and its Pareto archive — is content-
        addressed by (backbone, platform, seed, gamma, budget, evaluator
        version), so repeated backbones across generations, restarts and the
        experiment runner's memoisation are never re-searched.
        """
        del static  # the inner engine derives its own normalisers
        if self.cache is None:
            return self.make_inner_engine(backbone).run()
        return self.cache.memoize(
            self._inner_cache_key(backbone),
            lambda: self.make_inner_engine(backbone).run(),
        )

    # Backwards-compatible alias (pre-EvaluationService name).
    _run_inner = run_inner

    def inner_task(
        self, backbone: BackboneConfig, static: StaticEvaluation | None = None
    ) -> EvalTask:
        """Lower one backbone's IOE to an :class:`EvalTask` for the service.

        When the evaluator stack is data-reconstructible and the service's
        executor crosses a process boundary, the task is a slim ``inner-run``
        spec (backbone + platform/seed/gamma/budget) carrying the persistent
        cache key, so the service resolves the cache before shipping anything
        to a worker and workers rebuild evaluators from data.  Otherwise the
        task closes over :meth:`run_inner`, which handles the cache itself.
        """
        if self._spec_context is not None and self.service.prefers_specs:
            spec = task_spec(
                "inner-run",
                backbone=backbone,
                gamma=self.config.gamma,
                population=self.config.inner_population,
                generations=self.config.inner_generations,
                oracle_samples=self.config.oracle_samples,
                literal_ratios=self.config.literal_ratios,
                capability_model=self.capability_model,
                **self._spec_context,
            )
            key = self._inner_cache_key(backbone) if self.cache is not None else None
            return spec_task(spec, key=key)
        return EvalTask(self.run_inner, (backbone, static))

    def run(self) -> HadasResult:
        """Execute the bi-level search."""
        outer = OuterEngine(
            space=self.space,
            evaluator=self.static_evaluator,
            run_inner=self.run_inner,
            nsga=Nsga2Config(
                population=self.config.outer_population,
                generations=self.config.outer_generations,
            ),
            ioe_candidates=self.config.ioe_candidates,
            seed=self.config.seed,
            service=self.service,
            inner_task=self.inner_task,
            spec_context=self._spec_context,
        )
        result = outer.run()
        return HadasResult(
            config=self.config,
            outer=result,
            space=self.space,
            surrogate=self.surrogate,
            static_evaluator=self.static_evaluator,
        )

    def close(self, cancel: bool = False) -> None:
        """Tear down the service's executor pools (idempotent).

        ``cancel`` drops queued-but-unstarted work — the error/interrupt
        teardown used by the CLIs and the experiment runner.
        """
        self.service.close(cancel=cancel)
