"""Inner Optimization Engine: NSGA-II over the joint (X, F) subspace.

Genome layout: ``[I_5 .. I_{L-1}, core_idx, emc_idx]`` — the paper's exit
indicator vector concatenated with the two DVFS genes.  Fitness is the
dynamic evaluation of paper eqs. 5–7, exposed to NSGA-II as the
maximisation vector

    ( mean_i N_i * dissim_i^gamma ,  energy gain ,  latency gain )

i.e. the accuracy-side component carries the dissimilarity regulariser (γ=0
switches it off — the Fig. 7 ablation), while the energy/latency components
are ideal-mapping savings relative to the backbone at default clocks.  The
scalar D of eq. 5 ranks the returned Pareto set (``best`` below).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accuracy.exit_model import BackboneExitOracle, ExitCapabilityModel
from repro.arch.config import BackboneConfig
from repro.eval.dynamic import DynamicEvaluation, DynamicEvaluator
from repro.eval.static import StaticEvaluator
from repro.exits.placement import ExitPlacement, ExitSpace
from repro.hardware.dvfs import DvfsSpace
from repro.hardware.energy import EnergyModel
from repro.obs import trace
from repro.search import operators
from repro.search.archive import ParetoArchive
from repro.search.individual import Individual
from repro.search.nsga2 import NSGA2, Nsga2Config, Problem
from repro.utils.rng import child_rng


@dataclass
class InnerResult:
    """Outcome of one IOE invocation for a single backbone."""

    backbone_key: str
    pareto: ParetoArchive
    explored: list[Individual] = field(default_factory=list)
    num_evaluations: int = 0

    def evaluations(self) -> list[DynamicEvaluation]:
        """Dynamic evaluations of the Pareto members."""
        return [ind.payload["evaluation"] for ind in self.pareto]

    def points_2d(self, explored: bool = False, accuracy: str = "mean_n_i") -> np.ndarray:
        """(energy gain, accuracy-side) pairs — the paper's Fig. 5/7 axes.

        ``accuracy="mean_n_i"`` uses the average of the N_i values (Fig. 5
        bottom); ``accuracy="dynamic"`` uses the ideal-mapping union accuracy
        (the quantity the dissimilarity ablation improves).
        """
        source = self.explored if explored else self.pareto.items
        if not source:
            return np.zeros((0, 2))
        if accuracy == "mean_n_i":
            second = [ind.payload["evaluation"].mean_n_i for ind in source]
        elif accuracy == "dynamic":
            second = [ind.payload["evaluation"].dynamic_accuracy for ind in source]
        else:
            raise ValueError(f"unknown accuracy axis {accuracy!r}")
        gains = [ind.payload["evaluation"].energy_gain for ind in source]
        return np.column_stack([gains, second])

    @property
    def best(self) -> Individual:
        """Pareto member with the highest scalar D score (eq. 5)."""
        return self.pareto.best_by(lambda ind: ind.payload["evaluation"].d_score)


class _InnerProblem(Problem):
    """(X, F) genome handling + dynamic evaluation."""

    def __init__(
        self,
        exit_space: ExitSpace,
        dvfs_space: DvfsSpace,
        evaluator: DynamicEvaluator,
        exit_density: float = 0.3,
    ):
        self.exit_space = exit_space
        self.dvfs_space = dvfs_space
        self.evaluator = evaluator
        self.exit_density = exit_density
        self._dvfs_bounds = dvfs_space.gene_bounds()

    @property
    def num_slots(self) -> int:
        return self.exit_space.num_slots

    def split(self, genome: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return genome[: self.num_slots], genome[self.num_slots :]

    def decode(self, genome: np.ndarray):
        bits, dvfs = self.split(genome)
        placement = ExitPlacement.from_indicators(self.exit_space.total_layers, bits)
        setting = self.dvfs_space.decode(dvfs[0], dvfs[1])
        return placement, setting

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        placement = self.exit_space.sample(rng, density=self.exit_density)
        core = rng.integers(0, self._dvfs_bounds[0])
        emc = rng.integers(0, self._dvfs_bounds[1])
        return np.concatenate([placement.indicators, [core, emc]]).astype(np.int64)

    def evaluate(self, genome: np.ndarray):
        placement, setting = self.decode(genome)
        evaluation = self.evaluator.evaluate(placement, setting)
        return np.asarray(self.evaluator.objectives(evaluation)), {"evaluation": evaluation}

    def evaluate_batch(self, genomes: list[np.ndarray]):
        """Generation batches lowered to the fused population kernel.

        The whole batch goes through
        :meth:`DynamicEvaluator.evaluate_generation` — grouped by decoded
        DVFS setting, one fused accuracy+cost kernel call per group — and
        the objective vectors come back from the evaluator's fused-
        objectives memo.  Bit-identical to the serial :meth:`evaluate`
        loop; when the evaluator's kernel flags are off this degenerates to
        exactly that loop.
        """
        decoded = [self.decode(genome) for genome in genomes]
        trace.count("ioe.population_batches")
        trace.count("ioe.population_genomes", len(genomes))
        evaluations = self.evaluator.evaluate_generation(decoded)
        objectives = self.evaluator.objectives
        return [
            (np.asarray(objectives(evaluation)), {"evaluation": evaluation})
            for evaluation in evaluations
        ]

    def crossover(self, a, b, rng):
        return operators.uniform_crossover(a, b, rng)

    def mutate(self, genome: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        bits, dvfs = self.split(genome)
        bits = operators.bitflip_mutation(bits, rng, prob=1.5 / max(len(bits), 1))
        bits = self.exit_space.repair(bits, rng)
        dvfs = operators.creep_mutation(dvfs, self._dvfs_bounds, rng, prob=0.5)
        if rng.random() < 0.15:  # occasional long-range DVFS jump
            dvfs = operators.reset_mutation(dvfs, self._dvfs_bounds, rng, prob=1.0)
        return np.concatenate([bits, dvfs]).astype(np.int64)


class InnerEngine:
    """Runs the (X, F) co-search for one backbone b'.

    Parameters
    ----------
    config:
        The backbone (must expose >= 6 MBConv layers for any exit to fit).
    static_evaluator:
        Supplies the backbone cost profile and the E_b / L_b normalisers.
    backbone_accuracy_fraction:
        Static accuracy of b' in [0, 1] (drives the exit oracle).
    gamma:
        Dissimilarity exponent (0 disables — the Fig. 7 ablation).
    nsga:
        Budget: #iterations = population x generations (paper: 3500).
    service:
        Optional evaluation service for batched (X, F) population
        evaluation.  Leave ``None`` when the *outer* loop already runs inner
        engines on a pooled service — executors must not be nested.
    cache:
        Optional persistent result cache handed to the exit oracle so its
        correctness columns warm-start across runs (the columns are
        platform-independent; see :mod:`repro.accuracy.exit_model`).
    use_tables:
        Route dynamic evaluations through the precomputed cost-table kernel
        (default).  ``False`` selects the reference per-layer loop — the
        dynamic-eval bench's "before" baseline; results are bit-identical
        either way.
    use_population_kernel:
        Evaluate each generation's genome batch through the stacked
        population kernel, grouped by DVFS setting (default).  ``False``
        keeps per-individual evaluation — the population bench's "before"
        comparator; results are bit-identical either way.
    use_batched_oracle:
        Route the exit oracle's ideal-mapping statistics through the
        batched accuracy kernel (stacked packed-column masking with
        shared-prefix reuse; default).  ``False`` keeps the per-placement
        popcount loop; results are bit-identical either way.
    use_fused_objectives:
        Compute IOE objective vectors inside the fused population
        finalisation (memoised per candidate; default).  ``False``
        recomputes them per individual per generation — the accuracy-side
        bench's "before" comparator; results are bit-identical either way.
    """

    def __init__(
        self,
        config: BackboneConfig,
        static_evaluator: StaticEvaluator,
        backbone_accuracy_fraction: float,
        nsga: Nsga2Config | None = None,
        gamma: float = 1.0,
        literal_ratios: bool = False,
        capability_model: ExitCapabilityModel | None = None,
        oracle_samples: int = 2048,
        seed: int = 0,
        service=None,
        cache=None,
        use_tables: bool = True,
        use_population_kernel: bool = True,
        use_batched_oracle: bool = True,
        use_fused_objectives: bool = True,
    ):
        self.config = config
        self.nsga_config = nsga or Nsga2Config(population=20, generations=8)
        static = static_evaluator.evaluate(config)
        oracle = BackboneExitOracle(
            backbone_key=config.key,
            total_layers=config.total_mbconv_layers,
            backbone_accuracy=backbone_accuracy_fraction,
            model=capability_model,
            n_samples=oracle_samples,
            seed=seed,
            cache=cache,
            use_batched_stats=use_batched_oracle,
        )
        self.evaluator = DynamicEvaluator(
            config=config,
            cost=static_evaluator.cost(config),
            oracle=oracle,
            energy_model=EnergyModel(static_evaluator.platform),
            baseline_energy_j=static.energy_j,
            baseline_latency_s=static.latency_s,
            gamma=gamma,
            literal_ratios=literal_ratios,
            use_tables=use_tables,
            use_population_kernel=use_population_kernel,
            use_fused_objectives=use_fused_objectives,
        )
        self.problem = _InnerProblem(
            exit_space=ExitSpace(config.total_mbconv_layers),
            dvfs_space=static_evaluator.dvfs_space,
            evaluator=self.evaluator,
        )
        self.seed = seed
        self.service = service

    def run(self) -> InnerResult:
        """Execute the NSGA-II loop and return the (X, F) Pareto set."""
        engine = NSGA2(
            self.problem,
            self.nsga_config,
            rng=child_rng(self.seed, "ioe", self.config.key),
            service=self.service,
        )
        with trace.span("ioe.run", backbone=self.config.key):
            engine.run()
        archive = ParetoArchive()
        archive.add_all(engine.history)
        return InnerResult(
            backbone_key=self.config.key,
            pareto=archive,
            explored=engine.history,
            num_evaluations=engine.num_evaluations,
        )
