"""Command-line entry point: paper artifacts, online serving, cache admin.

Usage::

    python -m repro list
    python -m repro table2
    python -m repro table3 --profile fast --platform tx2-gpu
    python -m repro fig5 --platforms tx2-gpu agx-gpu
    python -m repro fig5 --workers 4 --cache-dir .cache/engine
    python -m repro all --profile fast
    python -m repro search --budget tiny --out design.json
    python -m repro serve --trace diurnal --slo-ms 20
    python -m repro serve --from-result design.json --fleet tx2,xavier
    python -m repro cache stats --cache-dir .cache/engine
    python -m repro fig5 --trace fig5.jsonl
    python -m repro trace summary fig5.jsonl

Artifacts print the paper-style rows/series (the same renderers the
benchmark suite uses); ``search`` runs the bi-level HADAS search and
exports the selected design (``repro search --help``); ``serve`` runs the
online serving simulator — single device or a heterogeneous fleet
(``repro serve --help``); ``cache`` administers the persistent result
cache (``repro cache --help``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import fig1, fig5, fig6, fig7, table1, table2, table3
from repro.experiments.config import Profile
from repro.hardware.platform import PAPER_PLATFORM_ORDER, validate_platform_keys

_ARTIFACTS = ("table1", "table2", "fig1", "fig5", "fig6", "fig7", "table3")


def _profile(name: str, seed: int) -> Profile:
    if name == "fast":
        return Profile.fast(seed)
    if name == "paper":
        return Profile.paper(seed)
    raise SystemExit(f"unknown profile {name!r}; expected fast or paper")


def _engine_profile(args: "argparse.Namespace") -> Profile:
    if args.workers is not None and args.workers <= 0:
        raise SystemExit(f"--workers must be > 0, got {args.workers}")
    profile = _profile(args.profile, args.seed)
    return profile.with_engine(
        workers=args.workers, executor=args.executor, cache_dir=args.cache_dir
    )


def _run_artifact(
    name: str,
    profile: Profile,
    platform: str,
    platforms: tuple[str, ...],
    dvfs_grid: bool = False,
) -> str:
    if name == "table1":
        return table1.render(table1.run())
    if name == "table2":
        return table2.render(
            table2.run(
                workers=profile.workers,
                executor=profile.executor,
                cache_dir=profile.cache_dir,
                dvfs_grid=dvfs_grid,
            )
        )
    if name == "fig1":
        return fig1.render(fig1.run(profile, platform))
    if name == "fig5":
        return fig5.render(fig5.run(profile, platforms))
    if name == "fig6":
        return fig6.render(fig6.run(profile, platforms))
    if name == "fig7":
        return fig7.render(fig7.run(profile, platform))
    if name == "table3":
        return table3.render(table3.run(profile, platform))
    raise SystemExit(f"unknown artifact {name!r}; see `python -m repro list`")


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # Subcommands with their own parsers; everything else is an artifact.
    if argv and argv[0] == "serve":
        from repro.serving.cli import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "search":
        from repro.search.cli import main as search_main

        return search_main(argv[1:])
    if argv and argv[0] == "cache":
        from repro.engine.cli import main as cache_main

        return cache_main(argv[1:])
    if argv and argv[0] == "trace":
        from repro.obs.cli import main as trace_main

        return trace_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "artifact",
        help="one of: list, all, " + ", ".join(_ARTIFACTS) + ", search, serve, cache",
    )
    parser.add_argument("--profile", default="fast", help="fast (default) or paper")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--platform", default="tx2-gpu",
                        help="platform for single-platform artifacts")
    parser.add_argument("--platforms", nargs="+", default=list(PAPER_PLATFORM_ORDER),
                        help="platforms for fig5/fig6")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel evaluation workers (default: serial)")
    parser.add_argument("--executor", default=None,
                        choices=["auto", "serial", "thread", "process"],
                        help="evaluation executor (default: auto)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent evaluation-result cache directory")
    parser.add_argument("--dvfs-grid", action="store_true",
                        help="table2: sweep the exhaustive core x EMC grid per "
                             "platform (one population-eval batch per setting)")
    parser.add_argument("--trace", default=None, metavar="OUT.jsonl",
                        help="record a trace of the run (spans/counters from "
                             "all workers) plus a run manifest; inspect with "
                             "`python -m repro trace summary OUT.jsonl`")
    args = parser.parse_args(argv)

    if args.artifact == "list":
        print("available artifacts:", ", ".join(_ARTIFACTS), "or 'all'")
        print("other subcommands: search (bi-level search), serve (online serving), "
              "cache (cache admin), trace (trace inspection)")
        return 0

    try:
        validate_platform_keys([args.platform, *args.platforms])
    except ValueError as error:
        raise SystemExit(str(error)) from None
    profile = _engine_profile(args)
    names = list(_ARTIFACTS) if args.artifact == "all" else [args.artifact]
    from repro.obs.cli import traced_run

    with traced_run(
        args.trace,
        command="repro " + " ".join(argv),
        config=profile,
        seed=args.seed,
        platforms=args.platforms,
    ):
        for name in names:
            start = time.time()
            output = _run_artifact(
                name, profile, args.platform, tuple(args.platforms),
                dvfs_grid=args.dvfs_grid,
            )
            print(f"\n===== {name} ({time.time() - start:.1f}s) =====")
            print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
