"""Exact hypervolume for maximisation fronts in 2-D and 3-D.

The paper's Fig. 6a compares hypervolume coverage of HADAS against the
optimized baselines.  2-D uses the classic sorted sweep; 3-D uses the
dimension-sweep algorithm (sort by one objective, maintain a 2-D front and
accumulate slab volumes), which is exact and O(n² log n) — ample for fronts
of NAS size.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.pareto import non_dominated_mask


def _hv_2d(points: np.ndarray, reference: np.ndarray) -> float:
    keep = np.all(points > reference, axis=1)
    points = points[keep]
    if len(points) == 0:
        return 0.0
    points = points[non_dominated_mask(points)]
    order = np.argsort(-points[:, 0], kind="stable")
    points = points[order]
    volume = 0.0
    y_prev = reference[1]
    for x, y in points:
        if y > y_prev:
            volume += (x - reference[0]) * (y - y_prev)
            y_prev = y
    return float(volume)


def _hv_3d(points: np.ndarray, reference: np.ndarray) -> float:
    keep = np.all(points > reference, axis=1)
    points = points[keep]
    if len(points) == 0:
        return 0.0
    points = points[non_dominated_mask(points)]
    # Sweep descending in z; each slab [z_next, z) contributes the 2-D HV of
    # all points with z' >= z.
    order = np.argsort(-points[:, 2], kind="stable")
    points = points[order]
    volume = 0.0
    active: list[np.ndarray] = []
    z_levels = np.unique(points[:, 2])[::-1]
    idx = 0
    for level_i, z in enumerate(z_levels):
        while idx < len(points) and points[idx, 2] >= z:
            active.append(points[idx, :2])
            idx += 1
        z_next = z_levels[level_i + 1] if level_i + 1 < len(z_levels) else reference[2]
        slab = z - z_next
        if slab > 0 and active:
            volume += slab * _hv_2d(np.asarray(active), reference[:2])
    return float(volume)


def hypervolume(points: np.ndarray, reference: np.ndarray) -> float:
    """Hypervolume dominated by ``points`` above ``reference`` (maximise).

    Points not strictly better than the reference in every objective
    contribute nothing.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    reference = np.asarray(reference, dtype=float)
    if points.shape[1] != len(reference):
        raise ValueError(
            f"points have {points.shape[1]} objectives, reference has {len(reference)}"
        )
    if points.shape[1] == 1:
        best = points.max()
        return float(max(0.0, best - reference[0]))
    if points.shape[1] == 2:
        return _hv_2d(points, reference)
    if points.shape[1] == 3:
        return _hv_3d(points, reference)
    raise NotImplementedError("hypervolume implemented for 1-3 objectives")
