"""Pareto dominance primitives (maximisation convention).

These back both the NSGA-II engines and the evaluation metrics.  The
non-dominated sort is the O(M N²) fast-non-dominated-sort of Deb et al.;
the pairwise dominance tests run as one broadcast comparison matrix
(row-blocked so huge archives never materialise an (N, N, M) tensor)
instead of N² Python-level :func:`dominates` calls — at paper-budget IOE
scale the scalar loop was the single largest line in the profile.

Bit-identity contract: dominance is pure float comparison (no arithmetic),
so the matrix path partitions points into *exactly* the fronts of the
retained reference implementation, in the same within-front index order
(``np.flatnonzero`` is ascending, as was the reference's ``sorted``).
``non_dominated_sort_reference`` / ``non_dominated_mask_reference`` keep
the original loops as the equivalence oracle for the property tests and
the dynamic-eval bench's PR-6 baseline mode.
"""

from __future__ import annotations

import numpy as np


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """True iff ``a`` Pareto-dominates ``b`` (>= everywhere, > somewhere)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"objective vectors differ in shape: {a.shape} vs {b.shape}")
    return bool(np.all(a >= b) and np.any(a > b))


def _pairwise_ge(points: np.ndarray) -> np.ndarray:
    """``ge[i, j] = all(points[i] >= points[j])`` as one blocked broadcast.

    Row blocks bound the (block, N, M) comparison temporary to a few MB no
    matter how large the point set grows (archive-scale calls pass
    thousands of rows).
    """
    n, m = points.shape
    ge = np.empty((n, n), dtype=bool)
    step = max(1, 4_000_000 // max(1, n * m))
    for start in range(0, n, step):
        block = points[start : start + step]
        ge[start : start + step] = (block[:, None, :] >= points[None, :, :]).all(axis=2)
    return ge


def dominance_matrix(points: np.ndarray) -> np.ndarray:
    """Boolean ``D[i, j]`` — row ``i`` Pareto-dominates row ``j``.

    ``any(a > b)`` is equivalent to ``not all(b >= a)``, so one >= matrix
    serves both halves of the dominance test: ``D = ge & ~ge.T``.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    ge = _pairwise_ge(points)
    return ge & ~ge.T


def non_dominated_mask(points: np.ndarray) -> np.ndarray:
    """Boolean mask of Pareto-optimal rows of ``points`` (n, m).

    Duplicates of a Pareto point are all retained (none strictly dominates
    the others).
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if len(points) == 0:
        return np.zeros(0, dtype=bool)
    return ~dominance_matrix(points).any(axis=0)


def non_dominated_mask_reference(points: np.ndarray) -> np.ndarray:
    """Pre-vectorization :func:`non_dominated_mask` (the equivalence oracle)."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n = len(points)
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        ge = np.all(points >= points[i], axis=1)
        gt = np.any(points > points[i], axis=1)
        dominated_by = ge & gt
        if dominated_by.any():
            mask[i] = False
    return mask


def pareto_front(points: np.ndarray) -> np.ndarray:
    """The Pareto-optimal subset of ``points``."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    return points[non_dominated_mask(points)]


def non_dominated_sort(points: np.ndarray) -> list[np.ndarray]:
    """Deb's fast non-dominated sort: list of index arrays, best front first.

    One dominance matrix replaces the N² scalar :func:`dominates` calls;
    the front peel then works on integer domination counts — subtracting
    each assigned front's column sums uncovers the next front, exactly the
    reference decrement loop in matrix form.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n = len(points)
    if n == 0:
        return []
    matrix = dominance_matrix(points)
    domination_count = matrix.sum(axis=0)
    fronts: list[np.ndarray] = []
    assigned = np.zeros(n, dtype=bool)
    current = domination_count == 0
    while current.any():
        front = np.flatnonzero(current)
        fronts.append(front)
        assigned |= current
        domination_count = domination_count - matrix[front].sum(axis=0)
        current = (domination_count == 0) & ~assigned
    return fronts


def non_dominated_sort_reference(points: np.ndarray) -> list[np.ndarray]:
    """Pre-vectorization :func:`non_dominated_sort` (the equivalence oracle)."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n = len(points)
    dominated_by: list[list[int]] = [[] for _ in range(n)]
    domination_count = np.zeros(n, dtype=int)
    for i in range(n):
        for j in range(i + 1, n):
            if dominates(points[i], points[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(points[j], points[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    fronts: list[np.ndarray] = []
    current = np.flatnonzero(domination_count == 0)
    while len(current):
        fronts.append(current)
        next_front: list[int] = []
        for i in current:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current = np.asarray(sorted(next_front), dtype=int)
    return fronts


def crowding_distance(points: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance of each row (inf at objective extremes)."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n, m = points.shape
    distance = np.zeros(n)
    if n <= 2:
        return np.full(n, np.inf)
    for k in range(m):
        order = np.argsort(points[:, k], kind="stable")
        lo, hi = points[order[0], k], points[order[-1], k]
        distance[order[0]] = distance[order[-1]] = np.inf
        span = hi - lo
        if span <= 0:
            continue
        gaps = (points[order[2:], k] - points[order[:-2], k]) / span
        distance[order[1:-1]] += gaps
    return distance
