"""Pareto dominance primitives (maximisation convention).

These back both the NSGA-II engines and the evaluation metrics.  The
non-dominated sort is the O(M N²) fast-non-dominated-sort of Deb et al.,
which is the right trade-off at NAS population sizes (tens to hundreds).
"""

from __future__ import annotations

import numpy as np


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """True iff ``a`` Pareto-dominates ``b`` (>= everywhere, > somewhere)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"objective vectors differ in shape: {a.shape} vs {b.shape}")
    return bool(np.all(a >= b) and np.any(a > b))


def non_dominated_mask(points: np.ndarray) -> np.ndarray:
    """Boolean mask of Pareto-optimal rows of ``points`` (n, m).

    Duplicates of a Pareto point are all retained (none strictly dominates
    the others).
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n = len(points)
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        ge = np.all(points >= points[i], axis=1)
        gt = np.any(points > points[i], axis=1)
        dominated_by = ge & gt
        if dominated_by.any():
            mask[i] = False
    return mask


def pareto_front(points: np.ndarray) -> np.ndarray:
    """The Pareto-optimal subset of ``points``."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    return points[non_dominated_mask(points)]


def non_dominated_sort(points: np.ndarray) -> list[np.ndarray]:
    """Deb's fast non-dominated sort: list of index arrays, best front first."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n = len(points)
    dominated_by: list[list[int]] = [[] for _ in range(n)]
    domination_count = np.zeros(n, dtype=int)
    for i in range(n):
        for j in range(i + 1, n):
            if dominates(points[i], points[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(points[j], points[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    fronts: list[np.ndarray] = []
    current = np.flatnonzero(domination_count == 0)
    while len(current):
        fronts.append(current)
        next_front: list[int] = []
        for i in current:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current = np.asarray(sorted(next_front), dtype=int)
    return fronts


def crowding_distance(points: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance of each row (inf at objective extremes)."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n, m = points.shape
    distance = np.zeros(n)
    if n <= 2:
        return np.full(n, np.inf)
    for k in range(m):
        order = np.argsort(points[:, k], kind="stable")
        lo, hi = points[order[0], k], points[order[-1], k]
        distance[order[0]] = distance[order[-1]] = np.inf
        span = hi - lo
        if span <= 0:
            continue
        gaps = (points[order[2:], k] - points[order[:-2], k]) / span
        distance[order[1:-1]] += gaps
    return distance
