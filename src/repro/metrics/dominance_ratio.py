"""Ratio of dominance (RoD) between two solution sets.

The paper (Figs. 5 bottom, 6b) reports "the percentage of solutions found by
HADAS that dominate the optimized baselines (and vice-versa)".  We realise
that as: the fraction of set A's solutions that dominate *at least one*
solution of set B.  The symmetric report carries both directions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.pareto import dominates


def ratio_of_dominance(ours: np.ndarray, theirs: np.ndarray) -> float:
    """Fraction of ``ours`` rows dominating >= 1 row of ``theirs`` (maximise)."""
    ours = np.atleast_2d(np.asarray(ours, dtype=float))
    theirs = np.atleast_2d(np.asarray(theirs, dtype=float))
    if len(ours) == 0:
        return 0.0
    count = 0
    for a in ours:
        if any(dominates(a, b) for b in theirs):
            count += 1
    return count / len(ours)


@dataclass(frozen=True)
class DominanceReport:
    """Two-way dominance comparison of solution sets A and B."""

    rod_a_over_b: float
    rod_b_over_a: float

    @property
    def advantage(self) -> float:
        """Positive when A dominates more than it is dominated."""
        return self.rod_a_over_b - self.rod_b_over_a


def dominance_report(a: np.ndarray, b: np.ndarray) -> DominanceReport:
    """Symmetric RoD report between sets ``a`` and ``b``."""
    return DominanceReport(
        rod_a_over_b=ratio_of_dominance(a, b),
        rod_b_over_a=ratio_of_dominance(b, a),
    )
