"""Additional front-quality metrics: IGD and knee-point selection.

Inverted generational distance (IGD) measures how well a front approximates
a reference front; knee-point selection picks the best-trade-off solution —
the decision rule deployment engineers actually use on a 2-D front.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.pareto import non_dominated_mask


def inverted_generational_distance(front: np.ndarray, reference: np.ndarray) -> float:
    """Mean distance from each reference point to its nearest front point.

    Lower is better; 0 means the front covers the reference exactly.  Both
    inputs are (n, m) objective matrices in the same (maximisation) scale.
    """
    front = np.atleast_2d(np.asarray(front, dtype=float))
    reference = np.atleast_2d(np.asarray(reference, dtype=float))
    if front.shape[1] != reference.shape[1]:
        raise ValueError(
            f"front has {front.shape[1]} objectives, reference {reference.shape[1]}"
        )
    if len(front) == 0:
        return float("inf")
    distances = np.linalg.norm(
        reference[:, None, :] - front[None, :, :], axis=2
    ).min(axis=1)
    return float(distances.mean())


def knee_point(points: np.ndarray) -> int:
    """Index of the knee of a 2-D maximisation front.

    The knee is the Pareto point farthest *above* the chord joining the two
    objective extremes — the solution where giving up either objective
    starts costing disproportionately.  Degenerate fronts (single point,
    collinear chord) fall back to the utopia-closest point.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if points.shape[1] != 2:
        raise ValueError("knee_point is defined for 2-D fronts")
    mask = non_dominated_mask(points)
    front_idx = np.flatnonzero(mask)
    front = points[front_idx]
    if len(front) == 1:
        return int(front_idx[0])

    lo = front[np.argmin(front[:, 0])]
    hi = front[np.argmax(front[:, 0])]
    chord = hi - lo
    norm = np.linalg.norm(chord)
    if norm < 1e-12:
        # Collinear/degenerate: pick utopia-closest on the full front.
        utopia = front.max(axis=0)
        spans = np.maximum(front.max(axis=0) - front.min(axis=0), 1e-12)
        distance = np.linalg.norm((utopia - front) / spans, axis=1)
        return int(front_idx[int(np.argmin(distance))])
    # Signed perpendicular offset from the chord; the knee bulges toward
    # the utopia direction (positive side for a maximisation front).
    direction = chord / norm
    deltas = front - lo
    offsets = direction[0] * deltas[:, 1] - direction[1] * deltas[:, 0]
    return int(front_idx[int(np.argmax(np.abs(offsets)))])
