"""Multi-objective comparison metrics used in the paper's evaluation.

* Pareto dominance utilities (:mod:`~repro.metrics.pareto`);
* exact hypervolume for 2-D/3-D maximisation fronts
  (:mod:`~repro.metrics.hypervolume`) — paper Fig. 6a;
* ratio of dominance between two solution sets
  (:mod:`~repro.metrics.dominance_ratio`) — paper Fig. 5 bottom / Fig. 6b.

Convention: **all objectives are maximised**.  Callers negate
minimisation objectives (energy, latency) before calling in.
"""

from repro.metrics.dominance_ratio import dominance_report, ratio_of_dominance
from repro.metrics.hypervolume import hypervolume
from repro.metrics.pareto import (
    crowding_distance,
    dominates,
    non_dominated_mask,
    non_dominated_sort,
    pareto_front,
)
from repro.metrics.quality import inverted_generational_distance, knee_point

__all__ = [
    "dominates",
    "non_dominated_mask",
    "pareto_front",
    "non_dominated_sort",
    "crowding_distance",
    "hypervolume",
    "ratio_of_dominance",
    "dominance_report",
    "inverted_generational_distance",
    "knee_point",
]
