"""Cross-module integration tests: end-to-end flows and path consistency."""

from __future__ import annotations

import numpy as np
import pytest

from repro import HadasConfig, HadasSearch, get_platform
from repro.accuracy.exit_model import BackboneExitOracle
from repro.arch.space import miniature_space
from repro.data import SyntheticVisionDataset
from repro.exits.multi_exit import MultiExitNetwork
from repro.exits.placement import ExitPlacement
from repro.exits.training import train_exits
from repro.runtime.controller import OracleController
from repro.supernet.pretrain import pretrain_supernet
from repro.supernet.supernet import MiniSupernet


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def result(self):
        config = HadasConfig(
            platform="agx-gpu", seed=21,
            outer_population=8, outer_generations=3,
            inner_population=8, inner_generations=3,
            ioe_candidates=2, oracle_samples=512,
        )
        return HadasSearch(config).run()

    def test_selected_model_is_deployable(self, result):
        """The selected DyNN must be a complete (b, x, f) specification."""
        best = result.selected_model()
        config = best.payload["config"]
        evaluation = best.payload["evaluation"]
        platform = get_platform("agx-gpu")
        # Backbone decodable from the space.
        assert result.space.decode(result.space.encode(config)).key == config.key
        # Exits within bounds for this backbone.
        placement = evaluation.placement
        assert placement.total_layers == config.total_mbconv_layers
        # DVFS on this platform's grid.
        assert evaluation.setting.core_ghz in platform.core_freqs_ghz
        assert evaluation.setting.emc_ghz in platform.emc_freqs_ghz

    def test_dynamic_dominates_static_deployment(self, result):
        """Every archived DyNN beats its own static backbone on energy."""
        for member in result.dynn_pareto():
            static = member.payload["static"]
            evaluation = member.payload["evaluation"]
            assert evaluation.dynamic_energy_j < static.energy_j
            assert evaluation.dynamic_accuracy * 100 > static.accuracy - 1.0

    def test_archive_members_mutually_nondominated(self, result):
        from repro.metrics.pareto import dominates

        objs = result.outer.dynamic_archive.objectives()
        for i in range(len(objs)):
            for j in range(len(objs)):
                if i != j:
                    assert not dominates(objs[i], objs[j])

    def test_static_archive_matches_explored_front(self, result):
        from repro.metrics.pareto import non_dominated_mask

        explored = np.stack([ind.objectives for ind in result.outer.explored])
        mask = non_dominated_mask(explored)
        front_keys = {
            ind.key() for ind, on_front in zip(result.outer.explored, mask) if on_front
        }
        archive_keys = {ind.key() for ind in result.outer.static_archive}
        assert archive_keys == front_keys


class TestOracleVsTrainedPathConsistency:
    """The surrogate oracle and the trainable path expose the same
    statistics interface and agree on the qualitative invariants."""

    @pytest.fixture(scope="class")
    def trained_stats(self):
        space = miniature_space(num_classes=4)
        dataset = SyntheticVisionDataset(num_classes=4, image_size=32, seed=9)
        train_x, train_y, _ = dataset.generate(192, split="train")
        val_x, val_y, _ = dataset.generate(128, split="val")
        supernet = MiniSupernet(space, seed=0)
        pretrain_supernet(supernet, train_x, train_y, steps=30, lr=3e-3, seed=0)
        config = space.decode(space.max_genome())
        total = config.total_mbconv_layers
        placement = ExitPlacement(total, (5, 8, total - 1))
        network = MultiExitNetwork(supernet, config, placement, seed=1)
        result = train_exits(network, train_x, train_y, val_x, val_y, steps=40, seed=0)
        return placement, result.evaluation

    @pytest.fixture(scope="class")
    def oracle_stats(self, trained_stats):
        placement, trained = trained_stats
        oracle = BackboneExitOracle(
            "consistency", placement.total_layers, max(trained.final_accuracy, 0.3),
            seed=0, n_samples=1024,
        )
        return oracle.evaluate_placement(placement)

    def test_same_interface(self, trained_stats, oracle_stats):
        _, trained = trained_stats
        assert trained.num_exits == oracle_stats.num_exits
        assert trained.usage.shape == oracle_stats.usage.shape

    def test_shared_invariants(self, trained_stats, oracle_stats):
        for stats in (trained_stats[1], oracle_stats):
            assert stats.usage.sum() == pytest.approx(1.0)
            assert stats.dynamic_accuracy >= stats.final_accuracy - 1e-9
            assert np.all(stats.dissimilarity >= 0)

    def test_oracle_controller_reproduces_ideal_mapping(self):
        """OracleController decisions == ideal_mapping_stats usage."""
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 4, size=200)
        exit_logits = rng.normal(size=(3, 200, 4))
        final_logits = rng.normal(size=(200, 4))
        from repro.exits.evaluation import evaluate_exit_logits

        stats = evaluate_exit_logits(exit_logits, final_logits, labels)
        decisions = OracleController().decide(exit_logits, labels)
        for i in range(3):
            assert (decisions == i).mean() == pytest.approx(stats.usage[i])


class TestCrossPlatformConsistency:
    def test_same_backbone_ranks_differently_across_platforms(self):
        """CPU vs GPU invert latency relationships for some configs — the
        reason the paper searches per platform."""
        from repro.arch.cost import estimate_cost
        from repro.baselines.attentivenas import attentivenas_model
        from repro.hardware.dvfs import DvfsSpace
        from repro.hardware.energy import EnergyModel

        a0 = estimate_cost(attentivenas_model("a0"))
        a6 = estimate_cost(attentivenas_model("a6"))
        ratios = {}
        for key in ("tx2-gpu", "denver-cpu"):
            platform = get_platform(key)
            model = EnergyModel(platform)
            setting = DvfsSpace(platform).default_setting()
            ratios[key] = (
                model.network_report(a6, setting).latency_s
                / model.network_report(a0, setting).latency_s
            )
        # The CPU (compute-starved) stretches big models far more than the
        # GPU (dispatch-overhead-bound).
        assert ratios["denver-cpu"] > ratios["tx2-gpu"] * 1.5

    def test_searches_produce_platform_specific_settings(self):
        settings_found = {}
        for key in ("tx2-gpu", "carmel-cpu"):
            config = HadasConfig(
                platform=key, seed=13,
                outer_population=6, outer_generations=2,
                inner_population=6, inner_generations=3,
                ioe_candidates=2, oracle_samples=256,
            )
            result = HadasSearch(config).run()
            best = result.selected_model().payload["evaluation"]
            settings_found[key] = best.setting
        # Settings live on each platform's own grid.
        assert settings_found["tx2-gpu"].core_ghz <= 1.4
        assert settings_found["carmel-cpu"].core_ghz <= 2.3
