"""Static S(b) and dynamic D(x, f | b) evaluators (paper eqs. 3, 5-7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accuracy.exit_model import BackboneExitOracle
from repro.arch.cost import estimate_cost
from repro.baselines.attentivenas import attentivenas_model
from repro.eval.dynamic import DynamicEvaluator
from repro.eval.static import StaticEvaluator
from repro.exits.placement import ExitPlacement
from repro.hardware.energy import EnergyModel


@pytest.fixture(scope="module")
def a3():
    return attentivenas_model("a3")


@pytest.fixture(scope="module")
def dyn_evaluator(static_evaluator, surrogate, a3):
    static = static_evaluator.evaluate(a3)
    oracle = BackboneExitOracle(
        a3.key, a3.total_mbconv_layers, surrogate.accuracy_fraction(a3), seed=0
    )
    return DynamicEvaluator(
        config=a3,
        cost=static_evaluator.cost(a3),
        oracle=oracle,
        energy_model=EnergyModel(static_evaluator.platform),
        baseline_energy_j=static.energy_j,
        baseline_latency_s=static.latency_s,
        gamma=1.0,
    )


class TestStaticEvaluator:
    def test_caching(self, static_evaluator, a3):
        first = static_evaluator.evaluate(a3)
        second = static_evaluator.evaluate(a3)
        assert first is second

    def test_objectives_signs(self, static_evaluator, a3):
        evaluation = static_evaluator.evaluate(a3)
        acc, neg_lat, neg_erg = evaluation.objectives()
        assert acc > 0 and neg_lat < 0 and neg_erg < 0

    def test_uses_default_dvfs(self, static_evaluator, tx2_dvfs):
        assert static_evaluator.default_setting == tx2_dvfs.default_setting()

    def test_num_evaluations_counts_distinct(self, tx2_gpu, surrogate):
        evaluator = StaticEvaluator(tx2_gpu, surrogate, seed=0)
        evaluator.evaluate(attentivenas_model("a0"))
        evaluator.evaluate(attentivenas_model("a0"))
        evaluator.evaluate(attentivenas_model("a1"))
        assert evaluator.num_evaluations == 2

    def test_cost_cached(self, static_evaluator, a3):
        assert static_evaluator.cost(a3) is static_evaluator.cost(a3)


class TestDynamicEvaluator:
    def _placement(self, a3, positions=(6, 10, 14)):
        return ExitPlacement(a3.total_mbconv_layers, positions)

    def test_eval_cached(self, dyn_evaluator, static_evaluator, a3):
        placement = self._placement(a3)
        setting = static_evaluator.default_setting
        assert dyn_evaluator.evaluate(placement, setting) is dyn_evaluator.evaluate(
            placement, setting
        )

    def test_energy_gain_positive_for_sensible_exits(self, dyn_evaluator, static_evaluator, a3):
        evaluation = dyn_evaluator.evaluate(
            self._placement(a3), static_evaluator.default_setting
        )
        assert 0.1 < evaluation.energy_gain < 0.9
        assert 0.1 < evaluation.latency_gain < 0.9

    def test_dynamic_energy_is_usage_weighted(self, dyn_evaluator, static_evaluator, a3):
        placement = self._placement(a3)
        setting = static_evaluator.default_setting
        evaluation = dyn_evaluator.evaluate(placement, setting)
        usage = evaluation.exit_stats.usage
        full = dyn_evaluator._full_path_report(placement.positions, setting)
        manual = usage[:-1] @ evaluation.exit_energy_j + usage[-1] * full.energy_j
        assert evaluation.dynamic_energy_j == pytest.approx(manual)

    def test_exit_paths_cumulative(self, dyn_evaluator, static_evaluator, a3):
        """Later exits cost more: prefix grows and earlier branches add on."""
        evaluation = dyn_evaluator.evaluate(
            self._placement(a3), static_evaluator.default_setting
        )
        assert np.all(np.diff(evaluation.exit_energy_j) > 0)
        assert np.all(np.diff(evaluation.exit_latency_s) > 0)

    def test_full_path_costs_more_than_backbone(self, dyn_evaluator, static_evaluator, a3):
        placement = self._placement(a3)
        setting = static_evaluator.default_setting
        full = dyn_evaluator._full_path_report(placement.positions, setting)
        assert full.energy_j > dyn_evaluator.baseline_energy_j * 0.9

    def test_scores_eq6_composition(self, dyn_evaluator, static_evaluator, a3):
        placement = self._placement(a3)
        evaluation = dyn_evaluator.evaluate(placement, static_evaluator.default_setting)
        stats = evaluation.exit_stats
        expected = (
            stats.n_i
            * np.clip(1 - evaluation.exit_energy_j / dyn_evaluator.baseline_energy_j, 0, None)
            * np.clip(1 - evaluation.exit_latency_s / dyn_evaluator.baseline_latency_s, 0, None)
            * stats.dissimilarity**1.0
        )
        np.testing.assert_allclose(evaluation.scores, expected)
        assert evaluation.d_score == pytest.approx(expected.mean())

    def test_gamma_zero_removes_dissim(self, static_evaluator, surrogate, a3):
        static = static_evaluator.evaluate(a3)
        oracle = BackboneExitOracle(
            a3.key, a3.total_mbconv_layers, surrogate.accuracy_fraction(a3), seed=0
        )
        evaluator = DynamicEvaluator(
            config=a3, cost=static_evaluator.cost(a3), oracle=oracle,
            energy_model=EnergyModel(static_evaluator.platform),
            baseline_energy_j=static.energy_j, baseline_latency_s=static.latency_s,
            gamma=0.0,
        )
        placement = self._placement(a3)
        evaluation = evaluator.evaluate(placement, static_evaluator.default_setting)
        stats = evaluation.exit_stats
        expected = (
            stats.n_i
            * np.clip(1 - evaluation.exit_energy_j / evaluator.baseline_energy_j, 0, None)
            * np.clip(1 - evaluation.exit_latency_s / evaluator.baseline_latency_s, 0, None)
        )
        np.testing.assert_allclose(evaluation.scores, expected)

    def test_literal_ratios_mode(self, static_evaluator, surrogate, a3):
        static = static_evaluator.evaluate(a3)
        oracle = BackboneExitOracle(
            a3.key, a3.total_mbconv_layers, surrogate.accuracy_fraction(a3), seed=0
        )
        evaluator = DynamicEvaluator(
            config=a3, cost=static_evaluator.cost(a3), oracle=oracle,
            energy_model=EnergyModel(static_evaluator.platform),
            baseline_energy_j=static.energy_j, baseline_latency_s=static.latency_s,
            literal_ratios=True,
        )
        placement = self._placement(a3)
        evaluation = evaluator.evaluate(placement, static_evaluator.default_setting)
        ratios = evaluation.exit_energy_j / evaluator.baseline_energy_j
        assert np.all(evaluation.scores <= evaluation.exit_stats.n_i * ratios * 1.01 + 1e-9)

    def test_objectives_are_proxy_averages(self, dyn_evaluator, static_evaluator, a3):
        placement = self._placement(a3)
        evaluation = dyn_evaluator.evaluate(placement, static_evaluator.default_setting)
        d_acc, d_energy, d_latency = dyn_evaluator.objectives(evaluation)
        stats = evaluation.exit_stats
        assert d_acc == pytest.approx(float(np.mean(stats.n_i * stats.dissimilarity)))
        expected_energy = np.clip(
            1 - evaluation.exit_energy_j / dyn_evaluator.baseline_energy_j, 0, None
        ).mean()
        assert d_energy == pytest.approx(float(expected_energy))
        assert 0 <= d_latency <= 1

    def test_lower_frequency_changes_both_sides(self, dyn_evaluator, static_evaluator, a3, tx2_dvfs):
        placement = self._placement(a3)
        default = static_evaluator.default_setting
        slow = tx2_dvfs.decode(2, 2)
        fast_eval = dyn_evaluator.evaluate(placement, default)
        slow_eval = dyn_evaluator.evaluate(placement, slow)
        assert slow_eval.dynamic_latency_s > fast_eval.dynamic_latency_s
        # Accuracy side is DVFS-independent.
        np.testing.assert_array_equal(slow_eval.exit_stats.n_i, fast_eval.exit_stats.n_i)

    def test_branch_cost_cached_per_position(self, dyn_evaluator, a3):
        first = dyn_evaluator.branch_cost(6)
        second = dyn_evaluator.branch_cost(6)
        assert first is second

    def test_invalid_gamma(self, static_evaluator, surrogate, a3):
        static = static_evaluator.evaluate(a3)
        oracle = BackboneExitOracle(a3.key, a3.total_mbconv_layers, 0.87, seed=0)
        with pytest.raises(ValueError):
            DynamicEvaluator(
                config=a3, cost=static_evaluator.cost(a3), oracle=oracle,
                energy_model=EnergyModel(static_evaluator.platform),
                baseline_energy_j=static.energy_j, baseline_latency_s=static.latency_s,
                gamma=-1.0,
            )
