"""Tests for the deterministic RNG tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import RngTree, child_rng, hash_to_seed, make_rng


class TestHashToSeed:
    def test_deterministic(self):
        assert hash_to_seed(1, "a", 2.5) == hash_to_seed(1, "a", 2.5)

    def test_distinct_parts_distinct_seeds(self):
        assert hash_to_seed("a", "b") != hash_to_seed("ab")
        assert hash_to_seed(1, 2) != hash_to_seed(2, 1)

    def test_nonnegative_63bit(self):
        for parts in [(0,), ("x", "y"), (10**18,)]:
            seed = hash_to_seed(*parts)
            assert 0 <= seed < 2**63

    @given(st.lists(st.text(max_size=8), min_size=1, max_size=4))
    def test_stable_for_any_strings(self, parts):
        assert hash_to_seed(*parts) == hash_to_seed(*parts)


class TestMakeRng:
    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_int_seed_reproducible(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestChildRng:
    def test_same_name_same_stream(self):
        a = child_rng(7, "x").random(4)
        b = child_rng(7, "x").random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_names_independent(self):
        a = child_rng(7, "x").random(4)
        b = child_rng(7, "y").random(4)
        assert not np.array_equal(a, b)

    def test_generator_parent_draws(self):
        parent = np.random.default_rng(0)
        child_a = child_rng(parent, "x")
        child_b = child_rng(parent, "x")  # second draw -> different stream
        assert child_a.random() != child_b.random()


class TestRngTree:
    def test_child_memoised(self):
        tree = RngTree(3)
        assert tree.child("a") is tree.child("a")

    def test_order_independence(self):
        t1 = RngTree(3)
        t2 = RngTree(3)
        __ = t1.child("first")
        a = t1.child("second").random()
        b = t2.child("second").random()
        assert a == b

    def test_fresh_restarts_stream(self):
        tree = RngTree(3)
        first = tree.fresh("s").random(3)
        second = tree.fresh("s").random(3)
        np.testing.assert_array_equal(first, second)

    def test_subtree_independent_of_parent(self):
        tree = RngTree(3)
        sub = tree.subtree("inner")
        assert sub.child("a").random() != tree.child("a").random()

    def test_nested_names_compose(self):
        tree = RngTree(9)
        assert tree.child("a", "b") is not tree.child("a")
        x = tree.child("a", "b").random()
        assert x == RngTree(9).child("a", "b").random()

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=6))
    def test_any_seed_name_reproducible(self, seed, name):
        assert RngTree(seed).child(name).random() == RngTree(seed).child(name).random()
