"""Tests for serialization, tables, ascii plots, and validation helpers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.utils.ascii_plot import bars, scatter
from repro.utils.serialization import from_jsonable, load_json, save_json, to_jsonable
from repro.utils.tables import format_kv_block, format_table
from repro.utils.validation import (
    check_in_range,
    check_nonneg,
    check_one_of,
    check_positive,
    check_probability,
    check_same_length,
)


@dataclass
class Inner:
    name: str
    value: float


@dataclass
class Outer:
    items: list[Inner]
    table: dict[str, int]
    arr: np.ndarray = field(default_factory=lambda: np.zeros(2))


class TestSerialization:
    def test_roundtrip_dataclass_tree(self, tmp_path):
        obj = Outer(items=[Inner("a", 1.5), Inner("b", -2.0)], table={"x": 1},
                    arr=np.asarray([1.0, 2.0]))
        path = save_json(obj, tmp_path / "o.json")
        back = load_json(path, Outer)
        assert back.items[0] == Inner("a", 1.5)
        assert back.table == {"x": 1}
        np.testing.assert_array_equal(back.arr, obj.arr)

    def test_numpy_scalars_lowered(self):
        data = to_jsonable({"i": np.int64(3), "f": np.float32(1.5), "b": np.bool_(True)})
        assert data == {"i": 3, "f": 1.5, "b": True}

    def test_tuple_and_set_become_lists(self):
        assert to_jsonable((1, 2)) == [1, 2]
        assert sorted(to_jsonable({3, 1})) == [1, 3]

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_load_without_cls_returns_raw(self, tmp_path):
        path = save_json({"a": 1}, tmp_path / "x.json")
        assert load_json(path) == {"a": 1}

    def test_ndarray_marker_roundtrip(self):
        data = to_jsonable(np.arange(3))
        back = from_jsonable(data, np.ndarray)
        np.testing.assert_array_equal(back, np.arange(3))


class TestTables:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [[1, 2.345], [10, 0.5]], title="T", precision=1)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.3" in text and "10" in text
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equal width

    def test_bool_rendering(self):
        text = format_table(["x"], [[True], [False]])
        assert "yes" in text and "-" in text

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_kv_block(self):
        text = format_kv_block("head", [("k", 1.0), ("longer", 2)])
        assert text.startswith("head")
        assert "longer" in text


class TestAsciiPlot:
    def test_scatter_contains_markers_and_legend(self):
        text = scatter({"alpha": [(0, 0), (1, 1)], "beta": [(0.5, 0.5)]},
                       width=20, height=5, title="t")
        assert "a" in text and "b" in text
        assert "legend" in text

    def test_scatter_degenerate_single_point(self):
        text = scatter({"x": [(1.0, 1.0)]}, width=10, height=4)
        assert "x" in text

    def test_bars_scaling(self):
        text = bars({"one": 1.0, "two": 2.0}, width=10)
        one_line = next(line for line in text.splitlines() if "one" in line)
        two_line = next(line for line in text.splitlines() if "two" in line)
        assert two_line.count("#") == 2 * one_line.count("#")

    def test_bars_empty(self):
        assert bars({}, title="t") == "t"


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 2) == 2
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_check_nonneg(self):
        assert check_nonneg("x", 0) == 0
        with pytest.raises(ValueError):
            check_nonneg("x", -1)

    def test_check_probability(self):
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability("p", 1.01)

    def test_check_in_range(self):
        assert check_in_range("r", 5, 0, 10) == 5
        with pytest.raises(ValueError):
            check_in_range("r", 11, 0, 10)

    def test_check_one_of(self):
        assert check_one_of("k", "a", ["a", "b"]) == "a"
        with pytest.raises(ValueError):
            check_one_of("k", "c", ["a", "b"])

    def test_check_same_length(self):
        check_same_length("a", [1], "b", [2])
        with pytest.raises(ValueError):
            check_same_length("a", [1], "b", [1, 2])
