"""Outer-engine internals: two-stage selection, archives, budget accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.space import BackboneSpace
from repro.search.ioe import InnerEngine, InnerResult
from repro.search.nsga2 import Nsga2Config
from repro.search.ooe import OuterEngine


@pytest.fixture(scope="module")
def outer_run(static_evaluator, surrogate):
    space = BackboneSpace()
    inner_calls: list[str] = []

    def run_inner(config, static):
        inner_calls.append(config.key)
        engine = InnerEngine(
            config, static_evaluator, surrogate.accuracy_fraction(config),
            nsga=Nsga2Config(population=6, generations=2), seed=1,
        )
        return engine.run()

    engine = OuterEngine(
        space=space,
        evaluator=static_evaluator,
        run_inner=run_inner,
        nsga=Nsga2Config(population=8, generations=3),
        ioe_candidates=3,
        seed=4,
    )
    result = engine.run()
    return result, inner_calls


class TestOuterEngine:
    def test_inner_invocations_bounded_by_pruning(self, outer_run):
        result, inner_calls = outer_run
        # At most ioe_candidates distinct IOE runs per generation.
        assert len(result.inner_results) <= 3 * 3
        # Each distinct backbone's IOE ran exactly once (memoised).
        assert len(inner_calls) == len(result.inner_results)

    def test_inner_results_keyed_by_backbone(self, outer_run):
        result, _ = outer_run
        for key, inner in result.inner_results.items():
            assert isinstance(inner, InnerResult)
            assert inner.backbone_key == key

    def test_archives_populated(self, outer_run):
        result, _ = outer_run
        assert len(result.static_archive) >= 1
        assert len(result.dynamic_archive) >= 1

    def test_static_points_include_all_explored(self, outer_run):
        result, _ = outer_run
        points = result.static_points(explored=True)
        assert len(points) == len(result.explored)

    def test_budget_accounting(self, outer_run):
        result, _ = outer_run
        assert result.num_static_evaluations == len(
            {ind.key() for ind in result.explored}
        )
        assert result.num_dynamic_evaluations == sum(
            inner.num_evaluations for inner in result.inner_results.values()
        )
        assert result.generations == 3

    def test_dynamic_archive_objectives_absolute(self, outer_run):
        """Archive objectives are (accuracy, -energy, -latency) in absolute
        units so compact and large backbones compete fairly."""
        result, _ = outer_run
        for member in result.dynamic_archive:
            acc, neg_energy, neg_latency = member.objectives
            assert 0 < acc <= 1
            assert neg_energy < 0 and neg_latency < 0
            evaluation = member.payload["evaluation"]
            assert acc == pytest.approx(evaluation.dynamic_accuracy)
            assert -neg_energy == pytest.approx(evaluation.dynamic_energy_j)

    def test_invalid_candidates(self, static_evaluator):
        with pytest.raises(ValueError):
            OuterEngine(
                space=BackboneSpace(),
                evaluator=static_evaluator,
                run_inner=lambda c, s: None,
                ioe_candidates=0,
            )

    def test_pruned_backbones_are_best_ranked(self, static_evaluator, surrogate):
        """Early selection must hand the IOE the non-dominated backbones."""
        space = BackboneSpace()
        granted: list[tuple] = []

        def run_inner(config, static):
            granted.append(static.objectives())
            engine = InnerEngine(
                config, static_evaluator, surrogate.accuracy_fraction(config),
                nsga=Nsga2Config(population=4, generations=2), seed=0,
            )
            return engine.run()

        engine = OuterEngine(
            space=space, evaluator=static_evaluator, run_inner=run_inner,
            nsga=Nsga2Config(population=10, generations=1), ioe_candidates=2, seed=9,
        )
        result = engine.run()
        # The IOE-granted backbones must not be dominated by any non-granted
        # explored backbone.
        from repro.metrics.pareto import dominates

        all_objs = [tuple(ind.objectives) for ind in result.explored]
        for obj in granted:
            dominated_by = sum(dominates(np.asarray(o), np.asarray(obj)) for o in all_objs)
            assert dominated_by == 0
