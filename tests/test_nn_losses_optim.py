"""Losses (incl. the paper's eq. 4), optimisers and schedulers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.losses import (
    accuracy,
    cross_entropy,
    knowledge_distillation_loss,
    multi_exit_loss,
    nll_loss,
)
from repro.nn.optim import SGD, Adam
from repro.nn.schedulers import CosineAnnealingLR, StepLR
from repro.nn.tensor import Tensor


class TestCrossEntropy:
    def test_uniform_logits_log_c(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss.item() == pytest.approx(np.log(10))

    def test_perfect_prediction_near_zero(self):
        logits = np.full((2, 5), -100.0)
        logits[0, 1] = logits[1, 3] = 100.0
        loss = cross_entropy(Tensor(logits), np.asarray([1, 3]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_gradient_is_softmax_minus_onehot(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        targets = np.asarray([0, 1, 2])
        cross_entropy(logits, targets).backward()
        probs = F.softmax_np(logits.data)
        onehot = np.zeros((3, 4))
        onehot[np.arange(3), targets] = 1
        np.testing.assert_allclose(logits.grad, (probs - onehot) / 3, atol=1e-10)

    def test_nll_expects_log_probs(self):
        log_probs = F.log_softmax(Tensor(np.zeros((2, 4))))
        assert nll_loss(log_probs, np.asarray([0, 1])).item() == pytest.approx(np.log(4))


class TestKnowledgeDistillation:
    def test_zero_when_matched(self):
        logits = np.random.default_rng(1).normal(size=(4, 6))
        loss = knowledge_distillation_loss(Tensor(logits), logits, temperature=3.0)
        assert abs(loss.item()) < 1e-10

    def test_positive_when_mismatched(self):
        rng = np.random.default_rng(2)
        loss = knowledge_distillation_loss(
            Tensor(rng.normal(size=(4, 6))), rng.normal(size=(4, 6))
        )
        assert loss.item() > 0

    def test_teacher_receives_no_gradient(self):
        student = Tensor(np.random.default_rng(3).normal(size=(2, 4)), requires_grad=True)
        teacher = Tensor(np.random.default_rng(4).normal(size=(2, 4)), requires_grad=True)
        knowledge_distillation_loss(student, teacher.data).backward()
        assert student.grad is not None
        assert teacher.grad is None

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            knowledge_distillation_loss(Tensor(np.zeros((1, 2))), np.zeros((1, 2)), temperature=0)

    def test_gradient_pulls_student_to_teacher(self):
        rng = np.random.default_rng(5)
        teacher = rng.normal(size=(8, 5))
        student = Tensor(rng.normal(size=(8, 5)), requires_grad=True)
        before = knowledge_distillation_loss(student, teacher).item()
        for _ in range(60):
            loss = knowledge_distillation_loss(student, teacher)
            student.zero_grad()
            loss.backward()
            student.data = student.data - 5.0 * student.grad
        after = knowledge_distillation_loss(student, teacher).item()
        assert after < before * 0.1


class TestMultiExitLoss:
    """Paper eq. 4: mean over exits of (NLL + KD vs final classifier)."""

    def test_requires_exits(self):
        with pytest.raises(ValueError):
            multi_exit_loss([], np.zeros((2, 3)), np.zeros(2, dtype=int))

    def test_matches_manual_composition(self):
        rng = np.random.default_rng(6)
        targets = np.asarray([0, 2, 1])
        final = rng.normal(size=(3, 4))
        exits = [Tensor(rng.normal(size=(3, 4))) for _ in range(2)]
        loss = multi_exit_loss(exits, final, targets, kd_weight=1.0, temperature=4.0)
        manual = sum(
            cross_entropy(e, targets).item()
            + knowledge_distillation_loss(e, final, 4.0).item()
            for e in exits
        ) / 2
        assert loss.item() == pytest.approx(manual)

    def test_kd_weight_zero_is_pure_nll(self):
        rng = np.random.default_rng(7)
        targets = np.asarray([1, 0])
        exits = [Tensor(rng.normal(size=(2, 3)))]
        loss = multi_exit_loss(exits, rng.normal(size=(2, 3)), targets, kd_weight=0.0)
        assert loss.item() == pytest.approx(cross_entropy(exits[0], targets).item())

    def test_gradients_reach_every_exit(self):
        rng = np.random.default_rng(8)
        exits = [Tensor(rng.normal(size=(2, 3)), requires_grad=True) for _ in range(3)]
        multi_exit_loss(exits, rng.normal(size=(2, 3)), np.asarray([0, 1])).backward()
        assert all(e.grad is not None for e in exits)

    def test_accuracy_helper(self):
        logits = np.zeros((4, 3))
        logits[np.arange(4), [0, 1, 2, 0]] = 1.0
        assert accuracy(logits, np.asarray([0, 1, 2, 1])) == 0.75


class QuadraticProblem:
    """min ||x - target||^2 — closed-form sanity target for optimisers."""

    def __init__(self, seed=0):
        rng = np.random.default_rng(seed)
        self.param = Tensor(rng.normal(size=(8,)), requires_grad=True)
        self.target = rng.normal(size=(8,))

    def loss(self) -> Tensor:
        diff = self.param - Tensor(self.target)
        return (diff * diff).sum()


class TestOptimizers:
    @pytest.mark.parametrize("make", [
        lambda p: SGD(p, lr=0.05),
        lambda p: SGD(p, lr=0.02, momentum=0.9),
        lambda p: SGD(p, lr=0.02, momentum=0.9, nesterov=True),
        lambda p: Adam(p, lr=0.3),
    ])
    def test_converges_on_quadratic(self, make):
        problem = QuadraticProblem()
        opt = make([problem.param])
        for _ in range(120):
            loss = problem.loss()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(problem.param.data, problem.target, atol=1e-2)

    def test_weight_decay_shrinks(self):
        param = Tensor(np.ones(4), requires_grad=True)
        opt = SGD([param], lr=0.1, weight_decay=1.0)
        param.grad = np.zeros(4)
        opt.step()
        np.testing.assert_allclose(param.data, np.full(4, 0.9))

    def test_skips_none_grads(self):
        param = Tensor(np.ones(2), requires_grad=True)
        before = param.data.copy()
        SGD([param], lr=0.1).step()
        np.testing.assert_array_equal(param.data, before)

    def test_requires_trainable_params(self):
        with pytest.raises(ValueError):
            SGD([Tensor(np.ones(2))], lr=0.1)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([Tensor(np.ones(1), requires_grad=True)], lr=0)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([Tensor(np.ones(1), requires_grad=True)], lr=0.1, nesterov=True)


class TestSchedulers:
    def _opt(self):
        return SGD([Tensor(np.ones(1), requires_grad=True)], lr=1.0)

    def test_step_lr(self):
        opt = self._opt()
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_cosine_endpoints(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        values = [sched.step() for _ in range(10)]
        assert values[0] < 1.0
        assert values[-1] == pytest.approx(0.0, abs=1e-9)
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_cosine_eta_min_floor(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=5, eta_min=0.1)
        for _ in range(7):
            lr = sched.step()
        assert lr == pytest.approx(0.1)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StepLR(self._opt(), step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(self._opt(), t_max=0)
