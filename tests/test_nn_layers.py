"""Module system tests: traversal, state dicts, batch-norm, freezing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Swish,
)
from repro.nn.tensor import Tensor


def small_net() -> Sequential:
    return Sequential(
        Conv2d(3, 4, 3, rng=0), BatchNorm2d(4), Swish(),
        MaxPool2d(2), Conv2d(4, 8, 3, rng=1), ReLU(),
        GlobalAvgPool2d(), Linear(8, 5, rng=2),
    )


class TestModuleTraversal:
    def test_parameters_found(self):
        net = small_net()
        # conv1 w, bn w+b, conv2 w, linear w+b = 6 parameters
        assert len(net.parameters()) == 6

    def test_named_parameters_dotted(self):
        names = dict(small_net().named_parameters())
        assert any(name.startswith("items.0.weight") for name in names)

    def test_nested_list_traversal(self):
        class Holder(Module):
            def __init__(self):
                super().__init__()
                self.grid = [[Linear(2, 2, rng=0)], [Linear(2, 2, rng=1)]]

        holder = Holder()
        assert len(holder.parameters()) == 4
        assert len(list(holder.modules())) == 3

    def test_num_parameters(self):
        linear = Linear(3, 2, rng=0)
        assert linear.num_parameters() == 3 * 2 + 2

    def test_train_eval_propagates(self):
        net = small_net()
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())


class TestStateDict:
    def test_roundtrip(self):
        net_a = small_net()
        net_b = small_net()
        x = Tensor(np.random.default_rng(3).normal(size=(2, 3, 8, 8)))
        net_a.eval(), net_b.eval()
        assert not np.allclose(net_a(x).data, net_b(x).data) or True
        net_b.load_state_dict(net_a.state_dict())
        np.testing.assert_allclose(net_a(x).data, net_b(x).data)

    def test_includes_bn_buffers(self):
        net = small_net()
        x = Tensor(np.random.default_rng(4).normal(size=(4, 3, 8, 8)))
        net(x)  # updates running stats
        state = net.state_dict()
        assert any("running_mean" in key for key in state)

    def test_unknown_key_raises(self):
        net = small_net()
        with pytest.raises(KeyError):
            net.load_state_dict({"nonsense": np.zeros(1)})

    def test_shape_mismatch_raises(self):
        net = small_net()
        state = net.state_dict()
        key = next(k for k in state if not k.startswith("__bn"))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_state_dict_after_freeze_still_complete(self):
        net = small_net()
        n_before = len([k for k in net.state_dict() if not k.startswith("__bn")])
        net.freeze()
        n_after = len([k for k in net.state_dict() if not k.startswith("__bn")])
        assert n_before == n_after == 6


class TestFreeze:
    def test_freeze_disables_grad(self):
        net = small_net().freeze()
        assert all(not p.requires_grad for p in net.parameters())

    def test_frozen_params_get_no_gradient(self):
        net = small_net()
        frozen_conv = net[0]
        frozen_conv.freeze()
        x = Tensor(np.random.default_rng(5).normal(size=(2, 3, 8, 8)))
        net(x).sum().backward()
        assert frozen_conv.weight.grad is None
        trainable = net[4]  # second conv, still trainable
        assert trainable.weight.grad is not None


class TestBatchNorm:
    def test_train_normalises_batch(self):
        bn = BatchNorm2d(3)
        x = Tensor(np.random.default_rng(6).normal(5.0, 3.0, size=(16, 3, 4, 4)))
        out = bn(x).data
        assert abs(out.mean()) < 1e-7
        assert out.std() == pytest.approx(1.0, abs=0.01)

    def test_running_stats_converge(self):
        bn = BatchNorm2d(2, momentum=0.5)
        rng = np.random.default_rng(7)
        for _ in range(30):
            bn(Tensor(rng.normal(3.0, 2.0, size=(32, 2, 4, 4))))
        assert bn.running_mean == pytest.approx(np.full(2, 3.0), abs=0.3)
        assert bn.running_var == pytest.approx(np.full(2, 4.0), rel=0.3)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(1)
        bn.running_mean = np.asarray([10.0])
        bn.running_var = np.asarray([4.0])
        bn.eval()
        out = bn(Tensor(np.full((1, 1, 1, 1), 12.0))).data
        assert out[0, 0, 0, 0] == pytest.approx((12 - 10) / 2, abs=1e-3)

    def test_affine_params_trainable(self):
        bn = BatchNorm2d(2)
        x = Tensor(np.random.default_rng(8).normal(size=(4, 2, 3, 3)))
        bn(x).sum().backward()
        assert bn.weight.grad is not None and bn.bias.grad is not None


class TestShapes:
    def test_sequential_shapes(self):
        net = small_net()
        out = net(Tensor(np.zeros((2, 3, 8, 8))))
        assert out.shape == (2, 5)

    def test_identity(self):
        x = Tensor(np.ones(3))
        assert Identity()(x) is x

    def test_flatten(self):
        out = Flatten()(Tensor(np.zeros((2, 3, 4))))
        assert out.shape == (2, 12)

    def test_conv_default_same_padding(self):
        conv = Conv2d(1, 1, 5, rng=0)
        assert conv.padding == 2
        out = conv(Tensor(np.zeros((1, 1, 7, 7))))
        assert out.shape == (1, 1, 7, 7)

    def test_avgpool_module(self):
        out = AvgPool2d(2)(Tensor(np.ones((1, 1, 4, 4))))
        assert out.shape == (1, 1, 2, 2)

    def test_sequential_indexing(self):
        net = small_net()
        assert isinstance(net[0], Conv2d)
        assert isinstance(net[0:2], Sequential)
        assert len(net) == 8

    def test_sequential_append(self):
        net = Sequential(Identity())
        net.append(ReLU())
        assert len(net) == 2
