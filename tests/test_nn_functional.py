"""Conv/pool/softmax kernels: shapes, known values, finite-difference grads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestConvForward:
    def test_identity_kernel(self):
        x = np.random.default_rng(0).normal(size=(1, 1, 4, 4))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0  # delta kernel = identity with padding 1
        out = F.conv2d(Tensor(x), Tensor(w), padding=1)
        np.testing.assert_allclose(out.data, x, atol=1e-12)

    def test_output_shape_stride2(self):
        out = F.conv2d(Tensor(np.zeros((2, 3, 8, 8))), Tensor(np.zeros((5, 3, 3, 3))),
                       stride=2, padding=1)
        assert out.shape == (2, 5, 4, 4)

    def test_matches_manual_convolution(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), padding=1).data
        # brute-force reference
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        ref = np.zeros((1, 3, 5, 5))
        for o in range(3):
            for i in range(5):
                for j in range(5):
                    ref[0, o, i, j] = (xp[0, :, i : i + 3, j : j + 3] * w[o]).sum()
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_depthwise_channels_independent(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(2, 1, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), padding=1, groups=2).data
        # Zeroing channel 1 of the input must not affect output channel 0.
        x2 = x.copy()
        x2[:, 1] = 0
        out2 = F.conv2d(Tensor(x2), Tensor(w), padding=1, groups=2).data
        np.testing.assert_allclose(out[:, 0], out2[:, 0])

    def test_bias_added(self):
        out = F.conv2d(Tensor(np.zeros((1, 1, 2, 2))), Tensor(np.zeros((2, 1, 1, 1))),
                       Tensor(np.asarray([1.0, -1.0])), padding=0)
        assert out.data[0, 0].max() == 1.0 and out.data[0, 1].min() == -1.0

    def test_rectangular_kernel_rejected(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 1, 4, 4))), Tensor(np.zeros((1, 1, 3, 5))))

    def test_group_mismatch_rejected(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 4, 4, 4))), Tensor(np.zeros((4, 4, 3, 3))), groups=2)

    def test_empty_output_rejected(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 1, 2, 2))), Tensor(np.zeros((1, 1, 5, 5))), padding=0)


class TestConvGradients:
    def test_input_grad(self, gradcheck):
        w = Tensor(np.random.default_rng(3).normal(size=(2, 3, 3, 3)) * 0.4)
        gradcheck(lambda t: F.conv2d(t, w, stride=2, padding=1),
                  np.random.default_rng(4).normal(size=(2, 3, 5, 5)))

    def test_weight_grad(self, gradcheck):
        x = Tensor(np.random.default_rng(5).normal(size=(2, 2, 4, 4)))
        gradcheck(lambda w: F.conv2d(x, w, padding=1),
                  np.random.default_rng(6).normal(size=(3, 2, 3, 3)) * 0.4)

    def test_bias_grad(self):
        x = Tensor(np.random.default_rng(7).normal(size=(2, 1, 3, 3)))
        w = Tensor(np.random.default_rng(8).normal(size=(2, 1, 3, 3)))
        b = Tensor(np.zeros(2), requires_grad=True)
        out = F.conv2d(x, w, b, padding=1)
        out.sum().backward()
        np.testing.assert_allclose(b.grad, [2 * 9, 2 * 9])  # batch x spatial

    def test_depthwise_grad(self, gradcheck):
        w = Tensor(np.random.default_rng(9).normal(size=(3, 1, 3, 3)) * 0.4)
        gradcheck(lambda t: F.conv2d(t, w, padding=1, groups=3),
                  np.random.default_rng(10).normal(size=(1, 3, 4, 4)))


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2, 2).data
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_grad_to_argmax_only(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        np.testing.assert_array_equal(x.grad[0, 0], expected)

    def test_avg_pool_values(self):
        x = np.ones((1, 2, 4, 4))
        out = F.avg_pool2d(Tensor(x), 2, 2).data
        np.testing.assert_allclose(out, np.ones((1, 2, 2, 2)))

    def test_avg_pool_grad(self, gradcheck):
        gradcheck(lambda t: F.avg_pool2d(t, 2, 2),
                  np.random.default_rng(11).normal(size=(1, 2, 4, 4)))

    def test_max_pool_overlapping_grad(self, gradcheck):
        gradcheck(lambda t: F.max_pool2d(t, 3, 1, 1),
                  np.random.default_rng(12).normal(size=(1, 1, 5, 5)))

    def test_global_avg_pool(self):
        x = np.random.default_rng(13).normal(size=(2, 3, 4, 4))
        out = F.global_avg_pool2d(Tensor(x)).data
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)))


class TestSoftmax:
    def test_log_softmax_normalises(self):
        x = np.random.default_rng(14).normal(size=(4, 6)) * 10
        log_probs = F.log_softmax(Tensor(x), axis=-1).data
        np.testing.assert_allclose(np.exp(log_probs).sum(axis=-1), np.ones(4))

    def test_log_softmax_shift_invariant(self):
        x = np.random.default_rng(15).normal(size=(2, 5))
        a = F.log_softmax(Tensor(x)).data
        b = F.log_softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_log_softmax_extreme_values_stable(self):
        x = np.asarray([[1000.0, 0.0, -1000.0]])
        out = F.log_softmax(Tensor(x)).data
        assert np.isfinite(out).all()

    def test_softmax_grad(self, gradcheck):
        gradcheck(lambda t: F.softmax(t, axis=-1),
                  np.random.default_rng(16).normal(size=(3, 4)))

    def test_softmax_np_matches_tensor(self):
        x = np.random.default_rng(17).normal(size=(3, 7))
        np.testing.assert_allclose(F.softmax_np(x), F.softmax(Tensor(x)).data, atol=1e-12)

    def test_entropy_np_bounds(self):
        uniform = np.zeros((1, 8))
        peaked = np.zeros((1, 8))
        peaked[0, 0] = 100.0
        assert F.entropy_np(uniform)[0] == pytest.approx(1.0)
        assert F.entropy_np(peaked)[0] == pytest.approx(0.0, abs=1e-6)

    def test_entropy_unnormalised(self):
        uniform = np.zeros((1, 8))
        assert F.entropy_np(uniform, normalize=False)[0] == pytest.approx(np.log(8))
